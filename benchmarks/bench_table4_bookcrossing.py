"""Table IV: overall performance on Bookcrossing(-like).

The paper evaluates 8 systems here (no social graph, too few attributes for
an HIN): the CF family, the meta-learners, and HIRE.  Shape: HIRE leads;
meta-learners second tier.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, render_overall_table, run_overall_performance


@pytest.mark.benchmark(group="table4")
def test_table4_overall_performance_bookcrossing(benchmark, save):
    spec = EXPERIMENTS["table4"]

    rows = benchmark.pedantic(
        lambda: run_overall_performance(spec, scale="fast", max_tasks=12, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "table4 produced no rows"
    table = render_overall_table(rows, ks=spec.ks)
    save("table4_bookcrossing", table)
    print("\nTable IV (Bookcrossing-like)\n" + table)

    models = {r["model"] for r in rows}
    # HIN/social baselines are not applicable on this dataset (as in paper).
    assert "GraphRec" not in models
    assert "GraphHINGE" not in models
    assert "HIRE" in models

    def mean_metric(name, metric):
        vals = [r[metric] for r in rows if r["model"] == name and r["k"] == 5]
        return float(np.mean(vals)) if vals else float("nan")

    benchmark.extra_info["hire_ndcg5"] = mean_metric("HIRE", "ndcg")
    benchmark.extra_info["melu_ndcg5"] = mean_metric("MeLU", "ndcg")
