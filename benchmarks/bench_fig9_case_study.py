"""Fig. 9: case study — visualise the learned attention of a trained HIRE.

Reproduces the paper's qualitative artifact: the MBU (user-user), MBI
(item-item) and MBA (attribute-attribute) attention matrices of the last
HIM block for one prediction context, rendered as ASCII heatmaps, plus the
predicted vs ground-truth ratings of the masked cells the paper's narrative
cites.
"""

import numpy as np
import pytest

from repro.experiments import render_attention_matrix, run_case_study


@pytest.mark.benchmark(group="fig9")
def test_fig9_attention_case_study(benchmark, save):
    out = benchmark.pedantic(
        lambda: run_case_study(scale="fast", seed=0, context_size=12),
        rounds=1, iterations=1,
    )

    assert set(out["attention"]) == {"user", "item", "attr"}
    sections = []
    sections.append("MBU attention between users (seed item column)")
    sections.append(render_attention_matrix(
        out["attention"]["user"], [f"u{u}" for u in out["users"]]))
    sections.append("\nMBI attention between items (seed user row)")
    sections.append(render_attention_matrix(
        out["attention"]["item"], [f"i{i}" for i in out["items"]]))
    sections.append("\nMBA attention between attributes (seed cell)")
    sections.append(render_attention_matrix(
        out["attention"]["attr"], list(out["attribute_names"])))

    # Predicted vs ground truth on a few masked cells (the paper's table).
    sections.append("\npredicted vs actual on masked cells")
    for row, col in out["query_cells"][:8]:
        sections.append(
            f"  user {out['users'][row]:>4d} item {out['items'][col]:>4d}: "
            f"predicted {out['predictions'][row, col]:.2f} "
            f"actual {out['ground_truth'][row, col]:.0f}"
        )
    text = "\n".join(sections)
    save("fig9_case_study", text)
    from repro.viz import fig9_svg
    for which in ("user", "item", "attr"):
        save(f"fig9_{which}.svg", fig9_svg(out, which=which))
    print("\nFig. 9 (case study)\n" + text)

    # Attention matrices are row-stochastic, asymmetric in general.
    for key, matrix in out["attention"].items():
        np.testing.assert_allclose(matrix.sum(axis=-1),
                                   np.ones(matrix.shape[0]), atol=1e-6,
                                   err_msg=key)
    benchmark.extra_info["num_query_cells"] = int(len(out["query_cells"]))
