"""Throughput benchmark of the online serving subsystem.

Replays a skewed workload through ``repro.serve.PredictionService`` across
micro-batch sizes with the context cache on and off, against a sequential
one-request-at-a-time baseline on the same predictor code path.  An
assembly section measures the CSR-vectorized sampler against the loop
reference, the frontier cache's hot hit rate, and the adaptive budget
ladder under overload.  A
sharding section drives a ``ShardRouter`` with a power-law workload and
flash update bursts through the incremental data plane (verify mode on).
Every serviced run must stay bit-identical to the baseline.  The full run
writes
``BENCH_serve.json`` at the repo root so the throughput trajectory is
tracked across PRs; ``--smoke`` runs a shrunken grid in seconds and skips
the JSON write.
"""

import pytest

from repro.experiments.serve_bench import (
    run_serve_benchmark,
    write_serve_bench_json,
)


@pytest.mark.benchmark(group="serve")
def test_serve_throughput(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_serve_benchmark(smoke=smoke_mode),
        rounds=1, iterations=1,
    )

    base = payload["baseline_sequential"]
    lines = [
        f"sequential baseline: {base['requests_per_second']:7.1f} req/s "
        f"({base['seconds']:.2f}s for {payload['config']['num_requests']} requests)",
    ]
    for run in payload["runs"]:
        cache = "cache on " if run["cache"] else "cache off"
        engine = "engine on " if run["engine"] else "engine off"
        lines.append(
            f"batch={run['batch_size']:<2d} {cache} {engine}: "
            f"{run['requests_per_second']:7.1f} req/s "
            f"({run['speedup_vs_sequential']:.2f}x)  "
            f"p50 {run['latency_p50_ms']:7.1f} ms  "
            f"p99 {run['latency_p99_ms']:7.1f} ms  "
            f"bit-identical: {run['bit_identical_to_sequential']}")
    lines.append(
        f"best: batch={payload['best_config']['batch_size']} "
        f"cache={'on' if payload['best_config']['cache'] else 'off'} "
        f"engine={'on' if payload['best_config']['engine'] else 'off'} "
        f"-> {payload['best_speedup']:.2f}x")
    lines.append(
        f"engine on {payload['best_speedup_engine_on']:.2f}x vs "
        f"off {payload['best_speedup_engine_off']:.2f}x "
        f"(gain {payload['engine_gain']:.2f}x)")
    pack = payload["packing"]
    cache = pack["plan_cache"]
    lines.append(
        f"mixed-shape packing ({pack['num_requests']} requests over "
        f"{len(pack['mixed_budgets'])} budgets): "
        f"exact-only {pack['exact_only_seconds']:.2f}s vs "
        f"packed {pack['packed_seconds']:.2f}s "
        f"-> pack_gain {pack['pack_gain']:.2f}x  "
        f"bit-identical: {pack['bit_identical_to_sequential']}")
    lines.append(
        f"steady-state plan cache hit rate: exact-only "
        f"{cache['exact_only']['hit_rate'] * 100:.0f}% "
        f"({cache['exact_only']['misses']:.0f} misses) vs packed "
        f"{cache['packed']['hit_rate'] * 100:.0f}% "
        f"({cache['packed']['misses']:.0f} misses); "
        f"{pack['packed_contexts_total']:.0f} contexts padded, "
        f"last pad waste {pack['pad_waste_last'] * 100:.0f}%")
    tracing = payload["tracing"]
    lines.append(
        f"tracing plane: untraced {tracing['untraced_seconds']:.2f}s vs "
        f"traced {tracing['traced_seconds']:.2f}s "
        f"-> overhead {tracing['overhead'] * 100:+.1f}%  "
        f"bit-identical: {tracing['bit_identical']}  "
        f"({tracing['traces_completed']} traces, "
        f"{tracing['export_snapshots']} export snapshots)")
    for stage, stats in tracing["stage_breakdown"].items():
        lines.append(
            f"  stage {stage:<10s}: mean {stats['mean_ms']:7.2f} ms  "
            f"p99 {stats['p99_ms']:7.2f} ms  (n={stats['count']})")
    assembly = payload["assembly"]
    frontier = assembly["frontier"]
    adaptive = assembly["adaptive"]
    lines.append(
        f"assembly ({assembly['num_requests']} power-law requests): "
        f"loop {assembly['loop_seconds']:.2f}s vs vectorized "
        f"{assembly['vectorized_seconds']:.2f}s "
        f"-> {assembly['vectorized_speedup']:.2f}x  "
        f"contexts identical: {assembly['contexts_identical']}")
    lines.append(
        f"  frontier cache: cold hit rate "
        f"{frontier['cold_hit_rate'] * 100:.0f}% -> hot "
        f"{frontier['hot_hit_rate'] * 100:.0f}% "
        f"({frontier['hits']} hits / {frontier['misses']} misses)  "
        f"bit-identical: {frontier['bit_identical_to_sequential']}")
    lines.append(
        f"  adaptive ladder {adaptive['ladder']}: fixed p99 "
        f"{adaptive['fixed_p99_ms']:.0f} ms vs adaptive "
        f"{adaptive['adaptive_p99_ms']:.0f} ms "
        f"(SLO {adaptive['slo_p99_ms']:.0f} ms, health "
        f"{adaptive['health_state']})  "
        f"{adaptive['degraded_requests']:.0f} degraded  "
        f"bit-identical at effective budgets: "
        f"{adaptive['degraded_bit_identical']}")
    shard = payload["sharding"]
    p99s = ", ".join("-" if p is None else f"{p:.1f}"
                     for p in shard["per_shard_p99_ms"])
    precision = shard["invalidation_precision"]
    lines.append(
        f"sharding ({shard['num_shards']} shards, power-law "
        f"{shard['num_requests']} requests, {shard['num_bursts']} bursts of "
        f"{shard['burst_size']}): {shard['requests_per_second']:7.1f} req/s  "
        f"routed {shard['routed_per_shard']}  "
        f"balance {shard['balance']:.2f}  per-shard p99 [{p99s}] ms  "
        f"bit-identical: {shard['bit_identical_to_sequential']}")
    lines.append(
        f"  incremental updates: {shard['updates']['applied_total']} deltas "
        f"applied in {shard['update_incremental_seconds'] * 1e3:.1f} ms vs "
        f"{shard['update_rebuild_seconds'] * 1e3:.1f} ms rebuilds "
        f"({shard['update_speedup']:.1f}x)  invalidation precision "
        + ("n/a" if precision is None else f"{precision * 100:.0f}%"))
    text = "\n".join(lines)
    print("\nServe throughput benchmark\n" + text)

    # Bit-identity is non-negotiable at every scale: batching, caching,
    # padded packing, tracing, sharding, and incremental graph updates may
    # never change a score.
    assert payload["bit_identical_all_runs"]
    assert payload["packing"]["bit_identical_to_sequential"]
    assert tracing["bit_identical"]
    assert shard["bit_identical_to_sequential"]
    # The vectorized sampler is an implementation of the loop sampler,
    # not a variant: contexts must match bit for bit, and every frontier
    # hit / adaptive degradation must reproduce sequential scores exactly.
    assert assembly["contexts_identical"]
    assert frontier["bit_identical_to_sequential"]
    assert adaptive["fixed_bit_identical"]
    assert adaptive["degraded_bit_identical"]
    assert all(check["bit_identical"] for check in adaptive["rung_checks"])
    # Every completed trace must reach the JSONL sink.
    assert tracing["trace_sink_records"] == tracing["traces_completed"]
    # Routing must spread the power-law workload across shards (balance is
    # mean/max routed: 1.0 = even, 1/num_shards = everything on one shard).
    assert 0.0 < shard["balance"] <= 1.0
    assert sum(shard["routed_per_shard"]) == shard["num_requests"]

    if not smoke_mode:
        save("serve_throughput", text)
        path = write_serve_bench_json(payload)
        print(f"wrote {path}")
        # Acceptance: batched+cached serving at least 2x the sequential
        # baseline (assert with headroom for CI noise).
        assert payload["best_speedup"] >= 1.5
        # The graph-free engine must never cost end-to-end throughput
        # (its win is measured head-on by bench_infer_engine; the serving
        # path is dominated by context assembly on single-core runners).
        assert payload["engine_gain"] >= 0.97
        # Acceptance: shape-bucketed packing beats exact-shape-only
        # grouping on mixed traffic by a real margin.
        assert pack["pack_gain"] > 1.15
        # Bucketed plan keys keep the LRU stable where exact-shape keys
        # fragment it: the packed mode must not hit less often.
        assert (cache["packed"]["hit_rate"]
                >= cache["exact_only"]["hit_rate"])
        assert cache["packed"]["hit_rate"] >= 0.8
        # Acceptance: the full telemetry plane (tracer + windows + sink +
        # exporter) costs at most 3% of steady-state throughput.
        assert tracing["overhead"] <= 0.03
        # Acceptance: fine-grained invalidation must spare some cache
        # entries across the tail-biased bursts (the old global-bump
        # scheme scores identically 0 here), and the O(deltas) update
        # path must beat full rebuilds outright.
        assert shard["invalidation_precision"] is not None
        assert shard["invalidation_precision"] > 0.0
        assert shard["update_speedup"] > 1.0
        # Acceptance: CSR-vectorized assembly beats the loop sampler
        # outright, and repeat traffic skips the BFS almost entirely.
        assert assembly["vectorized_speedup"] >= 1.5
        assert frontier["hot_hit_rate"] >= 0.8
        # Acceptance: under overload, degrading context budgets must buy
        # real tail latency — the ladder's p99 beats fixed budgets and
        # lands inside the SLO that fixed budgets breach.
        assert adaptive["adaptive_p99_ms"] < adaptive["fixed_p99_ms"]
        assert adaptive["health_state"] == "ok"
        assert adaptive["degraded_requests"] > 0
