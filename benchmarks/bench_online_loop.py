"""Benchmark of the incremental fine-tuning / gated promotion loop.

Drives ``repro.online`` through a simulated distribution shift (warm
ratings flipped across the scale midpoint, streamed as re-rating deltas)
and through a serve-while-training replay where a background round trains
and hot-swaps mid-workload.  The full run writes ``BENCH_online.json`` at
the repo root so the recovery trajectory is tracked across PRs; ``--smoke``
shrinks everything to a seconds-long sanity pass and skips the JSON write.
"""

import pytest

from repro.experiments.online_bench import (
    run_online_benchmark,
    write_online_bench_json,
)


@pytest.mark.benchmark(group="online")
def test_online_loop(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_online_benchmark(smoke=smoke_mode),
        rounds=1, iterations=1,
    )

    recovery = payload["recovery"]
    serving = payload["serve_during_training"]
    reproducibility = payload["reproducibility"]
    series = "  ".join(f"{v:.4f}" for v in recovery["active_rmse_series"])
    recover_round = recovery["rounds_to_recover"]
    lines = [
        f"shift: {recovery['num_shift_deltas']} re-rating deltas over "
        f"{recovery['num_rounds']} rounds "
        f"({recovery['probe_tasks']} probe tasks)",
        f"probe RMSE at shift {recovery['rmse_at_shift']:.4f} -> series "
        f"{series}",
        f"recovery ratio {recovery['rmse_recovery_ratio']:.3f}x "
        f"(best promoted {recovery['best_promoted_rmse']:.4f}, "
        f"recovered by round "
        f"{'never' if recover_round is None else recover_round}; "
        f"{recovery['promotions']} promotions, "
        f"{recovery['rejections']} rejections)",
        f"serve during training: {serving['responses_resolved']}"
        f"/{serving['num_requests']} responses "
        f"({serving['served_pre_swap_model']} pre-swap, "
        f"{serving['served_post_swap_model']} post-swap), "
        f"bit-identical: {serving['bit_identical']}, "
        f"swap p99 {serving['swap_p99_ms']:.2f} ms",
        f"round reproducibility at workers "
        f"{reproducibility['worker_counts']}: "
        f"{reproducibility['bit_identical']} "
        f"(max param diff {reproducibility['max_param_diff']:.3g})",
    ]
    text = "\n".join(lines)
    print("\nOnline loop benchmark\n" + text)

    # Non-negotiable at every scale: the serving plane never blends models
    # (every response matches exactly one reference), never loses a
    # future, and a round re-run at any worker count is bit-identical.
    assert serving["all_futures_resolved"]
    assert serving["bit_identical"]
    assert reproducibility["bit_identical"]
    assert reproducibility["same_round_seed"]

    if not smoke_mode:
        save("online_loop", text)
        path = write_online_bench_json(payload)
        print(f"wrote {path}")
        # Acceptance: the loop must actually claw accuracy back after the
        # shift (promoted model strictly better on the shifted probe).
        assert recovery["rmse_recovery_ratio"] > 1.0
        assert recovery["promotions"] >= 1
        # Hot swaps must stay far below request latency.
        assert serving["swap_p99_ms"] < 50.0
