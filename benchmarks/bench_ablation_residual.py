"""Ablation of OUR implementation choices (not in the paper's tables).

DESIGN.md records one deliberate deviation inside HIM: each attention layer
is wrapped with a residual connection and pre-layer-norm, the standard
transformer-block structure that keeps a K = 3 stack optimisable under
LAMB.  This bench quantifies that choice by training four variants —
{residual on/off} × {layer-norm on/off} — on the user cold-start scenario.

Expected shape: the full wrapping (residual + norm) trains to the lowest
loss / best NDCG; removing both degrades or destabilises training.
"""

import numpy as np
import pytest

from repro.core import HIREConfig, TrainerConfig
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import EXPERIMENTS, HIREModel, prepare_workload


@pytest.mark.benchmark(group="ablation-residual")
def test_ablation_residual_and_layernorm(benchmark, save):
    def run():
        from repro.experiments.runner import _sweep_settings

        dataset, split = prepare_workload(EXPERIMENTS["table6"], scale="fast", seed=0)
        tasks = build_eval_tasks(split, "user", min_query=8, seed=0, max_tasks=8)
        rows = []
        for residual in (True, False):
            for norm in (True, False):
                config, trainer_config = _sweep_settings(
                    "fast", seed=0,
                    flags={"use_residual": residual, "use_layer_norm": norm},
                )
                model = HIREModel(dataset, config=config,
                                  trainer_config=trainer_config, seed=0)
                result = evaluate_model(model, split, "user", ks=(5,), tasks=tasks)
                rows.append({
                    "residual": residual,
                    "layer_norm": norm,
                    **result.metrics[5],
                })
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'residual':>9s} | {'layernorm':>9s} | {'Pre@5':>7s} | "
             f"{'NDCG@5':>7s} | {'MAP@5':>7s}"]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(f"{str(r['residual']):>9s} | {str(r['layer_norm']):>9s} | "
                     f"{r['precision']:7.4f} | {r['ndcg']:7.4f} | {r['map']:7.4f}")
    text = "\n".join(lines)
    save("ablation_residual", text)
    print("\nImplementation-choice ablation (residual / layer-norm)\n" + text)

    assert len(rows) == 4
    full = next(r for r in rows if r["residual"] and r["layer_norm"])
    bare = next(r for r in rows if not r["residual"] and not r["layer_norm"])
    benchmark.extra_info["full_ndcg5"] = full["ndcg"]
    benchmark.extra_info["bare_ndcg5"] = bare["ndcg"]
