"""Pareto frontier of context budgets: RMSE vs assembly+forward latency.

Sweeps the ``(context_users, context_items)`` grid the adaptive budget
ladder degrades along, scoring every evaluation task at each budget with
a briefly trained model — assembly and forward timed separately, RMSE
against held-out query ratings.  The full run writes ``BENCH_pareto.json``
at the repo root so the dial's latency dynamic range is tracked across
PRs; ``--smoke`` runs a two-point grid in seconds and skips the write.
"""

import pytest

from repro.experiments.pareto_bench import (
    render_pareto_bench,
    run_pareto_benchmark,
    write_pareto_bench_json,
)


@pytest.mark.benchmark(group="pareto")
def test_pareto_frontier(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_pareto_benchmark(smoke=smoke_mode),
        rounds=1, iterations=1,
    )
    text = render_pareto_bench(payload)
    print("\nContext-budget pareto frontier\n" + text)

    # Grid points are scored through the pure per-chunk RNG derivation, so
    # every RMSE must be exactly reproducible — otherwise the frontier
    # would not predict what a service degraded to that budget serves.
    assert payload["deterministic"]
    points = payload["points"]
    assert len(points) == len(payload["config"]["grid"])
    assert all(p["rmse"] > 0 for p in points)

    if not smoke_mode:
        save("pareto_frontier", text)
        path = write_pareto_bench_json(payload)
        print(f"wrote {path}")
        # The grid is ordered cheap -> rich; at full scale the rich end
        # must cost real time (at smoke scale tiny budgets split queries
        # into more chunks and per-chunk overhead can invert the order).
        assert points[-1]["total_seconds"] > points[0]["total_seconds"]
        # Acceptance: the budget dial spans a real latency range — the
        # whole point of adaptive degradation.  2x is conservative for an
        # 8x8 -> 32x32 grid (cell count grows 16x).
        assert payload["latency_dynamic_range"] >= 2.0
