"""Throughput benchmark of the training-context pipeline.

Sweeps prefetch workers × buffer depth × backend against the sequential
per-step-RNG baseline and asserts ``loss_history`` bit-identity on every
grid point — the pipeline may reorder *when* contexts are sampled, never
*what* is sampled.  The full run writes ``BENCH_pipeline.json`` at the
repo root so the throughput trajectory is tracked across PRs; ``--smoke``
runs a shrunken grid in seconds and skips the JSON write.

The speedup bar (≥ 1.3x at the best grid point) applies on parallel
hardware; a single-core host can only break even, so there the assertion
degrades to overhead-neutrality (and the JSON records
``parallel_hardware: false``).
"""

import pytest

from repro.experiments.pipeline_bench import (
    render_pipeline_bench,
    run_pipeline_benchmark,
    write_pipeline_bench_json,
)


@pytest.mark.benchmark(group="pipeline")
def test_pipeline_throughput(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_pipeline_benchmark(smoke=smoke_mode),
        rounds=1, iterations=1,
    )

    text = render_pipeline_bench(payload)
    print("\nPipeline throughput benchmark\n" + text)

    # Bit-identity is non-negotiable at every scale: prefetching may never
    # change the training trajectory.
    assert payload["bit_identical_all_runs"]
    # The legacy shared stream is a different RNG scheme; sanity-check that
    # the benchmark really did distinguish the two.
    assert not payload["legacy_shared_stream"]["same_trajectory_as_baseline"]

    if not smoke_mode:
        save("pipeline_throughput", text)
        path = write_pipeline_bench_json(payload)
        print(f"wrote {path}")
        if payload["parallel_hardware"]:
            # Acceptance: prefetched sampling overlaps enough to beat the
            # sequential baseline by 1.3x at the best grid point.
            assert payload["best_speedup"] >= 1.3
        else:
            # One core: no overlap to win, but the pipeline must not cost
            # more than a modest scheduling overhead either.
            assert payload["best_speedup"] >= 0.85
