"""Fig. 8: impact of the context sampling strategy on MovieLens-like.

Paper shape: neighbourhood-based sampling beats random in all scenarios
(~1 %+); feature-similarity sampling is competitive for user cold-start but
weaker when items are cold.
"""

import numpy as np
import pytest

from repro.experiments import render_sweep_table, run_sampling_ablation


@pytest.mark.benchmark(group="fig8")
def test_fig8_sampling_strategies(benchmark, save):
    rows = benchmark.pedantic(
        lambda: run_sampling_ablation(scale="fast", max_tasks=5, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "fig8 produced no rows"
    table = render_sweep_table(rows, "sampler")
    save("fig8_sampling", table)
    from repro.viz import fig8_svg
    save("fig8_sampling.svg", fig8_svg(rows))
    print("\nFig. 8 (sampling strategies)\n" + table)

    samplers = {r["sampler"] for r in rows}
    assert samplers == {"neighborhood", "random", "feature"}

    def mean_ndcg(sampler):
        return float(np.mean([r["ndcg"] for r in rows if r["sampler"] == sampler]))

    neigh, rand = mean_ndcg("neighborhood"), mean_ndcg("random")
    benchmark.extra_info["neighborhood_ndcg5"] = neigh
    benchmark.extra_info["random_ndcg5"] = rand
    benchmark.extra_info["neighborhood_beats_random"] = bool(neigh >= rand - 0.02)
