"""Microbenchmark of the nn substrate's fused/float32 fast path.

Times ``HIRETrainer.train_step`` and ``HIRE.forward`` at the paper config
(n = m = 32 contexts, K = 3 HIM blocks, 8 heads × 16 dims) in two modes:
the original decomposed float64 kernels (baseline) and the fused
single-node kernels under the float32 dtype policy.  The full run writes
``BENCH_substrate.json`` at the repo root so the speedup trajectory is
tracked across PRs; ``--smoke`` runs a shrunken config in seconds and
skips the JSON write.
"""

import pytest

from repro.experiments.substrate_bench import (
    run_observability_overhead,
    run_substrate_microbench,
    run_zero_grad_delta,
    write_bench_json,
)


@pytest.mark.benchmark(group="substrate")
def test_substrate_micro_fused_speedup(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_substrate_microbench(smoke=smoke_mode),
        rounds=1, iterations=1,
    )

    overhead = run_observability_overhead(smoke=smoke_mode)
    payload["observability"] = overhead
    zero_grad = run_zero_grad_delta(smoke=smoke_mode)
    payload["zero_grad_in_place"] = zero_grad

    base = payload["baseline_float64_unfused"]
    fused = payload["fused_float32"]
    lines = [
        f"baseline (float64, unfused): {base['train_step_seconds'] * 1e3:9.1f} ms/step"
        f"   forward {base['forward_seconds'] * 1e3:8.1f} ms",
        f"fused    (float32, fused)  : {fused['train_step_seconds'] * 1e3:9.1f} ms/step"
        f"   forward {fused['forward_seconds'] * 1e3:8.1f} ms",
        f"speedup  train_step {payload['speedup_train_step']:.2f}x"
        f"   forward {payload['speedup_forward']:.2f}x",
        "telemetry overhead vs disabled: "
        f"sinks+spans {overhead['overhead_sinks_and_spans'] * 100:+.2f}%"
        f"   +op hooks {overhead['overhead_sinks_spans_and_ophooks'] * 100:+.2f}%"
        f"   trajectories identical: {overhead['trajectories_identical']}",
        "zero_grad(set_to_zero=True) train_step delta: "
        f"{zero_grad['train_step_delta'] * 100:+.2f}%"
        f"   loss history identical: {zero_grad['loss_history_identical']}",
    ]
    text = "\n".join(lines)
    print("\nSubstrate microbenchmark\n" + text)

    assert overhead["trajectories_identical"]
    assert zero_grad["loss_history_identical"]

    if not smoke_mode:
        save("substrate_micro", text)
        path = write_bench_json(payload)
        print(f"wrote {path}")
        # Full scale: the fused float32 path must be decisively faster.
        # (The acceptance target is 1.8x; assert with headroom for CI noise.)
        assert payload["speedup_train_step"] >= 1.2
        # Telemetry acceptance: all sinks + spans within 5% of disabled
        # (assert with headroom for CI noise).
        assert overhead["overhead_sinks_and_spans"] <= 0.10

    benchmark.extra_info.update({
        "speedup_train_step": payload["speedup_train_step"],
        "speedup_forward": payload["speedup_forward"],
        "overhead_sinks_and_spans": overhead["overhead_sinks_and_spans"],
        "overhead_sinks_spans_and_ophooks":
            overhead["overhead_sinks_spans_and_ophooks"],
        "smoke": smoke_mode,
    })
