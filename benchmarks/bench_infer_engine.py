"""Microbenchmark of the graph-free inference engine.

Times one paper-config HIRE forward through the ``no_grad`` Tensor path and
through the compiled ``repro.nn.inference`` plan (single context and a
serving-style stacked micro-batch), asserts the engine's outputs stay
bitwise identical, and measures its steady-state allocations with
``tracemalloc``.  The full run writes ``BENCH_infer.json`` at the repo root
so the trajectory is tracked across PRs; ``--smoke`` runs a shrunken config
in seconds and skips the JSON write.
"""

import pytest

from repro.experiments.infer_bench import (
    run_infer_microbench,
    write_infer_bench_json,
)


@pytest.mark.benchmark(group="infer")
def test_infer_engine_micro(benchmark, save, smoke_mode):
    payload = benchmark.pedantic(
        lambda: run_infer_microbench(smoke=smoke_mode),
        rounds=1, iterations=1,
    )

    cfg = payload["config"]
    cache = payload["plan_cache"]
    pack = payload["packing"]
    lines = [
        f"context {cfg['n']}x{cfg['m']}, batch {cfg['batch']}, "
        f"K={cfg['num_blocks']} blocks, {cfg['num_heads']} heads x "
        f"{cfg['attr_dim']} dims",
        f"tensor forward : {payload['tensor_forward_seconds'] * 1e3:8.1f} ms"
        f"   batched {payload['tensor_forward_many_seconds'] * 1e3:8.1f} ms",
        f"engine forward : {payload['engine_forward_seconds'] * 1e3:8.1f} ms"
        f"   batched {payload['engine_forward_many_seconds'] * 1e3:8.1f} ms",
        f"speedup: single {payload['speedup_single']:.2f}x"
        f"   batched {payload['speedup_batched']:.2f}x",
        f"packed mixed shapes ({len(pack['mixed_shapes'])} contexts, bucket "
        f"{pack['bucket'][0]}x{pack['bucket'][1]}, "
        f"pad waste {pack['pad_waste'] * 100:.0f}%): "
        f"each {pack['each_seconds'] * 1e3:6.1f} ms  "
        f"packed {pack['packed_seconds'] * 1e3:6.1f} ms  "
        f"gain {pack['pack_gain']:.2f}x "
        f"(+store {pack['pack_gain_store']:.2f}x)",
        f"steady-state allocations: {payload['engine_steady_state_bytes']} B"
        f"   plan cache: {cache['plans']} plans, "
        f"{cache['workspace_bytes'] / 1e6:.1f} MB workspace",
        f"bit-identical to Tensor path: {payload['bit_identical']}",
    ]
    text = "\n".join(lines)
    print("\nInference engine microbenchmark\n" + text)

    # Bit-identity is non-negotiable at every scale.
    assert payload["bit_identical"]

    if not smoke_mode:
        save("infer_engine", text)
        path = write_infer_bench_json(payload)
        print(f"wrote {path}")
        # Acceptance: the engine wins the serving-style stacked forward
        # (allocation removal pays where intermediates are largest) and is
        # at worst neutral on the GEMM-bound single forward.
        assert payload["speedup_batched"] >= 1.1
        assert payload["speedup_single"] >= 0.9
        # Padded packing must win mixed-shape traffic at the serving-regime
        # shapes (fragmented solos pay per-context dispatch; padding adds
        # FLOPs — the gain asserts the trade nets out positive here).
        assert payload["packing"]["pack_gain"] >= 1.0
        # Zero steady-state allocations after warmup (1 KiB allowance for
        # counter/interned-object churn).
        assert payload["engine_steady_state_bytes"] < 1024

    benchmark.extra_info.update({
        "speedup_single": payload["speedup_single"],
        "speedup_batched": payload["speedup_batched"],
        "engine_steady_state_bytes": payload["engine_steady_state_bytes"],
        "smoke": smoke_mode,
    })
