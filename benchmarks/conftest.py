"""Benchmark configuration.

Every benchmark regenerates one paper artifact (table or figure) at the
``fast`` scale and writes the rendered paper-style table to
``results/<experiment>.txt`` so EXPERIMENTS.md can cite the exact output.
Benchmarks run once per session (``rounds=1``) — the quantity of interest
is the artifact itself plus its wall-clock cost, not statistical timing.

``--smoke`` shrinks every benchmark — including the systems ones
(``bench_substrate_micro``, ``bench_infer_engine``,
``bench_serve_throughput``, ``bench_pipeline_throughput``) — to a
seconds-long sanity pass: reduced
grids, no artifact writes, and no ``BENCH_*.json`` trajectory updates.
The full runs additionally assert their acceptance bars (substrate
speedup, serve throughput, pipeline speedup + bit-identity).
"""

from pathlib import Path

import pytest

RESULTS_DIR = Path(__file__).resolve().parent.parent / "results"


def pytest_addoption(parser):
    parser.addoption(
        "--smoke", action="store_true", default=False,
        help="run benchmarks at a shrunken smoke scale (seconds, not minutes); "
             "smoke runs skip artifact/JSON writes",
    )


@pytest.fixture
def smoke_mode(request) -> bool:
    return request.config.getoption("--smoke")


@pytest.fixture(scope="session")
def results_dir() -> Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def save_result(results_dir: Path, name: str, text: str) -> None:
    filename = name if name.endswith(".svg") else f"{name}.txt"
    (results_dir / filename).write_text(text + "\n")


@pytest.fixture
def save(results_dir):
    def _save(name: str, text: str) -> None:
        save_result(results_dir, name, text)
    return _save
