"""Extension: HIRE vs GNN-based inductive matrix completion (IGMC).

§IV-A of the paper frames HIRE as analogous to inductive matrix completion
but argues MHSA's learned soft adjacency is more flexible than message
passing over the fixed observed-rating graph.  This bench quantifies that
claim on our workload: IGMC (enclosing-subgraph R-GCN, structural labels
only) vs HIRE on user cold-start.

Expected shape: HIRE ≥ IGMC — IGMC sees only the rating structure, HIRE
additionally attends over attributes and the full context block.
"""

import numpy as np
import pytest

from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import EXPERIMENTS, create_model, prepare_workload


@pytest.mark.benchmark(group="extension-igmc")
def test_extension_igmc_vs_hire(benchmark, save):
    def run():
        dataset, split = prepare_workload(EXPERIMENTS["table3"], scale="fast", seed=0)
        tasks = build_eval_tasks(split, "user", min_query=8, seed=0, max_tasks=8)
        rows = []
        for name in ("IGMC", "HIRE"):
            model = create_model(name, dataset, seed=0, preset="fast")
            result = evaluate_model(model, split, "user", ks=(5,), tasks=tasks)
            rows.append({"model": name, **result.metrics[5],
                         "fit_seconds": result.fit_seconds,
                         "predict_seconds": result.predict_seconds})
        return rows

    rows = benchmark.pedantic(run, rounds=1, iterations=1)
    lines = [f"{'model':<6s} | {'Pre@5':>7s} | {'NDCG@5':>7s} | {'MAP@5':>7s} | "
             f"{'fit':>6s} | {'pred':>6s}"]
    lines.append("-" * len(lines[0]))
    for r in rows:
        lines.append(f"{r['model']:<6s} | {r['precision']:7.4f} | {r['ndcg']:7.4f} "
                     f"| {r['map']:7.4f} | {r['fit_seconds']:5.1f}s | "
                     f"{r['predict_seconds']:5.1f}s")
    text = "\n".join(lines)
    save("extension_igmc", text)
    print("\nExtension: IGMC vs HIRE (user cold-start)\n" + text)

    by_model = {r["model"]: r for r in rows}
    benchmark.extra_info["igmc_ndcg5"] = by_model["IGMC"]["ndcg"]
    benchmark.extra_info["hire_ndcg5"] = by_model["HIRE"]["ndcg"]
