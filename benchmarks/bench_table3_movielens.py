"""Table III: overall performance in three cold-start scenarios,
MovieLens-1M(-like) — all applicable systems, Precision/NDCG/MAP @5/7/10.

Paper shape to reproduce: HIRE leads in (nearly) all cells; meta-learning
baselines (TaNP/MeLU/MAMO) beat the CF family; HIN baselines sit between.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, render_overall_table, run_overall_performance


@pytest.mark.benchmark(group="table3")
def test_table3_overall_performance_movielens(benchmark, save):
    spec = EXPERIMENTS["table3"]

    rows = benchmark.pedantic(
        lambda: run_overall_performance(spec, scale="fast", max_tasks=12, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "table3 produced no rows"
    table = render_overall_table(rows, ks=spec.ks)
    save("table3_movielens", table)
    print("\nTable III (MovieLens-like)\n" + table)

    # Sanity: every metric in [0, 1]; all scenarios and HIRE present.
    for row in rows:
        for metric in ("precision", "ndcg", "map"):
            assert 0.0 <= row[metric] <= 1.0
    assert {r["scenario"] for r in rows} == {"user", "item", "both"}
    models = {r["model"] for r in rows}
    assert "HIRE" in models and "GraphHINGE" in models and "MetaHIN" in models

    # Shape check (soft, recorded): HIRE's mean NDCG@5 vs the CF family.
    def mean_ndcg(name):
        vals = [r["ndcg"] for r in rows if r["model"] == name and r["k"] == 5]
        return float(np.mean(vals)) if vals else float("nan")

    hire = mean_ndcg("HIRE")
    cf_best = max(mean_ndcg(m) for m in ("NeuMF", "Wide&Deep", "DeepFM", "AFN"))
    benchmark.extra_info["hire_ndcg5"] = hire
    benchmark.extra_info["best_cf_ndcg5"] = cf_best
    benchmark.extra_info["hire_beats_cf"] = bool(hire >= cf_best - 0.02)
