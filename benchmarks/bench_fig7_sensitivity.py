"""Fig. 7: sensitivity of HIRE to (a) the number of HIM blocks K ∈ {1..4}
and (b) the context size ∈ {16, 32, 48, 64}, metrics @5, three scenarios.

Paper shape: performance peaks at K = 3 on MovieLens (more blocks overfit);
accuracy is non-monotonic in the context size with 32 the sweet spot.
"""

import pytest

from repro.experiments import render_sweep_table, run_sensitivity


@pytest.mark.benchmark(group="fig7")
def test_fig7_sensitivity_blocks_and_context(benchmark, save):
    rows = benchmark.pedantic(
        lambda: run_sensitivity(scale="fast", max_tasks=5, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "fig7 produced no rows"

    block_rows = [r for r in rows if r["sweep"] == "num_him_blocks"]
    context_rows = [r for r in rows if r["sweep"] == "context_size"]
    assert {r["value"] for r in block_rows} == {1, 2, 3, 4}
    assert {r["value"] for r in context_rows} == {16, 32, 48, 64}

    table = ("HIM blocks sweep\n" + render_sweep_table(block_rows, "value")
             + "\n\nContext size sweep\n" + render_sweep_table(context_rows, "value"))
    save("fig7_sensitivity", table)
    from repro.viz import fig7_svg
    save("fig7_blocks.svg", fig7_svg(block_rows, sweep="num_him_blocks"))
    save("fig7_context.svg", fig7_svg(context_rows, sweep="context_size"))
    print("\nFig. 7 (sensitivity)\n" + table)

    for r in rows:
        for metric in ("precision", "ndcg", "map"):
            assert 0.0 <= r[metric] <= 1.0
