"""Empirical check of the paper's complexity analysis (§V-B).

The paper derives the per-context cost of HIRE as O(K · n·m·e · (n + m + h)).
This bench measures forward-pass wall-clock while scaling each factor
independently and checks the growth direction (and rough factor) matches:

* doubling K (blocks)        → ~2× time,
* doubling n and m together  → ~8× time (the n·m·(n+m) term),
* doubling h via attr_dim    → super-linear but bounded growth.

Absolute times are machine-specific; the *ratios* are the reproduced claim.
"""

import time

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, build_context
from repro.data import RatingGraph, movielens_like, make_cold_start_split


def _forward_seconds(model, context, repeats: int = 3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        model.predict(context)
        best = min(best, time.perf_counter() - start)
    return best


@pytest.mark.benchmark(group="complexity")
def test_complexity_scaling_matches_paper_analysis(benchmark, save):
    dataset = movielens_like(num_users=200, num_items=150, seed=0,
                             ratings_per_user=30.0)
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    graph = RatingGraph(split.train_ratings(), dataset.num_users, dataset.num_items)
    rng = np.random.default_rng(0)

    def context_of(size: int):
        users = rng.permutation(split.train_users)[:size]
        items = rng.permutation(split.train_items)[:size]
        return build_context(graph, users, items, np.random.default_rng(0))

    def run():
        timings = {}
        base_ctx = context_of(12)
        # K sweep.
        for blocks in (1, 2, 4):
            model = HIRE(dataset, HIREConfig(num_blocks=blocks, num_heads=2,
                                             attr_dim=8, seed=0))
            timings[f"K={blocks}"] = _forward_seconds(model, base_ctx)
        # context-size sweep (n = m).
        model = HIRE(dataset, HIREConfig(num_blocks=2, num_heads=2,
                                         attr_dim=8, seed=0))
        for size in (8, 16, 32):
            timings[f"nm={size}"] = _forward_seconds(model, context_of(size))
        # attribute-width sweep (e = h·f with h fixed).
        for attr_dim in (4, 8, 16):
            model = HIRE(dataset, HIREConfig(num_blocks=2, num_heads=2,
                                             attr_dim=attr_dim, seed=0))
            timings[f"f={attr_dim}"] = _forward_seconds(model, base_ctx)
        return timings

    timings = benchmark.pedantic(run, rounds=1, iterations=1)

    lines = [f"{name:>8s}: {seconds * 1e3:9.2f} ms" for name, seconds in timings.items()]
    text = "\n".join(lines)
    save("complexity_scaling", text)
    print("\nComplexity scaling (§V-B)\n" + text)

    # K term: linear in the number of blocks (allow generous slack).
    assert timings["K=4"] > timings["K=1"] * 1.5
    # n·m·(n+m) term: 4× the entities should cost much more than 4×.
    assert timings["nm=32"] > timings["nm=8"] * 4.0
    # e term grows with attribute width.
    assert timings["f=16"] > timings["f=4"]

    benchmark.extra_info.update({k: v for k, v in timings.items()})
