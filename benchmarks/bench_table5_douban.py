"""Table V: overall performance on Douban(-like), including GraphRec.

Shape: GraphRec is competitive in the user cold-start scenario (social
relations help cold users) but weaker with cold items; HIRE leads overall.
"""

import numpy as np
import pytest

from repro.experiments import EXPERIMENTS, render_overall_table, run_overall_performance


@pytest.mark.benchmark(group="table5")
def test_table5_overall_performance_douban(benchmark, save):
    spec = EXPERIMENTS["table5"]

    rows = benchmark.pedantic(
        lambda: run_overall_performance(spec, scale="fast", max_tasks=12, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "table5 produced no rows"
    table = render_overall_table(rows, ks=spec.ks)
    save("table5_douban", table)
    print("\nTable V (Douban-like)\n" + table)

    models = {r["model"] for r in rows}
    assert "GraphRec" in models, "GraphRec must run on the social dataset"
    assert "HIRE" in models

    def mean_metric(name, metric, scenario=None):
        vals = [r[metric] for r in rows
                if r["model"] == name and r["k"] == 5
                and (scenario is None or r["scenario"] == scenario)]
        return float(np.mean(vals)) if vals else float("nan")

    benchmark.extra_info["hire_ndcg5"] = mean_metric("HIRE", "ndcg")
    benchmark.extra_info["graphrec_uc_ndcg5"] = mean_metric("GraphRec", "ndcg", "user")
    benchmark.extra_info["graphrec_ic_ndcg5"] = mean_metric("GraphRec", "ndcg", "item")
