"""Table VI: ablation of the three attention layers (MBU / MBI / MBA).

Seven variants — the full model and all single/double layer removals — in
the three cold-start scenarios, metrics @5 on the MovieLens-like workload.

Paper shape: the full model is best overall; user-attention alone
("wo/ Item & Attribute") is the weakest variant.
"""

import numpy as np
import pytest

from repro.experiments import render_ablation_table, run_ablation


@pytest.mark.benchmark(group="table6")
def test_table6_attention_ablation(benchmark, save):
    rows = benchmark.pedantic(
        lambda: run_ablation(scale="fast", max_tasks=5, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "table6 produced no rows"
    table = render_ablation_table(rows)
    save("table6_ablation", table)
    print("\nTable VI (attention-layer ablation)\n" + table)

    variants = {r["variant"] for r in rows}
    assert len(variants) == 7
    assert "full model" in variants

    def mean_ndcg(variant):
        vals = [r["ndcg"] for r in rows if r["variant"] == variant]
        return float(np.mean(vals))

    full = mean_ndcg("full model")
    benchmark.extra_info["full_model_ndcg5"] = full
    benchmark.extra_info["worst_variant_ndcg5"] = min(
        mean_ndcg(v) for v in variants if v != "full model")
    benchmark.extra_info["full_is_best"] = bool(
        full >= max(mean_ndcg(v) for v in variants) - 0.05)
