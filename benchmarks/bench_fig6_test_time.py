"""Fig. 6: total test time per method (user cold-start, all three datasets).

Paper shape: the CF family is fastest (pair-at-a-time forward passes); HIRE
is mid-pack (multi-layer MHSA over contexts); adaptation-based meta-learners
and the graph aggregators are slowest, with MAMO roughly an order of
magnitude slower than HIRE.
"""

import pytest

from repro.experiments import render_timing_table, run_test_time


@pytest.mark.benchmark(group="fig6")
def test_fig6_total_test_time(benchmark, save):
    rows = benchmark.pedantic(
        lambda: run_test_time(scale="fast", max_tasks=5, seed=0),
        rounds=1, iterations=1,
    )
    assert rows, "fig6 produced no rows"
    table = render_timing_table(rows)
    save("fig6_test_time", table)
    from repro.viz import fig6_svg
    save("fig6_test_time.svg", fig6_svg(rows))
    print("\nFig. 6 (total test time, seconds)\n" + table)

    by_model: dict[str, float] = {}
    for row in rows:
        by_model.setdefault(row["model"], 0.0)
        by_model[row["model"]] += row["test_seconds"]

    # Record the paper's headline timing relations.
    cf_fastest = min(by_model[m] for m in ("NeuMF", "Wide&Deep", "DeepFM", "AFN"))
    benchmark.extra_info["cf_fastest_s"] = cf_fastest
    benchmark.extra_info["hire_s"] = by_model.get("HIRE")
    benchmark.extra_info["mamo_s"] = by_model.get("MAMO")
    benchmark.extra_info["cf_faster_than_hire"] = bool(cf_fastest <= by_model["HIRE"])
