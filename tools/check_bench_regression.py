#!/usr/bin/env python3
"""Guard the committed benchmark trajectory: fail on headline regressions.

The repo tracks performance as ``BENCH_*.json`` files at the root, rewritten
by each full benchmark run.  This tool diffs the current files against a
baseline — by default the committed version at ``HEAD`` (``git show``), or a
directory of baseline files via ``--baseline-dir`` — and **fails (exit 1)
when any headline metric drops by more than the tolerance** (default 10%).

Headline metrics are the higher-is-better numbers each benchmark exists to
defend, and they are all *ratios* (speedups, gains) measured within one run:
ratios normalise machine speed, so the gate survives the baseline having
been produced on a faster or slower box.  Absolute numbers — latencies, raw
seconds, requests/second — are deliberately not compared; machine state
moves them tens of percent with no code change.  Files or metrics absent
from the baseline are skipped — a new benchmark cannot regress against
nothing — and so are payloads whose ``measurement`` field (the benchmark's
own methodology marker: repeat counts, interleaving) differs from the
baseline's, because a protocol change resets the trajectory.

Usage::

    python tools/check_bench_regression.py                  # vs HEAD
    python tools/check_bench_regression.py --baseline-ref origin/main
    python tools/check_bench_regression.py --baseline-dir /path/to/old
    python tools/check_bench_regression.py --tolerance 0.05
"""

from __future__ import annotations

import argparse
import json
import subprocess
import sys
from pathlib import Path

# file -> dotted paths of higher-is-better headline metrics (ratios only).
# The sharding metrics are deterministic ratios (seeded workload + stable
# user hash): balance = mean/max requests per shard, precision = fraction
# of cache entries spared by fine-grained invalidation.  Per-shard p99s
# are recorded in the payload but deliberately not gated — absolute
# latencies move with machine state, not code.
HEADLINE = {
    "BENCH_serve.json": (
        "best_speedup",
        "packing.pack_gain",
        "sharding.balance",
        "sharding.invalidation_precision",
        # Context-assembly fast path: CSR-vectorized BFS over the loop
        # reference, and the frontier cache's steady-state hit rate on
        # repeat traffic (deterministic under the seeded workload).
        "assembly.vectorized_speedup",
        "assembly.frontier.hot_hit_rate",
    ),
    "BENCH_infer.json": ("speedup_single", "speedup_batched"),
    "BENCH_online.json": ("recovery.rmse_recovery_ratio",),
    "BENCH_pareto.json": ("latency_dynamic_range",),
    "BENCH_pipeline.json": ("best_speedup",),
    "BENCH_substrate.json": ("speedup_forward", "speedup_train_step"),
}


def dotted_get(payload: dict, path: str):
    """Resolve ``a.b.c`` through nested dicts; ``None`` when absent."""
    node = payload
    for part in path.split("."):
        if not isinstance(node, dict) or part not in node:
            return None
        node = node[part]
    return node


def _parse(text: str) -> dict | None:
    """JSON-decode a payload; ``None`` (→ clean skip) on anything broken.

    A truncated or hand-mangled baseline file must read as "no baseline",
    not crash the gate — a broken baseline can never prove a regression.
    """
    try:
        payload = json.loads(text)
    except (json.JSONDecodeError, ValueError):
        return None
    return payload if isinstance(payload, dict) else None


def load_current(repo_root: Path, filename: str) -> dict | None:
    path = repo_root / filename
    if not path.is_file():
        return None
    return _parse(path.read_text())


def load_baseline(repo_root: Path, filename: str, ref: str,
                  baseline_dir: Path | None) -> dict | None:
    if baseline_dir is not None:
        path = baseline_dir / filename
        if not path.is_file():
            return None
        return _parse(path.read_text())
    try:
        proc = subprocess.run(
            ["git", "show", f"{ref}:{filename}"],
            cwd=repo_root, capture_output=True, text=True)
    except OSError:
        return None
    if proc.returncode != 0:
        # The file is absent from the baseline commit (a brand-new
        # benchmark) or the ref is unknown — nothing to regress against.
        return None
    return _parse(proc.stdout)


def compare(current: dict, baseline: dict, filename: str,
            tolerance: float) -> tuple[list[str], list[str]]:
    """One file's headline diff: (report lines, failure lines)."""
    lines, failures = [], []
    for metric in HEADLINE[filename]:
        new = dotted_get(current, metric)
        old = dotted_get(baseline, metric)
        if not isinstance(new, (int, float)) or not isinstance(old, (int, float)):
            lines.append(f"  {metric}: skipped (missing in "
                         f"{'current' if new is None else 'baseline'})")
            continue
        change = (new - old) / old if old else 0.0
        verdict = "ok"
        if new < old * (1.0 - tolerance):
            verdict = "REGRESSION"
            failures.append(
                f"{filename}: {metric} fell {-change * 100:.1f}% "
                f"({old:.4g} -> {new:.4g}; tolerance {tolerance * 100:.0f}%)")
        lines.append(f"  {metric}: {old:.4g} -> {new:.4g} "
                     f"({change * 100:+.1f}%) {verdict}")
    return lines, failures


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        description="Diff BENCH_*.json headline metrics against a baseline.")
    parser.add_argument("--repo-root", type=Path,
                        default=Path(__file__).resolve().parents[1])
    parser.add_argument("--baseline-ref", default="HEAD",
                        help="git ref holding the baseline files")
    parser.add_argument("--baseline-dir", type=Path, default=None,
                        help="directory of baseline files (overrides the ref)")
    parser.add_argument("--tolerance", type=float, default=0.10,
                        help="allowed fractional drop before failing")
    args = parser.parse_args(argv)

    failures: list[str] = []
    compared = 0
    for filename in sorted(HEADLINE):
        current = load_current(args.repo_root, filename)
        if current is None:
            print(f"{filename}: not present, skipped")
            continue
        baseline = load_baseline(args.repo_root, filename,
                                 args.baseline_ref, args.baseline_dir)
        if baseline is None:
            print(f"{filename}: no baseline, skipped")
            continue
        if current.get("smoke") or baseline.get("smoke"):
            print(f"{filename}: smoke-mode payload, skipped")
            continue
        if current.get("measurement") != baseline.get("measurement"):
            # A benchmark that changed how it measures (repeat counts,
            # interleaving, warmup policy) produces numbers that are not
            # comparable to the old protocol's — the first run under the
            # new protocol becomes the new baseline instead of being
            # judged against the old one.
            print(f"{filename}: measurement protocol changed "
                  f"({baseline.get('measurement')} -> "
                  f"{current.get('measurement')}), skipped")
            continue
        print(f"{filename}:")
        lines, file_failures = compare(current, baseline, filename,
                                       args.tolerance)
        print("\n".join(lines))
        failures.extend(file_failures)
        compared += 1

    if failures:
        print(f"\n{len(failures)} headline regression(s):", file=sys.stderr)
        for failure in failures:
            print(f"  {failure}", file=sys.stderr)
        return 1
    print(f"\n{compared} benchmark file(s) checked, no headline regressions.")
    return 0


if __name__ == "__main__":
    sys.exit(main())
