"""The experiments CLI: argument handling and artifact rendering."""

import pytest

from repro.experiments.cli import build_parser, main, render_experiment


class TestParser:
    def test_list_command(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "table3" in out and "fig9" in out
        assert "Table III" in out

    def test_unknown_experiment(self, capsys):
        assert main(["run", "table99"]) == 2
        assert "unknown" in capsys.readouterr().err

    def test_run_requires_experiment(self):
        with pytest.raises(SystemExit):
            build_parser().parse_args(["run"])


class TestRun:
    def test_run_writes_artifact(self, tmp_path, capsys):
        code = main(["run", "fig9", "--scale", "fast", "-o", str(tmp_path), "--svg"])
        assert code == 0
        artifact = tmp_path / "fig9.txt"
        assert artifact.exists()
        text = artifact.read_text()
        assert "MBU" in text and "MBA" in text
        assert "Fig. 9" in capsys.readouterr().out
        # --svg also writes the three heatmaps.
        for which in ("user", "item", "attr"):
            assert (tmp_path / f"fig9_{which}.svg").exists()

    def test_run_table_stubbed(self, tmp_path, capsys, monkeypatch):
        """Full-table runs are exercised by the benchmarks; here we check the
        CLI wiring (dispatch, rendering, file output) with a stub runner."""
        import repro.experiments.cli as cli

        def fake_run(experiment_id, scale="fast", seed=0, **kwargs):
            assert experiment_id == "fig8"
            return [{"sampler": "neighborhood", "scenario": "user",
                     "precision": 0.6, "ndcg": 0.9, "map": 0.5}]

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        code = main(["run", "fig8", "--scale", "fast", "--max-tasks", "2",
                     "-o", str(tmp_path)])
        assert code == 0
        text = (tmp_path / "fig8.txt").read_text()
        assert "neighborhood" in text


class TestCompareCommand:
    def test_compare_writes_verdicts(self, tmp_path, capsys, monkeypatch):
        import repro.experiments.cli as cli

        def fake_run(experiment_id, scale="fast", seed=0, **kwargs):
            rows = []
            for scenario in ("user", "item", "both"):
                rows.append({"scenario": scenario, "model": "HIRE", "k": 5,
                             "precision": 0.6, "ndcg": 0.9, "map": 0.5})
                rows.append({"scenario": scenario, "model": "NeuMF", "k": 5,
                             "precision": 0.3, "ndcg": 0.6, "map": 0.2})
            return rows

        monkeypatch.setattr(cli, "run_experiment", fake_run)
        code = main(["compare", "table4", "-o", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "paper N@5" in out and "PASS" in out or "MISS" in out
        assert (tmp_path / "table4_compare.txt").exists()

    def test_compare_rejects_figures(self, capsys):
        assert main(["compare", "fig6"]) == 2
        assert "no paper numbers" in capsys.readouterr().err


class TestRenderDispatch:
    def test_overall(self):
        rows = [{"scenario": "user", "model": "HIRE", "k": 5,
                 "precision": 0.5, "ndcg": 0.9, "map": 0.4}]
        assert "HIRE" in render_experiment("table3", rows)

    def test_fig6(self):
        rows = [{"dataset": "movielens", "model": "HIRE", "test_seconds": 0.5}]
        assert "HIRE" in render_experiment("fig6", rows)

    def test_fig7_splits_sweeps(self):
        rows = [
            {"sweep": "num_him_blocks", "value": 3, "scenario": "user",
             "precision": 0.5, "ndcg": 0.9, "map": 0.4},
            {"sweep": "context_size", "value": 32, "scenario": "user",
             "precision": 0.5, "ndcg": 0.9, "map": 0.4},
        ]
        text = render_experiment("fig7", rows)
        assert "HIM blocks sweep" in text and "Context size sweep" in text

    def test_unknown(self):
        with pytest.raises(KeyError):
            render_experiment("fig99", [])


class TestServeCommand:
    def test_serve_replays_and_reports(self, tmp_path, capsys):
        code = main(["serve", "--requests", "6", "--max-tasks", "4",
                     "--train-steps", "2", "--batch-size", "4",
                     "-o", str(tmp_path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "serve replay" in out
        assert "req/s" in out
        assert "serve.latency_seconds" in out
        text = (tmp_path / "serve.txt").read_text()
        assert "serve.requests_total" in text

    def test_serve_sharded_with_update_bursts(self, capsys):
        code = main(["serve", "--requests", "6", "--max-tasks", "4",
                     "--train-steps", "2", "--shards", "2",
                     "--update-bursts", "1", "--burst-size", "2"])
        assert code == 0
        out = capsys.readouterr().out
        assert "shards=2" in out
        assert "shard router: 2 shards" in out
        # The summary line surfaces applied/skipped delta counts.
        assert "applied" in out and "skipped" in out
        assert "across 1 bursts" in out

    def test_serve_from_checkpoint_and_workload_file(self, tmp_path, capsys):
        from repro.core import HIRE, HIREConfig
        from repro.data import dataset_by_name, make_cold_start_split
        from repro.eval.tasks import build_eval_tasks
        from repro.experiments.configs import DATASET_SCALES
        from repro.serve import save_workload, synthesize_workload

        sizes = DATASET_SCALES["fast"]
        dataset = dataset_by_name(
            "movielens", seed=0,
            num_users=sizes["num_users"], num_items=sizes["num_items"],
            ratings_per_user=sizes["ratings_per_user"]["movielens"])
        model = HIRE(dataset, HIREConfig(num_blocks=1, num_heads=2,
                                         attr_dim=4, seed=0))
        checkpoint = model.save(tmp_path / "model")

        split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
        tasks = build_eval_tasks(split, "user", min_query=2, seed=0,
                                 max_tasks=4)
        workload = save_workload(tmp_path / "traffic.jsonl",
                                 synthesize_workload(tasks, 5, seed=0))

        code = main(["serve", "--checkpoint", str(checkpoint),
                     "--workload", str(workload), "--no-cache"])
        assert code == 0
        out = capsys.readouterr().out
        assert "model=checkpoint" in out
        assert "5 requests" in out
