"""Experiment runner: tiny invocations of every paper-artifact function."""

import numpy as np
import pytest

from repro.experiments import (
    EXPERIMENTS,
    prepare_workload,
    run_ablation,
    run_case_study,
    run_experiment,
    run_overall_performance,
    run_sampling_ablation,
    run_sensitivity,
    run_test_time,
)


class TestRegistry:
    def test_all_paper_artifacts_present(self):
        assert set(EXPERIMENTS) == {
            "table3", "table4", "table5", "fig6", "fig7", "table6", "fig8", "fig9",
        }

    def test_specs_have_workloads(self):
        for spec in EXPERIMENTS.values():
            assert spec.dataset in ("movielens", "bookcrossing", "douban")
            assert spec.paper_artifact

    def test_prepare_workload(self):
        dataset, split = prepare_workload(EXPERIMENTS["table3"], scale="fast", seed=0)
        assert dataset.name == "movielens-like"
        assert len(split.train_ratings()) > 0

    def test_unknown_experiment(self):
        with pytest.raises(KeyError):
            run_experiment("table9")


class TestOverallPerformance:
    def test_rows_schema(self):
        rows = run_overall_performance(
            EXPERIMENTS["table3"], scale="fast", max_tasks=2, seed=0,
            models=("NeuMF",))
        assert rows
        for row in rows:
            for key in ("scenario", "model", "k", "precision", "ndcg", "map"):
                assert key in row
            assert 0 <= row["precision"] <= 1

    def test_scenarios_covered(self):
        rows = run_overall_performance(
            EXPERIMENTS["table3"], scale="fast", max_tasks=2, seed=0,
            models=("NeuMF",))
        assert {r["scenario"] for r in rows} == {"user", "item", "both"}


class TestTestTime:
    def test_rows(self):
        rows = run_test_time(scale="fast", max_tasks=2, seed=0,
                             datasets=("movielens",), models=("NeuMF", "TaNP"))
        assert len(rows) == 2
        for row in rows:
            assert row["test_seconds"] > 0


class TestSweeps:
    def test_sensitivity_rows(self):
        rows = run_sensitivity(scale="fast", max_tasks=2, seed=0,
                               num_blocks=(1,), context_sizes=(16,),
                               scenarios=("user",))
        sweeps = {r["sweep"] for r in rows}
        assert sweeps == {"num_him_blocks", "context_size"}

    def test_ablation_rows(self):
        rows = run_ablation(scale="fast", max_tasks=2, seed=0, scenarios=("user",))
        variants = {r["variant"] for r in rows}
        assert "full model" in variants
        assert len(variants) == 7

    def test_sampling_rows(self):
        rows = run_sampling_ablation(scale="fast", max_tasks=2, seed=0,
                                     samplers=("neighborhood", "random"),
                                     scenarios=("user",))
        assert {r["sampler"] for r in rows} == {"neighborhood", "random"}


class TestCaseStudy:
    def test_outputs(self):
        out = run_case_study(scale="fast", seed=0, context_size=8)
        assert set(out["attention"]) == {"user", "item", "attr"}
        n = len(out["users"])
        m = len(out["items"])
        assert out["attention"]["user"].shape == (n, n)
        assert out["attention"]["item"].shape == (m, m)
        h = len(out["attribute_names"])
        assert out["attention"]["attr"].shape == (h, h)
        assert out["predictions"].shape == (n, m)
        # attention rows are probability distributions
        np.testing.assert_allclose(out["attention"]["user"].sum(axis=-1),
                                   np.ones(n), atol=1e-8)
