"""Workload preparation: scales, per-profile rating densities, min_query."""

import pytest

from repro.experiments import DATASET_SCALES, EXPERIMENTS, prepare_workload
from repro.experiments.runner import _min_query, _workload


class TestScales:
    def test_fast_and_full_defined(self):
        assert set(DATASET_SCALES) == {"fast", "full"}
        for scale in DATASET_SCALES.values():
            assert scale["num_users"] > 0
            assert set(scale["ratings_per_user"]) == {
                "movielens", "douban", "bookcrossing"}

    def test_full_is_larger(self):
        assert DATASET_SCALES["full"]["num_users"] > DATASET_SCALES["fast"]["num_users"]
        assert DATASET_SCALES["full"]["num_items"] > DATASET_SCALES["fast"]["num_items"]

    @pytest.mark.parametrize("profile", ["movielens", "douban", "bookcrossing"])
    def test_workload_builds_per_profile(self, profile):
        dataset, split = _workload(profile, "fast", seed=0)
        assert dataset.num_users == DATASET_SCALES["fast"]["num_users"]
        assert len(split.train_ratings()) > 0
        # Every scenario has a non-empty cold quadrant at the fast scale.
        for scenario in ("user", "item", "both"):
            assert len(split.eval_ratings(scenario)) > 0

    def test_douban_workload_has_social(self):
        dataset, _ = _workload("douban", "fast", seed=0)
        assert dataset.social_edges is not None

    def test_prepare_workload_uses_spec_dataset(self):
        dataset, _ = prepare_workload(EXPERIMENTS["table4"], scale="fast", seed=0)
        assert dataset.name == "bookcrossing-like"


class TestMinQuery:
    def test_single_cold_scenarios_near_largest_k(self):
        assert _min_query("user", (5, 7, 10)) == 8
        assert _min_query("item", (5, 7, 10)) == 8

    def test_both_scenario_relaxed(self):
        assert _min_query("both", (5, 7, 10)) == 5

    def test_floor_of_five(self):
        assert _min_query("user", (5,)) == 5

    def test_workloads_support_the_min_query(self):
        """At the fast scale, every scenario must still yield tasks under
        its min_query — otherwise the table benches would silently skip."""
        from repro.eval import build_eval_tasks

        for profile, spec_id in (("movielens", "table3"),
                                 ("bookcrossing", "table4"),
                                 ("douban", "table5")):
            _, split = _workload(profile, "fast", seed=0)
            for scenario in ("user", "item", "both"):
                tasks = build_eval_tasks(
                    split, scenario,
                    min_query=_min_query(scenario, (5, 7, 10)), seed=0)
                assert tasks, (profile, scenario)
