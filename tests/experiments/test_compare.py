"""Paper-number tables and the paper-vs-measured comparison logic."""

import pytest

from repro.experiments import (
    PAPER_TABLE3,
    PAPER_TABLE6,
    compare_overall,
    paper_cell,
    render_comparison,
    shape_checks,
)


def synthetic_rows(hire_ndcg=0.9, cf_ndcg=0.6, meta_ndcg=0.75):
    """Measured rows with a controllable ordering."""
    rows = []
    for scenario in ("user", "item", "both"):
        for model, ndcg in (
            ("NeuMF", cf_ndcg), ("Wide&Deep", cf_ndcg), ("DeepFM", cf_ndcg),
            ("AFN", cf_ndcg), ("MAMO", meta_ndcg), ("TaNP", meta_ndcg),
            ("MeLU", meta_ndcg), ("HIRE", hire_ndcg),
        ):
            rows.append({"scenario": scenario, "model": model, "k": 5,
                         "precision": ndcg - 0.2, "ndcg": ndcg, "map": ndcg - 0.3})
    return rows


class TestPaperNumbers:
    def test_table3_hire_leads_everywhere(self):
        """Internal consistency of the transcription: HIRE's NDCG@5 is the
        column max in every Table III scenario."""
        for scenario, models in PAPER_TABLE3.items():
            hire = models["HIRE"][1]
            for name, values in models.items():
                if name != "HIRE" and values[1] is not None:
                    assert hire >= values[1], (scenario, name)

    def test_table6_full_model_best_overall(self):
        for scenario, variants in PAPER_TABLE6.items():
            full = variants["full model"][1]
            for name, values in variants.items():
                assert full >= values[1] - 1e-9, (scenario, name)

    def test_paper_cell_lookup(self):
        assert paper_cell("table3", "user", "HIRE", "ndcg") == pytest.approx(0.9169)
        assert paper_cell("table3", "user", "HIRE", "precision") == pytest.approx(0.6999)
        assert paper_cell("table3", "both", "MeLU", "precision") is None

    def test_unknown_table(self):
        with pytest.raises(KeyError):
            paper_cell("table9", "user", "HIRE")


class TestCompare:
    def test_records_pair_paper_and_measured(self):
        rows = synthetic_rows()
        records = compare_overall("table4", rows)
        hire_user = next(r for r in records
                         if r["model"] == "HIRE" and r["scenario"] == "user")
        assert hire_user["paper"]["ndcg"] == pytest.approx(0.8931)
        assert hire_user["measured"]["ndcg"] == pytest.approx(0.9)

    def test_missing_measured_cells_are_none(self):
        records = compare_overall("table3", [])
        assert all(r["measured"]["ndcg"] is None for r in records)

    def test_render_contains_verdicts(self):
        text = render_comparison("table4", synthetic_rows())
        assert "PASS" in text
        assert "paper finding" in text


class TestShapeChecks:
    def test_all_pass_when_hire_dominates(self):
        checks = shape_checks("table4", synthetic_rows(hire_ndcg=0.95))
        assert checks["hire_beats_cf_family"] is True
        assert checks["hire_top2_each_scenario"] is True
        assert checks["meta_beats_cf_on_cold_items"] is True

    def test_fail_when_cf_dominates(self):
        checks = shape_checks("table4", synthetic_rows(hire_ndcg=0.4, cf_ndcg=0.9,
                                                       meta_ndcg=0.5))
        assert checks["hire_beats_cf_family"] is False
        assert checks["meta_beats_cf_on_cold_items"] is False

    def test_top2_allows_second_place(self):
        rows = synthetic_rows(hire_ndcg=0.74, cf_ndcg=0.6, meta_ndcg=0.75)
        checks = shape_checks("table4", rows)
        assert checks["hire_top2_each_scenario"] is True

    def test_empty_rows_yield_none(self):
        checks = shape_checks("table4", [])
        assert all(v is None for v in checks.values())
