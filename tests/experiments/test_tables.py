"""Table renderers produce readable, value-bearing text."""

import numpy as np

from repro.experiments import (
    render_ablation_table,
    render_attention_matrix,
    render_overall_table,
    render_sweep_table,
    render_timing_table,
)


def overall_rows():
    rows = []
    for scenario in ("user", "item"):
        for model in ("HIRE", "NeuMF"):
            for k in (5, 7):
                rows.append({
                    "scenario": scenario, "model": model, "k": k,
                    "precision": 0.5, "ndcg": 0.9, "map": 0.4,
                })
    return rows


class TestOverall:
    def test_contains_models_and_values(self):
        text = render_overall_table(overall_rows(), ks=(5, 7))
        assert "HIRE" in text and "NeuMF" in text
        assert "0.5000" in text and "0.9000" in text
        assert "UC" in text and "IC" in text

    def test_missing_cells_dashed(self):
        rows = [{"scenario": "user", "model": "HIRE", "k": 5,
                 "precision": 0.1, "ndcg": 0.2, "map": 0.3}]
        text = render_overall_table(rows, ks=(5, 10))
        assert "-" in text

    def test_empty(self):
        assert render_overall_table([]) == "(no results)"


class TestAblation:
    def test_layout(self):
        rows = [
            {"variant": "full model", "scenario": "user",
             "precision": 0.67, "ndcg": 0.9, "map": 0.6},
            {"variant": "wo/ User", "scenario": "user",
             "precision": 0.5, "ndcg": 0.8, "map": 0.4},
        ]
        text = render_ablation_table(rows)
        assert "full model" in text and "wo/ User" in text
        assert "0.6700" in text

    def test_empty(self):
        assert render_ablation_table([]) == "(no results)"


class TestTiming:
    def test_layout(self):
        rows = [
            {"dataset": "movielens", "model": "HIRE", "test_seconds": 1.5},
            {"dataset": "movielens", "model": "NeuMF", "test_seconds": 0.1},
        ]
        text = render_timing_table(rows)
        assert "HIRE" in text and "1.500s" in text

    def test_empty(self):
        assert render_timing_table([]) == "(no results)"


class TestSweep:
    def test_layout(self):
        rows = [{"sweep": "num_him_blocks", "value": 3, "scenario": "user",
                 "precision": 0.6, "ndcg": 0.9, "map": 0.55,
                 "num_him_blocks": 3}]
        text = render_sweep_table(rows, "value")
        assert "0.6000" in text


class TestAttentionHeatmap:
    def test_renders_rows(self):
        matrix = np.random.default_rng(0).random((4, 4))
        text = render_attention_matrix(matrix, labels=["a", "b", "c", "d"])
        assert text.count("\n") == 3
        assert "a" in text

    def test_constant_matrix(self):
        text = render_attention_matrix(np.ones((2, 2)))
        assert "|" in text

    def test_truncates_to_max_width(self):
        matrix = np.random.default_rng(0).random((30, 30))
        text = render_attention_matrix(matrix, max_width=5)
        assert text.count("\n") == 4
