"""Model registry and the HIRE adapter."""

import numpy as np
import pytest

from repro.baselines import RatingModel
from repro.core import HIREConfig, TrainerConfig
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import HIREModel, MODEL_NAMES, create_model, models_for_dataset


class TestCreateModel:
    @pytest.mark.parametrize("name", [n for n in MODEL_NAMES if n != "GraphRec"])
    def test_all_names_construct(self, name, ml_dataset):
        model = create_model(name, ml_dataset, seed=0, preset="fast")
        assert isinstance(model, RatingModel)
        assert model.name == name

    def test_graphrec_needs_social(self, ml_dataset, douban_dataset):
        with pytest.raises(ValueError):
            create_model("GraphRec", ml_dataset)
        model = create_model("GraphRec", douban_dataset)
        assert model.name == "GraphRec"

    def test_unknown_name(self, ml_dataset):
        with pytest.raises(KeyError):
            create_model("SVD++", ml_dataset)

    def test_unknown_preset(self, ml_dataset):
        with pytest.raises(KeyError):
            create_model("NeuMF", ml_dataset, preset="warp")

    def test_name_aliases(self, ml_dataset):
        for alias in ("Wide&Deep", "widedeep", "wide_deep"):
            assert create_model(alias, ml_dataset).name == "Wide&Deep"


class TestModelsForDataset:
    def test_movielens_gets_hin_models(self, ml_dataset):
        names = models_for_dataset(ml_dataset)
        assert "GraphHINGE" in names and "MetaHIN" in names
        assert "GraphRec" not in names
        assert names[-1] == "HIRE"

    def test_douban_gets_social_model(self, douban_dataset):
        names = models_for_dataset(douban_dataset)
        assert "GraphRec" in names
        assert "GraphHINGE" not in names

    def test_bookcrossing_gets_neither(self, book_dataset):
        names = models_for_dataset(book_dataset)
        assert "GraphRec" not in names and "GraphHINGE" not in names


class TestHIREAdapter:
    def test_fit_predict_cycle(self, ml_dataset, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=3)
        model = HIREModel(
            ml_dataset,
            config=HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0),
            trainer_config=TrainerConfig(steps=5, batch_size=1, context_users=8,
                                         context_items=8, seed=0),
        )
        result = evaluate_model(model, ml_split, "user", ks=(5,), tasks=tasks)
        assert result.num_tasks == len(tasks)
        assert 0 <= result.metrics[5]["ndcg"] <= 1

    def test_predict_before_fit(self, ml_dataset, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=1)
        with pytest.raises(RuntimeError):
            HIREModel(ml_dataset).predict_task(tasks[0])

    def test_sampler_choice_forwarded(self, ml_dataset, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=2)
        model = HIREModel(
            ml_dataset,
            config=HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0),
            trainer_config=TrainerConfig(steps=3, batch_size=1, context_users=6,
                                         context_items=6, seed=0),
            sampler="random",
        )
        model.fit(ml_split, tasks)
        from repro.core.sampling import RandomSampler
        assert isinstance(model.predictor.sampler, RandomSampler)
