"""Trainer telemetry: observer events, sinks, passivity, edge paths.

The determinism tests are the PR's acceptance gate: ``loss_history`` must
be bit-identical with full recording enabled vs. disabled, because
telemetry never touches an ``np.random.Generator`` stream.
"""

import io

import numpy as np
import pytest

from repro import obs
from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from repro.obs import ophooks


@pytest.fixture(autouse=True)
def clean_obs():
    obs.reset_spans()
    obs.enable_profiling(False)
    yield
    ophooks.uninstrument()
    obs.reset_spans()
    obs.enable_profiling(False)


def make_trainer(ml_dataset, ml_split, observers=None, **overrides):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                        attr_dim=4, seed=0))
    defaults = dict(steps=6, batch_size=2, context_users=8, context_items=8,
                    seed=0)
    defaults.update(overrides)
    return HIRETrainer(model, ml_split, config=TrainerConfig(**defaults),
                       observers=observers)


class CollectingObserver(obs.TrainerObserver):
    def __init__(self):
        self.fit_starts = []
        self.steps = []
        self.validations = []
        self.summaries = []

    def on_fit_start(self, trainer, config):
        self.fit_starts.append(config)

    def on_step(self, event):
        self.steps.append(event)

    def on_validation(self, event):
        self.validations.append(event)

    def on_fit_end(self, summary):
        self.summaries.append(summary)


class TestObserverEvents:
    def test_step_events_carry_training_signals(self, ml_dataset, ml_split):
        collector = CollectingObserver()
        trainer = make_trainer(ml_dataset, ml_split, observers=[collector])
        trainer.fit()
        assert len(collector.fit_starts) == 1
        assert [e.step for e in collector.steps] == [1, 2, 3, 4, 5, 6]
        for event, loss in zip(collector.steps, trainer.loss_history):
            assert event.loss == loss
            assert event.grad_norm > 0.0
            assert event.step_seconds > 0.0
            assert event.context_n == 8 and event.context_m == 8
            assert event.masked_cells > 0
        # First step runs at the base LR (scheduler advances afterwards).
        assert collector.steps[0].lr == pytest.approx(1e-3)

    def test_fit_summary(self, ml_dataset, ml_split):
        collector = CollectingObserver()
        trainer = make_trainer(ml_dataset, ml_split, observers=[collector])
        trainer.fit()
        (summary,) = collector.summaries
        assert summary.steps_run == 6
        assert summary.total_steps == 6
        assert not summary.stopped_early
        assert not summary.restored_best
        assert summary.best_validation is None
        assert summary.final_loss == trainer.loss_history[-1]
        assert summary.wall_seconds > 0.0

    def test_per_fit_observers_do_not_stick(self, ml_dataset, ml_split):
        collector = CollectingObserver()
        trainer = make_trainer(ml_dataset, ml_split)
        trainer.fit(observers=[collector])
        assert trainer.observers == []
        assert len(collector.steps) == 6

    def test_add_observer(self, ml_dataset, ml_split):
        collector = CollectingObserver()
        trainer = make_trainer(ml_dataset, ml_split)
        trainer.add_observer(collector)
        trainer.fit()
        assert len(collector.steps) == 6

    def test_validation_events_under_early_stopping(self, ml_dataset, ml_split):
        collector = CollectingObserver()
        trainer = make_trainer(ml_dataset, ml_split, observers=[collector],
                               steps=12, early_stopping_patience=5,
                               validate_every=3)
        trainer.fit()
        assert len(collector.validations) == len(trainer.validation_history)
        for event, loss in zip(collector.validations,
                               trainer.validation_history):
            assert event.loss == loss
            assert event.best_loss <= event.loss + 1e-12
        assert collector.validations[0].improved  # first check always improves


class TestConsoleSink:
    def test_log_every_cadence(self, ml_dataset, ml_split):
        stream = io.StringIO()
        trainer = make_trainer(ml_dataset, ml_split,
                               observers=[obs.ConsoleSink(log_every=2,
                                                          stream=stream)])
        trainer.fit()
        lines = stream.getvalue().splitlines()
        step_lines = [l for l in lines if l.startswith("step ")]
        assert len(step_lines) == 3  # steps 2, 4, 6
        assert "loss" in step_lines[0]
        assert "|g|" in step_lines[0]
        assert "lr" in step_lines[0]
        assert any(l.startswith("fit done:") for l in lines)

    def test_fit_log_every_attaches_console_sink(self, ml_dataset, ml_split,
                                                 capsys):
        trainer = make_trainer(ml_dataset, ml_split)
        trainer.fit(log_every=3)
        out = capsys.readouterr().out
        step_lines = [l for l in out.splitlines() if l.startswith("step ")]
        assert len(step_lines) == 2  # steps 3 and 6

    def test_log_every_zero_is_silent(self, ml_dataset, ml_split, capsys):
        trainer = make_trainer(ml_dataset, ml_split)
        trainer.fit()
        assert capsys.readouterr().out == ""

    def test_log_every_validated(self):
        with pytest.raises(ValueError):
            obs.ConsoleSink(log_every=0)


class TestRecorderIntegration:
    def test_run_file_has_config_steps_and_summary(self, ml_dataset, ml_split,
                                                   tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = make_trainer(ml_dataset, ml_split)
        recorder = obs.RunRecorder(path, config=trainer.config)
        trainer.fit(observers=[obs.RecorderSink(recorder)])
        records = obs.read_run(path)
        assert records[0]["type"] == "run_start"
        assert records[0]["config"]["steps"] == 6
        steps = [r for r in records if r["type"] == "step"]
        assert [r["step"] for r in steps] == [1, 2, 3, 4, 5, 6]
        assert all(r["grad_norm"] > 0 for r in steps)
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["steps_run"] == 6
        report = obs.render_run_report(path)
        assert "summary:" in report

    def test_early_stopping_recorded_and_best_state_restored(
            self, ml_dataset, ml_split, tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = make_trainer(ml_dataset, ml_split, steps=200,
                               early_stopping_patience=1, validate_every=2)
        recorder = obs.RunRecorder(path, config=trainer.config)
        trainer.fit(observers=[obs.RecorderSink(recorder)])
        assert len(trainer.loss_history) < 200  # stopped early
        # Restored parameters score the best recorded validation loss.
        assert trainer.validation_loss() == pytest.approx(
            min(trainer.validation_history), abs=1e-9)
        records = obs.read_run(path)
        summary = records[-1]
        assert summary["stopped_early"] is True
        assert summary["restored_best"] is True
        assert summary["best_validation"] == pytest.approx(
            min(trainer.validation_history))
        validations = [r for r in records if r["type"] == "validation"]
        assert len(validations) == len(trainer.validation_history)

    def test_divergence_error_leaves_readable_run_file(self, ml_dataset,
                                                       ml_split, tmp_path):
        path = tmp_path / "run.jsonl"
        trainer = make_trainer(ml_dataset, ml_split, batch_size=1)
        trainer.train_step()
        next(trainer.model.parameters()).data[:] = np.nan
        with pytest.raises(RuntimeError, match="diverged at step 1"):
            with obs.RunRecorder(path, config=trainer.config) as recorder:
                trainer.fit(observers=[obs.RecorderSink(recorder)])
        records = obs.read_run(path)
        summary = records[-1]
        assert summary["type"] == "summary"
        assert summary["aborted"] is True
        assert "diverged" in summary["error"]


class TestMetricsSink:
    def test_registry_accumulates(self, ml_dataset, ml_split):
        registry = obs.MetricsRegistry()
        trainer = make_trainer(ml_dataset, ml_split,
                               observers=[obs.MetricsSink(registry)])
        trainer.fit()
        assert registry.counter("trainer.steps").value == 6
        assert registry.histogram("trainer.loss").count == 6
        assert registry.histogram("trainer.grad_norm").count == 6
        assert registry.gauge("trainer.lr").value > 0
        assert registry.counter("trainer.fits").value == 1
        assert registry.counter("trainer.masked_cells").value > 0


class TestPassivity:
    """Telemetry must not perturb training — the PR's acceptance gate."""

    def test_loss_history_bit_identical_with_full_recording(
            self, ml_dataset, ml_split, tmp_path):
        plain = make_trainer(ml_dataset, ml_split, steps=8)
        plain.fit()

        recorder = obs.RunRecorder(tmp_path / "run.jsonl")
        observers = [
            obs.RecorderSink(recorder),
            obs.MetricsSink(obs.MetricsRegistry()),
            obs.ConsoleSink(log_every=2, stream=io.StringIO()),
        ]
        recorded = make_trainer(ml_dataset, ml_split, steps=8,
                                observers=observers)
        with obs.profiling(True), ophooks.op_hooks():
            recorded.fit()
        assert recorded.loss_history == plain.loss_history  # bit-identical

    def test_trainer_rng_state_untouched_by_observers(self, ml_dataset,
                                                      ml_split):
        plain = make_trainer(ml_dataset, ml_split, steps=4)
        observed = make_trainer(ml_dataset, ml_split, steps=4,
                                observers=[CollectingObserver()])
        plain.fit()
        observed.fit()
        # Same stream position afterwards: identical next draws.
        assert (plain.rng.integers(1 << 30)
                == observed.rng.integers(1 << 30))

    def test_spans_recorded_during_fit_when_profiling(self, ml_dataset,
                                                      ml_split):
        trainer = make_trainer(ml_dataset, ml_split, steps=2)
        with obs.profiling(True):
            trainer.fit()
        totals = obs.span_totals()
        assert totals["train_step"].count == 2
        for leaf in ("sample", "forward", "backward", "optimizer"):
            assert totals[f"train_step/{leaf}"].count == 2
