"""Trainer extensions: validation loss and early stopping."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig


def make_trainer(ml_dataset, ml_split, **config_overrides):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
    defaults = dict(steps=30, batch_size=1, context_users=8, context_items=8, seed=0)
    defaults.update(config_overrides)
    return HIRETrainer(model, ml_split, config=TrainerConfig(**defaults))


class TestValidationLoss:
    def test_fixed_validation_set(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split)
        a = trainer.validation_loss()
        b = trainer.validation_loss()
        assert a == pytest.approx(b)  # same contexts, same params

    def test_validation_improves_with_training(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, steps=50)
        before = trainer.validation_loss()
        trainer.fit()
        after = trainer.validation_loss()
        assert after < before

    def test_validation_contexts_count(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, validation_contexts=3)
        trainer.validation_loss()
        assert len(trainer._validation_set) == 3


class TestEarlyStopping:
    def test_records_validation_history(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, steps=20,
                               early_stopping_patience=5, validate_every=5)
        trainer.fit()
        assert len(trainer.validation_history) >= 1

    def test_stops_early_with_tiny_patience(self, ml_dataset, ml_split):
        """Patience 1 with frequent checks should halt before max steps on
        a model this small (validation plateaus quickly)."""
        trainer = make_trainer(ml_dataset, ml_split, steps=200,
                               early_stopping_patience=1, validate_every=2)
        trainer.fit()
        assert len(trainer.loss_history) < 200

    def test_restores_best_parameters(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, steps=40,
                               early_stopping_patience=2, validate_every=5)
        trainer.fit()
        # After restore, the validation loss equals the best recorded value.
        final = trainer.validation_loss()
        assert final == pytest.approx(min(trainer.validation_history), abs=1e-9)

    def test_disabled_by_default(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, steps=12)
        trainer.fit()
        assert trainer.validation_history == []
        assert len(trainer.loss_history) == 12

    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(early_stopping_patience=-1)
        with pytest.raises(ValueError):
            TrainerConfig(early_stopping_patience=2, validate_every=0)


class TestHIMDesignFlags:
    def test_no_residual_no_norm_still_runs(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4,
                                            use_residual=False,
                                            use_layer_norm=False, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=3, batch_size=1, context_users=6, context_items=6, seed=0))
        history = trainer.fit()
        assert np.isfinite(history).all()

    def test_flag_combinations_change_parameter_count(self, ml_dataset):
        with_norm = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                                attr_dim=4, seed=0))
        without_norm = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                                   attr_dim=4,
                                                   use_layer_norm=False, seed=0))
        assert with_norm.num_parameters() > without_norm.num_parameters()

    def test_equivariance_preserved_without_residual(self, ml_dataset, ml_graph):
        """Property 5.1 must hold for every design variant."""
        from repro.core import build_context

        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4,
                                            use_residual=False, seed=0))
        rng = np.random.default_rng(0)
        ctx = build_context(ml_graph, np.arange(5), np.arange(4), rng)
        up, ip = rng.permutation(5), rng.permutation(4)
        base = model.predict(ctx)
        permuted = model.predict(ctx.permuted(up, ip))
        np.testing.assert_allclose(base[np.ix_(up, ip)], permuted, atol=1e-9)
