"""Vectorized vs loop NeighborhoodSampler: bit-identity and allocations.

The CSR-vectorized fast path is an *implementation* of the loop sampler,
not a variant: from the same rng state both modes must return the same
entities in the same order and leave the generator in the same state —
across random graphs, budgets, candidate pools, and delta-updated
snapshots (whose CSR views carry a stale-row overlay).  A tracemalloc
check pins the fast path's steady state: no per-hop Python structures may
accumulate, and a sampling pass must allocate less transient memory than
the loop reference's per-entity sets and lists.
"""

import gc
import tracemalloc

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import NeighborhoodSampler
from repro.data import RatingGraph, movielens_like


def _random_graph(seed: int, num_users: int, num_items: int,
                  ratings_per_user: float) -> RatingGraph:
    ds = movielens_like(num_users=num_users, num_items=num_items, seed=seed,
                        ratings_per_user=ratings_per_user)
    return RatingGraph(ds.ratings, ds.num_users, ds.num_items)


def _random_pools(rng, num_users, num_items):
    """Random (but non-empty) candidate pools, sometimes strict subsets."""
    users = rng.choice(num_users, size=rng.integers(1, num_users + 1),
                       replace=False)
    items = rng.choice(num_items, size=rng.integers(1, num_items + 1),
                       replace=False)
    return np.sort(users), np.sort(items)


def _assert_same_sample(graph, targets, n, m, seed, pools):
    """Both modes from identical rng states: same output, same end state."""
    target_users, target_items = targets
    candidate_users, candidate_items = pools
    rng_loop = np.random.default_rng([seed, 17])
    rng_vec = np.random.default_rng([seed, 17])
    users_loop, items_loop = NeighborhoodSampler(vectorized=False).sample(
        graph, target_users, target_items, n, m, rng_loop,
        candidate_users, candidate_items)
    users_vec, items_vec = NeighborhoodSampler(vectorized=True).sample(
        graph, target_users, target_items, n, m, rng_vec,
        candidate_users, candidate_items)
    np.testing.assert_array_equal(users_loop, users_vec)
    np.testing.assert_array_equal(items_loop, items_vec)
    # Equal end states guarantee everything downstream (the reveal draw,
    # the next chunk) is bit-identical too.
    assert rng_loop.bit_generator.state == rng_vec.bit_generator.state


@settings(max_examples=40, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    n=st.integers(1, 12),
    m=st.integers(1, 12),
    num_users=st.integers(4, 32),
    num_items=st.integers(4, 32),
    ratings_per_user=st.floats(1.0, 8.0),
)
def test_vectorized_equals_loop_on_random_graphs(seed, n, m, num_users,
                                                 num_items, ratings_per_user):
    graph = _random_graph(seed, num_users, num_items, ratings_per_user)
    pool_rng = np.random.default_rng([seed, 3])
    pools = _random_pools(pool_rng, num_users, num_items)
    target_user = int(pool_rng.integers(num_users))
    # Several target items, as serving chunks pass (query slice + supports).
    num_targets = int(pool_rng.integers(1, min(m, num_items) + 1))
    target_items = pool_rng.integers(0, num_items, size=num_targets)
    _assert_same_sample(graph, (np.array([target_user]), target_items),
                        n, m, seed, pools)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_vectorized_equals_loop_after_deltas(seed):
    """Equivalence must survive ``apply_deltas``-derived snapshots, whose
    CSR adjacency is carried over with a stale-row overlay rather than
    rebuilt — and match a from-scratch graph of the same triples."""
    graph = _random_graph(seed, 20, 16, 4.0)
    # Materialise the CSR views first so apply_deltas derives (not rebuilds).
    graph.user_adjacency(), graph.item_adjacency()
    rng = np.random.default_rng([seed, 5])
    deltas = []
    for _ in range(6):  # new pairs and re-rates both land in the overlay
        user = int(rng.integers(20))
        item = int(rng.integers(16))
        deltas.append([user, item, float(rng.integers(1, 6))])
    derived = graph.apply_deltas(np.asarray(deltas, dtype=np.float64))
    rebuilt = RatingGraph(derived.triples(), 20, 16)
    assert derived.identical_to(rebuilt)

    pools = (np.arange(20), np.arange(16))
    targets = (np.array([int(rng.integers(20))]),
               np.array([int(rng.integers(16))]))
    _assert_same_sample(derived, targets, 8, 8, seed, pools)
    # The derived snapshot's overlaid CSR and a fresh graph's rebuilt CSR
    # must drive identical sampling.
    rng_derived = np.random.default_rng([seed, 23])
    rng_rebuilt = np.random.default_rng([seed, 23])
    sampler = NeighborhoodSampler()
    from_derived = sampler.sample(derived, *targets, 8, 8, rng_derived, *pools)
    from_rebuilt = sampler.sample(rebuilt, *targets, 8, 8, rng_rebuilt, *pools)
    np.testing.assert_array_equal(from_derived[0], from_rebuilt[0])
    np.testing.assert_array_equal(from_derived[1], from_rebuilt[1])


@pytest.fixture
def busy_graph():
    return _random_graph(0, 120, 90, 12.0)


def _sample_once(graph, sampler, seed=0):
    rng = np.random.default_rng([seed, 9])
    return sampler.sample(graph, np.array([3]), np.array([5, 7, 11]), 24, 24,
                          rng, np.arange(120), np.arange(90))


def test_vectorized_steady_state_allocations(busy_graph):
    """Steady-state vectorized sampling: nothing survives a pass, and the
    transient footprint stays under the loop reference's (which builds
    per-hop Python sets/lists of boxed ints — the cost the CSR gather
    removes)."""
    vec = NeighborhoodSampler(vectorized=True)
    loop = NeighborhoodSampler(vectorized=False)
    for _ in range(3):  # warm: CSR build, caches, interned small ints
        _sample_once(busy_graph, vec)
        _sample_once(busy_graph, loop)

    gc.collect()
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(20):
        _sample_once(busy_graph, vec)
    gc.collect()
    snap = tracemalloc.take_snapshot()
    growth = sum(stat.size_diff for stat in snap.compare_to(base, "filename")
                 if "repro" in (stat.traceback[0].filename or ""))

    tracemalloc.clear_traces()
    tracemalloc.reset_peak()
    _sample_once(busy_graph, vec)
    vec_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.clear_traces()
    tracemalloc.reset_peak()
    _sample_once(busy_graph, loop)
    loop_peak = tracemalloc.get_traced_memory()[1]
    tracemalloc.stop()

    # 20 sampling passes may not leave per-hop lists (or anything else)
    # behind; 2 KiB covers counter churn and interning noise.
    assert growth < 2048, f"steady-state sampling leaked {growth} bytes"
    assert vec_peak < loop_peak, (
        f"vectorized pass allocated {vec_peak} B transient vs loop "
        f"{loop_peak} B — the fast path should be the lighter one")
