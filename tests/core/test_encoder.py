"""ContextEncoder: Eq. 6-9 — shapes, masking, and gradient flow."""

import numpy as np
import pytest

from repro.core import ContextEncoder, build_context
from repro.data import RatingGraph


@pytest.fixture
def encoder(ml_dataset):
    return ContextEncoder(ml_dataset, attr_dim=4, rng=np.random.default_rng(0))


@pytest.fixture
def context(ml_graph):
    rng = np.random.default_rng(0)
    return build_context(ml_graph, np.arange(6), np.arange(5), rng,
                         reveal_fraction=0.3)


class TestDimensions:
    def test_num_attributes_counts_rating_slot(self, encoder, ml_dataset):
        # h = h_u + h_i + 1 (the rating slot)
        assert encoder.num_attributes == (ml_dataset.num_user_attributes
                                          + ml_dataset.num_item_attributes + 1)

    def test_embed_dim(self, encoder):
        assert encoder.embed_dim == encoder.num_attributes * 4

    def test_rating_levels(self, encoder, ml_dataset):
        low, high = ml_dataset.rating_range
        assert encoder.num_rating_levels == int(high - low) + 1


class TestEncoding:
    def test_user_encoding_shape(self, encoder):
        out = encoder.encode_users(np.array([0, 1, 2]))
        assert out.shape == (3, encoder.num_user_attrs * 4)

    def test_item_encoding_shape(self, encoder):
        out = encoder.encode_items(np.array([0, 1]))
        assert out.shape == (2, encoder.num_item_attrs * 4)

    def test_same_attributes_same_encoding(self, encoder, ml_dataset):
        # Two lookups of the same user are identical.
        a = encoder.encode_users(np.array([3])).data
        b = encoder.encode_users(np.array([3])).data
        np.testing.assert_array_equal(a, b)

    def test_h_tensor_shape(self, encoder, context):
        h = encoder(context)
        assert h.shape == (context.n, context.m, encoder.embed_dim)

    def test_masked_ratings_encode_to_mask_token(self, encoder, context):
        """All hidden cells share one representation (the learned mask
        token), distinct per-cell embeddings appear only where revealed."""
        ratings_part = encoder.encode_ratings(context).data
        hidden = ~context.revealed
        token = encoder.mask_token.data
        np.testing.assert_allclose(
            ratings_part[hidden], np.broadcast_to(token, ratings_part[hidden].shape))
        if context.revealed.any():
            revealed_vals = ratings_part[context.revealed]
            assert not np.allclose(revealed_vals, token)

    def test_masked_ratings_zero_with_paper_encoding(self, ml_dataset, context):
        """With learned_mask_token=False the exact Eq. 9 behaviour holds:
        masked cells encode to all-zero vectors."""
        paper_encoder = ContextEncoder(ml_dataset, attr_dim=4,
                                       rng=np.random.default_rng(0),
                                       learned_mask_token=False)
        ratings_part = paper_encoder.encode_ratings(context).data
        assert (ratings_part[~context.revealed] == 0).all()

    def test_cell_layout_matches_eq6(self, encoder, context):
        """H[k, j] = [x_u ‖ x_i ‖ x_r] — verify the user block varies by
        row only and the item block by column only."""
        h = encoder(context).data
        hu_f = encoder.num_user_attrs * 4
        hi_f = encoder.num_item_attrs * 4
        user_block = h[:, :, :hu_f]
        item_block = h[:, :, hu_f:hu_f + hi_f]
        for j in range(1, context.m):
            np.testing.assert_array_equal(user_block[:, 0], user_block[:, j])
        for k in range(1, context.n):
            np.testing.assert_array_equal(item_block[0], item_block[k])

    def test_gradients_reach_all_transforms(self, encoder, context):
        h = encoder(context)
        h.sum().backward()
        for k, table in enumerate(encoder.user_transforms):
            assert table.weight.grad is not None, f"user transform {k}"
        for k, table in enumerate(encoder.item_transforms):
            assert table.weight.grad is not None, f"item transform {k}"
        if context.revealed.any():
            assert encoder.rating_transform.weight.grad is not None


class TestIdAttributeDatasets:
    def test_douban_encoder(self, douban_dataset):
        """ID-as-attribute datasets (Douban) encode through one table."""
        encoder = ContextEncoder(douban_dataset, attr_dim=4,
                                 rng=np.random.default_rng(0))
        assert encoder.num_user_attrs == 1
        assert encoder.num_attributes == 3  # user id + item id + rating
        graph = RatingGraph(douban_dataset.ratings, douban_dataset.num_users,
                            douban_dataset.num_items)
        ctx = build_context(graph, np.arange(4), np.arange(4),
                            np.random.default_rng(0))
        assert encoder(ctx).shape == (4, 4, encoder.embed_dim)


class TestSparseRatingEncoding:
    """Pin the sparse scatter formulation of ``encode_ratings`` against the
    original dense lookup-then-blend it replaced (bitwise, both modes)."""

    def dense_reference(self, encoder, context):
        levels = np.rint(context.ratings - encoder.rating_low).astype(np.int64)
        levels = np.clip(levels, 0, encoder.num_rating_levels - 1)
        table = encoder.rating_transform.weight.data
        embedded = table[levels]  # (n, m, f)
        if encoder.mask_token is None:
            masked = np.zeros(encoder.attr_dim, dtype=table.dtype)
        else:
            masked = encoder.mask_token.data
        return np.where(context.revealed[:, :, None], embedded, masked)

    def test_bit_identical_with_mask_token(self, encoder, context):
        out = encoder.encode_ratings(context).data
        np.testing.assert_array_equal(out, self.dense_reference(encoder, context))

    def test_bit_identical_paper_encoding(self, ml_dataset, context):
        encoder = ContextEncoder(ml_dataset, attr_dim=4,
                                 rng=np.random.default_rng(0),
                                 learned_mask_token=False)
        out = encoder.encode_ratings(context).data
        expected = self.dense_reference(encoder, context)
        assert out.tobytes() == expected.tobytes()

    def test_only_revealed_rows_reach_the_embedding_grad(self, encoder, context):
        encoder.encode_ratings(context).sum().backward()
        grad = encoder.rating_transform.weight.grad
        assert grad is not None
        # SparseRowGrad or dense: materialise and check untouched levels.
        from repro.nn.tensor import SparseRowGrad
        if isinstance(grad, SparseRowGrad):
            touched = set(int(r) for r in grad.rows)
        else:
            touched = set(np.flatnonzero(np.abs(grad).sum(axis=1)).tolist())
        revealed_ratings = context.ratings[context.revealed]
        levels = np.rint(revealed_ratings - encoder.rating_low).astype(np.int64)
        levels = np.clip(levels, 0, encoder.num_rating_levels - 1)
        assert touched <= set(np.unique(levels).tolist())
