"""HIRETrainer: Algorithm 1 mechanics — context sampling, loss descent,
scheduler wiring."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from repro.core.sampling import RandomSampler


@pytest.fixture
def small_trainer(ml_dataset, ml_split):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
    config = TrainerConfig(steps=8, batch_size=2, context_users=8,
                           context_items=8, seed=0)
    return HIRETrainer(model, ml_split, config=config)


class TestContextSampling:
    def test_training_context_is_warm_only(self, small_trainer, ml_split):
        for _ in range(5):
            ctx = small_trainer.sample_training_context()
            assert np.isin(ctx.users, ml_split.train_users).all()
            assert np.isin(ctx.items, ml_split.train_items).all()

    def test_training_context_has_queries(self, small_trainer):
        ctx = small_trainer.sample_training_context()
        assert ctx.num_query() > 0

    def test_context_budgets(self, small_trainer):
        ctx = small_trainer.sample_training_context()
        assert ctx.n == 8 and ctx.m == 8


class TestTraining:
    def test_loss_decreases(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        config = TrainerConfig(steps=40, batch_size=2, context_users=8,
                               context_items=8, seed=0)
        trainer = HIRETrainer(model, ml_split, config=config)
        history = trainer.fit()
        assert len(history) == 40
        assert np.mean(history[-5:]) < np.mean(history[:5]) * 0.8

    def test_parameters_change(self, small_trainer):
        before = {k: v.copy() for k, v in small_trainer.model.state_dict().items()}
        small_trainer.fit()
        after = small_trainer.model.state_dict()
        changed = [k for k in before if not np.allclose(before[k], after[k])]
        assert changed

    def test_scheduler_anneals(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        config = TrainerConfig(steps=10, batch_size=1, context_users=6,
                               context_items=6, base_lr=1e-3, seed=0)
        trainer = HIRETrainer(model, ml_split, config=config)
        trainer.fit()
        assert trainer.optimizer.lr == pytest.approx(0.0, abs=1e-9)

    def test_custom_sampler(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, sampler=RandomSampler(),
                              config=TrainerConfig(steps=2, batch_size=1,
                                                   context_users=6,
                                                   context_items=6, seed=0))
        assert len(trainer.fit()) == 2


class TestValidation:
    def test_config_validation(self):
        with pytest.raises(ValueError):
            TrainerConfig(steps=0)
        with pytest.raises(ValueError):
            TrainerConfig(batch_size=0)

    def test_empty_split_rejected(self, ml_dataset, ml_split):
        import dataclasses

        from repro.data import ColdStartSplit

        # A split whose warm quadrant is empty (all items cold).
        empty = ColdStartSplit(
            dataset=ml_dataset,
            train_users=ml_split.train_users,
            test_users=ml_split.test_users,
            train_items=np.empty(0, dtype=np.int64),
            test_items=np.arange(ml_dataset.num_items),
        )
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        with pytest.raises(ValueError, match="no warm"):
            HIRETrainer(model, empty)


class TestZeroGradsInPlace:
    def test_loss_history_bit_identical(self, ml_dataset, ml_split):
        histories = []
        for in_place in (False, True):
            model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                                attr_dim=4, seed=0))
            config = TrainerConfig(steps=10, batch_size=2, context_users=8,
                                   context_items=8, seed=0,
                                   zero_grads_in_place=in_place)
            trainer = HIRETrainer(model, ml_split, config=config)
            trainer.fit()
            histories.append(np.asarray(trainer.loss_history))
        assert histories[0].tobytes() == histories[1].tobytes()
