"""Edge cases across the core pipeline: tiny contexts, degenerate datasets,
boundary configurations."""

import numpy as np
import pytest

from repro.core import (
    HIRE,
    HIREConfig,
    HIREPredictor,
    HIRETrainer,
    TrainerConfig,
    build_context,
)
from repro.data import RatingDataset, RatingGraph, make_cold_start_split
from repro.eval import build_eval_tasks


def tiny_dataset(num_users=8, num_items=8, seed=0):
    rng = np.random.default_rng(seed)
    triples = []
    for user in range(num_users):
        for item in rng.choice(num_items, size=4, replace=False):
            triples.append((user, int(item), float(rng.integers(1, 6))))
    return RatingDataset(
        name="tiny",
        num_users=num_users,
        num_items=num_items,
        user_attributes=rng.integers(0, 3, size=(num_users, 2)),
        item_attributes=rng.integers(0, 4, size=(num_items, 1)),
        user_attribute_cards=(3, 3),
        item_attribute_cards=(4,),
        ratings=np.asarray(triples),
        rating_range=(1.0, 5.0),
    )


class TestMinimalContexts:
    def test_one_by_one_context(self):
        ds = tiny_dataset()
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        rng = np.random.default_rng(0)
        ctx = build_context(graph, np.array([0]), np.array([0]), rng)
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
        out = model.predict(ctx)
        assert out.shape == (1, 1)
        assert np.isfinite(out).all()

    def test_two_by_three_context_training(self):
        ds = tiny_dataset()
        split = make_cold_start_split(ds, 0.25, 0.25, seed=0)
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
        trainer = HIRETrainer(model, split, config=TrainerConfig(
            steps=3, batch_size=1, context_users=2, context_items=3, seed=0))
        history = trainer.fit()
        assert np.isfinite(history).all()


class TestDegenerateConfigs:
    def test_single_head(self):
        ds = tiny_dataset()
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=1, attr_dim=4, seed=0))
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        ctx = build_context(graph, np.arange(3), np.arange(3),
                            np.random.default_rng(0))
        assert np.isfinite(model.predict(ctx)).all()

    def test_attr_dim_one(self):
        """f=1 still works: attribute attention runs with one head."""
        ds = tiny_dataset()
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=1, attr_dim=1, seed=0))
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        ctx = build_context(graph, np.arange(2), np.arange(2),
                            np.random.default_rng(0))
        assert model.predict(ctx).shape == (2, 2)

    def test_single_block_single_layer(self):
        ds = tiny_dataset()
        config = HIREConfig(num_blocks=1, num_heads=2, attr_dim=4,
                            use_item=False, use_attr=False, seed=0)
        model = HIRE(ds, config)
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        ctx = build_context(graph, np.arange(3), np.arange(2),
                            np.random.default_rng(0))
        assert np.isfinite(model.predict(ctx)).all()


class TestPredictorEdges:
    def test_task_with_single_support(self):
        ds = tiny_dataset(num_users=20, num_items=20, seed=3)
        split = make_cold_start_split(ds, 0.3, 0.3, seed=0)
        tasks = build_eval_tasks(split, "user", min_query=2, seed=0)
        if not tasks:
            pytest.skip("no tasks at this scale")
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
        predictor = HIREPredictor(model, split, tasks, context_users=4,
                                  context_items=4, seed=0)
        for task in tasks[:3]:
            scores = predictor.predict_task(task)
            assert np.isfinite(scores).all()

    def test_context_budget_smaller_than_query_list(self):
        """Item budget 3 with a long query list exercises heavy chunking."""
        ds = tiny_dataset(num_users=25, num_items=25, seed=5)
        split = make_cold_start_split(ds, 0.3, 0.3, seed=0)
        tasks = build_eval_tasks(split, "user", min_query=3, seed=0)
        if not tasks:
            pytest.skip("no tasks")
        task = max(tasks, key=lambda t: len(t.query_items))
        model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
        predictor = HIREPredictor(model, split, tasks, context_users=3,
                                  context_items=3, seed=0)
        scores = predictor.predict_task(task)
        assert len(scores) == len(task.query_items)
