"""PredictionContext: mask invariants and build_context behaviour."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import PredictionContext, build_context
from repro.data import RatingGraph, movielens_like


@pytest.fixture
def graph():
    triples = np.array([
        [0, 0, 4.0], [0, 1, 2.0],
        [1, 0, 5.0], [1, 2, 3.0],
        [2, 1, 1.0],
    ])
    return RatingGraph(triples, num_users=3, num_items=3)


USERS = np.arange(3)
ITEMS = np.arange(3)


class TestInvariants:
    def test_valid_construction(self):
        observed = np.array([[True, False], [True, True]])
        revealed = np.array([[True, False], [False, False]])
        query = observed & ~revealed
        ctx = PredictionContext(
            users=np.array([0, 1]), items=np.array([0, 1]),
            ratings=np.zeros((2, 2)), observed=observed,
            revealed=revealed, query=query,
        )
        assert ctx.n == 2 and ctx.m == 2
        assert ctx.num_query() == 2

    def test_revealed_must_be_observed(self):
        with pytest.raises(ValueError, match="revealed"):
            PredictionContext(
                users=np.array([0]), items=np.array([0]),
                ratings=np.zeros((1, 1)),
                observed=np.array([[False]]),
                revealed=np.array([[True]]),
                query=np.array([[False]]),
            )

    def test_query_revealed_disjoint(self):
        with pytest.raises(ValueError, match="overlap"):
            PredictionContext(
                users=np.array([0]), items=np.array([0]),
                ratings=np.zeros((1, 1)),
                observed=np.array([[True]]),
                revealed=np.array([[True]]),
                query=np.array([[True]]),
            )

    def test_shape_mismatch(self):
        with pytest.raises(ValueError, match="ratings"):
            PredictionContext(
                users=np.array([0, 1]), items=np.array([0]),
                ratings=np.zeros((1, 1)),
                observed=np.zeros((2, 1), dtype=bool),
                revealed=np.zeros((2, 1), dtype=bool),
                query=np.zeros((2, 1), dtype=bool),
            )


class TestBuildContext:
    def test_reveal_fraction(self, graph):
        rng = np.random.default_rng(0)
        ctx = build_context(graph, USERS, ITEMS, rng, reveal_fraction=0.4)
        assert ctx.observed.sum() == 5
        assert ctx.revealed.sum() == 2  # round(0.4 * 5)
        assert ctx.query.sum() == 3

    def test_zero_reveal(self, graph):
        rng = np.random.default_rng(0)
        ctx = build_context(graph, USERS, ITEMS, rng, reveal_fraction=0.0)
        assert ctx.revealed.sum() == 0
        assert ctx.query.sum() == ctx.observed.sum()

    def test_invalid_fraction(self, graph):
        with pytest.raises(ValueError):
            build_context(graph, USERS, ITEMS, np.random.default_rng(0),
                          reveal_fraction=1.0)

    def test_forced_query_stays_masked(self, graph):
        rng = np.random.default_rng(0)
        forced = np.zeros((3, 3), dtype=bool)
        forced[0, 0] = True
        for _ in range(10):
            ctx = build_context(graph, USERS, ITEMS, rng,
                                reveal_fraction=0.8, forced_query=forced)
            assert not ctx.revealed[0, 0]
            assert ctx.query[0, 0]

    def test_forced_query_must_be_observed(self, graph):
        forced = np.zeros((3, 3), dtype=bool)
        forced[2, 2] = True  # unobserved cell
        with pytest.raises(ValueError, match="unobserved"):
            build_context(graph, USERS, ITEMS, np.random.default_rng(0),
                          forced_query=forced)

    def test_forced_reveal_always_visible(self, graph):
        forced = np.zeros((3, 3), dtype=bool)
        forced[1, 0] = True
        ctx = build_context(graph, USERS, ITEMS, np.random.default_rng(0),
                            reveal_fraction=0.0, forced_reveal=forced)
        assert ctx.revealed[1, 0]
        assert not ctx.query[1, 0]

    def test_forced_conflict_rejected(self, graph):
        forced = np.zeros((3, 3), dtype=bool)
        forced[0, 0] = True
        with pytest.raises(ValueError, match="both"):
            build_context(graph, USERS, ITEMS, np.random.default_rng(0),
                          forced_query=forced, forced_reveal=forced)

    def test_ratings_match_graph(self, graph):
        ctx = build_context(graph, USERS, ITEMS, np.random.default_rng(0))
        assert ctx.ratings[0, 0] == 4.0
        assert ctx.ratings[1, 2] == 3.0
        assert ctx.ratings[2, 2] == 0.0 and not ctx.observed[2, 2]


class TestPermuted:
    def test_permutation_consistency(self, graph):
        ctx = build_context(graph, USERS, ITEMS, np.random.default_rng(0),
                            reveal_fraction=0.4)
        up, ip = np.array([2, 0, 1]), np.array([1, 2, 0])
        permuted = ctx.permuted(up, ip)
        np.testing.assert_array_equal(permuted.users, ctx.users[up])
        np.testing.assert_array_equal(permuted.ratings,
                                      ctx.ratings[np.ix_(up, ip)])
        np.testing.assert_array_equal(permuted.query,
                                      ctx.query[np.ix_(up, ip)])
        assert permuted.num_query() == ctx.num_query()


@settings(max_examples=20, deadline=None)
@given(
    fraction=st.floats(0.0, 0.9),
    seed=st.integers(0, 1000),
)
def test_property_masks_partition_observed(fraction, seed):
    """revealed ∪ query == observed and revealed ∩ query == ∅, always."""
    ds = movielens_like(num_users=15, num_items=12, seed=seed, ratings_per_user=5.0)
    graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
    rng = np.random.default_rng(seed)
    ctx = build_context(graph, np.arange(10), np.arange(10), rng,
                        reveal_fraction=fraction)
    np.testing.assert_array_equal(ctx.revealed | ctx.query, ctx.observed)
    assert not (ctx.revealed & ctx.query).any()
    expected_revealed = min(int(round(fraction * ctx.observed.sum())),
                            int(ctx.observed.sum()))
    assert ctx.revealed.sum() == expected_revealed
