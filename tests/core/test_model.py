"""HIRE model: output range, Property 5.1 (permutation equivariance of the
full model), config handling, attention capture."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import HIRE, HIREConfig, build_context
from repro.data import RatingGraph, movielens_like


@pytest.fixture
def model(ml_dataset):
    return HIRE(ml_dataset, HIREConfig(num_blocks=2, num_heads=2, attr_dim=4, seed=0))


@pytest.fixture
def context(ml_graph):
    return build_context(ml_graph, np.arange(5), np.arange(6),
                         np.random.default_rng(0), reveal_fraction=0.2)


class TestForward:
    def test_output_shape(self, model, context):
        assert model(context).shape == (5, 6)

    def test_output_in_rating_range(self, model, context, ml_dataset):
        out = model(context).data
        assert (out >= 0).all()
        assert (out <= ml_dataset.rating_range[1]).all()

    def test_predict_is_deterministic(self, model, context):
        a = model.predict(context)
        b = model.predict(context)
        np.testing.assert_array_equal(a, b)

    def test_predict_restores_training_mode(self, model, context):
        model.train()
        model.predict(context)
        assert model.training

    def test_same_seed_same_init(self, ml_dataset, context):
        a = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=5))
        b = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=5))
        np.testing.assert_array_equal(a.predict(context), b.predict(context))


class TestConfig:
    def test_defaults_match_paper(self):
        config = HIREConfig()
        assert config.num_blocks == 3
        assert config.num_heads == 8
        assert config.attr_dim == 16

    def test_invalid_blocks(self):
        with pytest.raises(ValueError):
            HIREConfig(num_blocks=0)

    def test_ablated_copy(self):
        config = HIREConfig(num_blocks=2)
        variant = config.ablated(use_user=False)
        assert not variant.use_user
        assert variant.num_blocks == 2
        assert config.use_user  # original untouched

    def test_alpha_follows_rating_scale(self, ml_dataset, book_dataset):
        assert HIRE(ml_dataset).alpha == 5.0
        assert HIRE(book_dataset).alpha == 10.0


class TestProperty51:
    def test_permutation_equivariance_exact(self, model, context):
        """Property 5.1: Π_u ∘ Π_i ∘ R̂ == M(Π_u ∘ Π_i ∘ H)."""
        rng = np.random.default_rng(7)
        up, ip = rng.permutation(context.n), rng.permutation(context.m)
        base = model.predict(context)
        permuted = model.predict(context.permuted(up, ip))
        np.testing.assert_allclose(base[np.ix_(up, ip)], permuted, atol=1e-9)


class TestAttentionCapture:
    def test_capture_per_block(self, model, context):
        model.capture_attention(True)
        model.predict(context)
        captured = model.captured_attention()
        assert len(captured) == 2  # one dict per HIM block
        for block in captured:
            assert set(block) == {"user", "item", "attr"}
        model.capture_attention(False)
        model.predict(context)


@settings(max_examples=8, deadline=None)
@given(seed=st.integers(0, 100))
def test_property_equivariance_random_contexts(seed):
    """Property 5.1 holds for arbitrary datasets, contexts and permutations."""
    ds = movielens_like(num_users=20, num_items=16, seed=seed, ratings_per_user=6.0)
    graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
    rng = np.random.default_rng(seed)
    context = build_context(graph, rng.permutation(20)[:5], rng.permutation(16)[:4],
                            rng, reveal_fraction=0.2)
    model = HIRE(ds, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=seed))
    up, ip = rng.permutation(5), rng.permutation(4)
    base = model.predict(context)
    permuted = model.predict(context.permuted(up, ip))
    np.testing.assert_allclose(base[np.ix_(up, ip)], permuted, atol=1e-8)
