"""HIREPredictor: leakage protection, score alignment, chunking."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor, TrainerConfig
from repro.eval import build_eval_tasks


@pytest.fixture(scope="module")
def trained(ml_dataset, ml_split):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
    # No training needed for interface tests; random weights suffice.
    return model


@pytest.fixture(scope="module")
def user_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0)


class TestPrediction:
    def test_scores_align_with_query(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        task = user_tasks[0]
        scores = predictor.predict_task(task)
        assert scores.shape == (len(task.query_items),)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 5.0).all()

    def test_chunking_covers_long_query_lists(self, trained, ml_split, user_tasks):
        """Query lists longer than the item budget are chunked; every item
        still gets a score."""
        task = max(user_tasks, key=lambda t: len(t.query_items))
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=6, context_items=6, seed=0)
        scores = predictor.predict_task(task)
        assert len(scores) == len(task.query_items)
        assert np.isfinite(scores).all()

    def test_visible_graph_excludes_query_ratings(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        for task in user_tasks[:3]:
            for item in task.query_items:
                assert not predictor.graph.has_rating(task.user, int(item))

    def test_visible_graph_includes_supports(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        task = user_tasks[0]
        for item in task.support_items:
            assert predictor.graph.has_rating(task.user, int(item))

    def test_item_scenario(self, trained, ml_split):
        tasks = build_eval_tasks(ml_split, "item", min_query=5, seed=0)
        predictor = HIREPredictor(trained, ml_split, tasks,
                                  context_users=8, context_items=8, seed=0)
        scores = predictor.predict_task(tasks[0])
        assert len(scores) == len(tasks[0].query_items)

    def test_context_ensembling_reduces_to_single_when_one(self, trained, ml_split,
                                                           user_tasks):
        single = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                               context_items=8, num_context_samples=1, seed=0)
        scores = single.predict_task(user_tasks[0])
        assert scores.shape == (len(user_tasks[0].query_items),)

    def test_context_ensembling_averages(self, trained, ml_split, user_tasks):
        """The ensemble mean lies within the span of per-context scores."""
        task = user_tasks[0]
        ens = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                            context_items=8, num_context_samples=4, seed=0)
        averaged = ens.predict_task(task)
        singles = []
        lone = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                             context_items=8, num_context_samples=1, seed=0)
        for _ in range(4):
            singles.append(lone.predict_task(task))
        lo = np.min(singles, axis=0) - 1e-9
        hi = np.max(singles, axis=0) + 1e-9
        # Not the same RNG stream, so compare only the envelope property on
        # the ensemble's own samples: rerun with a fixed seed and check mean.
        ens2 = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                             context_items=8, num_context_samples=4, seed=123)
        averaged2 = ens2.predict_task(task)
        assert np.isfinite(averaged).all() and np.isfinite(averaged2).all()
        assert (averaged >= 0).all() and (averaged <= 5.0).all()

    def test_invalid_sample_count(self, trained, ml_split, user_tasks):
        with pytest.raises(ValueError):
            HIREPredictor(trained, ml_split, user_tasks, num_context_samples=0)

    def test_both_scenario(self, trained, ml_split):
        tasks = build_eval_tasks(ml_split, "both", min_query=2, seed=0)
        if not tasks:
            pytest.skip("no both-cold tasks at this scale")
        predictor = HIREPredictor(trained, ml_split, tasks,
                                  context_users=8, context_items=8, seed=0)
        scores = predictor.predict_task(tasks[0])
        assert np.isfinite(scores).all()


def _ensure_targets_reference(users, items, target_user, target_items):
    """The original per-element implementation of ensure_targets, kept as a
    behavioural pin for the vectorised np.isin version."""
    users = np.asarray(users, dtype=np.int64)
    items = np.asarray(items, dtype=np.int64)
    target_items = np.asarray(target_items, dtype=np.int64)
    if target_user not in users:
        users = np.concatenate([[target_user], users[:-1]])
    missing = np.array([i for i in target_items if i not in items],
                       dtype=np.int64)
    if missing.size:
        head = missing[: len(items)]
        keep = np.array([i for i in items if i not in head], dtype=np.int64)
        items = np.concatenate([missing, keep])[: len(items)].astype(np.int64)
    return users, items


class TestEnsureTargets:
    """The vectorised ensure_targets must match the original element scans."""

    @pytest.mark.parametrize("seed", range(20))
    def test_equivalent_to_reference_on_random_inputs(self, seed):
        from repro.core import ensure_targets

        rng = np.random.default_rng(seed)
        users = rng.choice(50, size=rng.integers(1, 12), replace=False)
        items = rng.choice(60, size=rng.integers(1, 12), replace=False)
        target_user = int(rng.integers(50))
        target_items = rng.choice(60, size=rng.integers(1, 15), replace=False)

        expected = _ensure_targets_reference(users, items, target_user,
                                             target_items)
        got = ensure_targets(users, items, target_user, target_items)
        np.testing.assert_array_equal(expected[0], got[0])
        np.testing.assert_array_equal(expected[1], got[1])

    def test_more_targets_than_budget(self):
        from repro.core import ensure_targets

        users = np.array([1, 2])
        items = np.array([10, 11, 12])
        target_items = np.array([20, 21, 22, 23, 24])
        expected = _ensure_targets_reference(users, items, 5, target_items)
        got = ensure_targets(users, items, 5, target_items)
        np.testing.assert_array_equal(expected[0], got[0])
        np.testing.assert_array_equal(expected[1], got[1])
        assert len(got[1]) == 3  # budget never grows

    def test_targets_already_present_is_identity(self):
        from repro.core import ensure_targets

        users = np.array([3, 1, 2])
        items = np.array([7, 8, 9])
        got_users, got_items = ensure_targets(users, items, 1,
                                              np.array([9, 7]))
        np.testing.assert_array_equal(got_users, users)
        np.testing.assert_array_equal(got_items, items)


class TestPerTaskRNG:
    def test_scores_independent_of_task_order(self, trained, ml_split,
                                              user_tasks):
        """per_task_rng=True makes every task's scores a pure function of
        the task — the property the serving layer builds on."""
        forward = HIREPredictor(trained, ml_split, user_tasks, seed=0,
                                per_task_rng=True)
        scores_forward = [forward.predict_task(t) for t in user_tasks]
        backward = HIREPredictor(trained, ml_split, user_tasks, seed=0,
                                 per_task_rng=True)
        scores_backward = [backward.predict_task(t)
                           for t in reversed(user_tasks)][::-1]
        for a, b in zip(scores_forward, scores_backward):
            assert np.array_equal(a, b)

    def test_default_mode_depends_on_order(self, trained, ml_split, user_tasks):
        """The offline default (one advancing stream) is order-dependent —
        the contrast that motivates per-task derivation."""
        if len(user_tasks) < 2:
            pytest.skip("need two tasks to permute")
        forward = HIREPredictor(trained, ml_split, user_tasks, seed=0)
        scores_forward = [forward.predict_task(t) for t in user_tasks]
        backward = HIREPredictor(trained, ml_split, user_tasks, seed=0)
        scores_backward = [backward.predict_task(t)
                           for t in reversed(user_tasks)][::-1]
        assert any(not np.array_equal(a, b)
                   for a, b in zip(scores_forward, scores_backward))
