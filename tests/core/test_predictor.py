"""HIREPredictor: leakage protection, score alignment, chunking."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor, TrainerConfig
from repro.eval import build_eval_tasks


@pytest.fixture(scope="module")
def trained(ml_dataset, ml_split):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
    # No training needed for interface tests; random weights suffice.
    return model


@pytest.fixture(scope="module")
def user_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0)


class TestPrediction:
    def test_scores_align_with_query(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        task = user_tasks[0]
        scores = predictor.predict_task(task)
        assert scores.shape == (len(task.query_items),)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 5.0).all()

    def test_chunking_covers_long_query_lists(self, trained, ml_split, user_tasks):
        """Query lists longer than the item budget are chunked; every item
        still gets a score."""
        task = max(user_tasks, key=lambda t: len(t.query_items))
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=6, context_items=6, seed=0)
        scores = predictor.predict_task(task)
        assert len(scores) == len(task.query_items)
        assert np.isfinite(scores).all()

    def test_visible_graph_excludes_query_ratings(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        for task in user_tasks[:3]:
            for item in task.query_items:
                assert not predictor.graph.has_rating(task.user, int(item))

    def test_visible_graph_includes_supports(self, trained, ml_split, user_tasks):
        predictor = HIREPredictor(trained, ml_split, user_tasks,
                                  context_users=8, context_items=8, seed=0)
        task = user_tasks[0]
        for item in task.support_items:
            assert predictor.graph.has_rating(task.user, int(item))

    def test_item_scenario(self, trained, ml_split):
        tasks = build_eval_tasks(ml_split, "item", min_query=5, seed=0)
        predictor = HIREPredictor(trained, ml_split, tasks,
                                  context_users=8, context_items=8, seed=0)
        scores = predictor.predict_task(tasks[0])
        assert len(scores) == len(tasks[0].query_items)

    def test_context_ensembling_reduces_to_single_when_one(self, trained, ml_split,
                                                           user_tasks):
        single = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                               context_items=8, num_context_samples=1, seed=0)
        scores = single.predict_task(user_tasks[0])
        assert scores.shape == (len(user_tasks[0].query_items),)

    def test_context_ensembling_averages(self, trained, ml_split, user_tasks):
        """The ensemble mean lies within the span of per-context scores."""
        task = user_tasks[0]
        ens = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                            context_items=8, num_context_samples=4, seed=0)
        averaged = ens.predict_task(task)
        singles = []
        lone = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                             context_items=8, num_context_samples=1, seed=0)
        for _ in range(4):
            singles.append(lone.predict_task(task))
        lo = np.min(singles, axis=0) - 1e-9
        hi = np.max(singles, axis=0) + 1e-9
        # Not the same RNG stream, so compare only the envelope property on
        # the ensemble's own samples: rerun with a fixed seed and check mean.
        ens2 = HIREPredictor(trained, ml_split, user_tasks, context_users=8,
                             context_items=8, num_context_samples=4, seed=123)
        averaged2 = ens2.predict_task(task)
        assert np.isfinite(averaged).all() and np.isfinite(averaged2).all()
        assert (averaged >= 0).all() and (averaged <= 5.0).all()

    def test_invalid_sample_count(self, trained, ml_split, user_tasks):
        with pytest.raises(ValueError):
            HIREPredictor(trained, ml_split, user_tasks, num_context_samples=0)

    def test_both_scenario(self, trained, ml_split):
        tasks = build_eval_tasks(ml_split, "both", min_query=2, seed=0)
        if not tasks:
            pytest.skip("no both-cold tasks at this scale")
        predictor = HIREPredictor(trained, ml_split, tasks,
                                  context_users=8, context_items=8, seed=0)
        scores = predictor.predict_task(tasks[0])
        assert np.isfinite(scores).all()
