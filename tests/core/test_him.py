"""HIM block: layer routing, ablation flags, per-layer equivariance,
attention capture."""

import numpy as np
import pytest

from repro.core.him import HIM
from repro.nn import Tensor


H_ATTRS, F_DIM, HEADS = 5, 8, 2
EMBED = H_ATTRS * F_DIM


@pytest.fixture
def him():
    return HIM(H_ATTRS, F_DIM, HEADS, np.random.default_rng(0))


@pytest.fixture
def h_input():
    return Tensor(np.random.default_rng(1).normal(size=(4, 6, EMBED)))


class TestForward:
    def test_shape_preserved(self, him, h_input):
        assert him(h_input).shape == (4, 6, EMBED)

    def test_wrong_dim_rejected(self, him):
        with pytest.raises(ValueError):
            him(Tensor(np.zeros((4, 6, EMBED + 1))))

    def test_needs_one_layer(self):
        with pytest.raises(ValueError):
            HIM(H_ATTRS, F_DIM, HEADS, np.random.default_rng(0),
                use_user=False, use_item=False, use_attr=False)

    def test_gradients_flow_through_all_layers(self, him, h_input):
        h_input.requires_grad = True
        him(h_input).sum().backward()
        assert him.user_attention.w_query.weight.grad is not None
        assert him.item_attention.w_query.weight.grad is not None
        assert him.attr_attention.w_query.weight.grad is not None


class TestAblationFlags:
    @pytest.mark.parametrize("flags", [
        dict(use_user=False),
        dict(use_item=False),
        dict(use_attr=False),
        dict(use_user=False, use_item=False),
        dict(use_user=False, use_attr=False),
        dict(use_item=False, use_attr=False),
    ])
    def test_disabled_layers_absent(self, flags):
        him = HIM(H_ATTRS, F_DIM, HEADS, np.random.default_rng(0), **flags)
        if not flags.get("use_user", True):
            assert not hasattr(him, "user_attention")
        if not flags.get("use_item", True):
            assert not hasattr(him, "item_attention")
        if not flags.get("use_attr", True):
            assert not hasattr(him, "attr_attention")
        out = him(Tensor(np.random.default_rng(1).normal(size=(3, 4, EMBED))))
        assert out.shape == (3, 4, EMBED)

    def test_variant_outputs_differ(self, h_input):
        full = HIM(H_ATTRS, F_DIM, HEADS, np.random.default_rng(0))
        no_user = HIM(H_ATTRS, F_DIM, HEADS, np.random.default_rng(0), use_user=False)
        assert not np.allclose(full(h_input).data, no_user(h_input).data)


class TestEquivariance:
    def test_user_axis(self, him, h_input):
        """Permuting users permutes the output rows identically."""
        perm = np.random.default_rng(2).permutation(4)
        out = him(h_input).data
        out_perm = him(Tensor(h_input.data[perm])).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-9)

    def test_item_axis(self, him, h_input):
        perm = np.random.default_rng(3).permutation(6)
        out = him(h_input).data
        out_perm = him(Tensor(h_input.data[:, perm])).data
        np.testing.assert_allclose(out[:, perm], out_perm, atol=1e-9)

    def test_both_axes(self, him, h_input):
        rng = np.random.default_rng(4)
        up, ip = rng.permutation(4), rng.permutation(6)
        out = him(h_input).data
        out_perm = him(Tensor(h_input.data[np.ix_(up, ip)])).data
        np.testing.assert_allclose(out[np.ix_(up, ip)], out_perm, atol=1e-9)


class TestAttentionCapture:
    def test_capture_shapes(self, him, h_input):
        him.set_capture(True)
        him(h_input)
        captured = him.captured_attention()
        # MBU: one (heads, n, n) matrix per item column.
        assert captured["user"].shape == (6, HEADS, 4, 4)
        # MBI: one (heads, m, m) per user row.
        assert captured["item"].shape == (4, HEADS, 6, 6)
        # MBA: per cell, attr_heads × h × h.
        assert captured["attr"].shape[:2] == (4, 6)
        assert captured["attr"].shape[-2:] == (H_ATTRS, H_ATTRS)

    def test_capture_off_returns_empty(self, him, h_input):
        him.set_capture(False)
        assert him.captured_attention() == {}

    def test_attention_rows_stochastic(self, him, h_input):
        him.set_capture(True)
        him(h_input)
        attn = him.captured_attention()["user"]
        np.testing.assert_allclose(attn.sum(axis=-1), np.ones(attn.shape[:-1]),
                                   atol=1e-10)


class TestAttrHeadFallback:
    def test_heads_reduced_to_divide_attr_dim(self):
        """attr_dim=6 with 4 heads falls back to 3 heads (largest divisor)."""
        him = HIM(4, 6, 4, np.random.default_rng(0))
        assert him.attr_attention.num_heads == 3
