"""Batched multi-context forward: equivalence with the per-context loop."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig


@pytest.fixture
def setup(ml_dataset, ml_split):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0))
    trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
        steps=2, batch_size=3, context_users=8, context_items=8, seed=0))
    contexts = [trainer.sample_training_context() for _ in range(3)]
    return model, contexts


class TestForwardMany:
    def test_matches_individual_forwards(self, setup):
        model, contexts = setup
        batched = model.forward_many(contexts).data
        for index, context in enumerate(contexts):
            single = model(context).data
            np.testing.assert_allclose(batched[index], single, atol=1e-12)

    def test_gradients_match_loop(self, setup):
        model, contexts = setup

        def batch_grads(use_batched):
            model.zero_grad()
            if use_batched:
                predicted = model.forward_many(contexts)
                losses = [F.masked_mse_loss(predicted[i], c.ratings, c.query)
                          for i, c in enumerate(contexts)]
            else:
                losses = [F.masked_mse_loss(model(c), c.ratings, c.query)
                          for c in contexts]
            total = losses[0]
            for loss in losses[1:]:
                total = total + loss
            total.backward()
            return {k: p.grad.copy() for k, p in model.named_parameters()
                    if p.grad is not None}

        a = batch_grads(True)
        b = batch_grads(False)
        assert set(a) == set(b)
        for key in a:
            np.testing.assert_allclose(a[key], b[key], atol=1e-10, err_msg=key)

    def test_rejects_mixed_sizes(self, setup, ml_split):
        model, contexts = setup
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=1, batch_size=1, context_users=6, context_items=6, seed=1))
        odd = trainer.sample_training_context()
        with pytest.raises(ValueError, match="equally-sized"):
            model.forward_many(contexts + [odd])

    def test_rejects_empty(self, setup):
        model, _ = setup
        with pytest.raises(ValueError):
            model.forward_many([])

    def test_trainer_paths_agree(self, ml_dataset, ml_split):
        """Training with and without batched_forward produces identical
        loss trajectories (same contexts, same math)."""
        histories = []
        for flag in (True, False):
            model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                                attr_dim=4, seed=0))
            trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
                steps=4, batch_size=2, context_users=8, context_items=8,
                batched_forward=flag, seed=0))
            histories.append(trainer.fit())
        np.testing.assert_allclose(histories[0], histories[1], rtol=1e-9)
