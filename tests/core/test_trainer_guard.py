"""Failure injection: the trainer must fail loudly, not silently, when
optimisation diverges."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig


class TestDivergenceGuard:
    def test_nan_parameters_raise(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=5, batch_size=1, context_users=6, context_items=6, seed=0))
        # Corrupt one parameter; the very next loss is NaN.
        next(model.parameters()).data[:] = np.nan
        with pytest.raises(RuntimeError, match="diverged"):
            trainer.train_step()

    def test_error_reports_step(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=5, batch_size=1, context_users=6, context_items=6, seed=0))
        trainer.train_step()
        trainer.train_step()
        next(model.parameters()).data[:] = np.inf
        with pytest.raises(RuntimeError, match="step 2"):
            trainer.train_step()

    def test_healthy_training_unaffected(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=3, batch_size=1, context_users=6, context_items=6, seed=0))
        history = trainer.fit()
        assert len(history) == 3
        assert np.isfinite(history).all()
