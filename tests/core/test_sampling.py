"""Context samplers: exact budgets, target inclusion, neighbourhood
preference, feature-similarity ordering."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import RatingGraph, movielens_like
from repro.core import (
    MAX_CONTEXT_RETRIES,
    FeatureSimilaritySampler,
    NeighborhoodSampler,
    RandomSampler,
    sample_training_context,
    sampler_by_name,
)


@pytest.fixture
def star_graph():
    """User 0 rated items 0-4; users 1-5 each rated item 0."""
    triples = [[0, i, 3.0] for i in range(5)]
    triples += [[u, 0, 4.0] for u in range(1, 6)]
    return RatingGraph(np.asarray(triples, dtype=float), num_users=10, num_items=10)


ALL_USERS = np.arange(10)
ALL_ITEMS = np.arange(10)


class TestNeighborhoodSampler:
    def test_exact_budgets(self, star_graph):
        rng = np.random.default_rng(0)
        users, items = NeighborhoodSampler().sample(
            star_graph, np.array([0]), np.array([0]), 4, 4, rng, ALL_USERS, ALL_ITEMS)
        assert len(users) == 4 and len(items) == 4
        assert len(np.unique(users)) == 4 and len(np.unique(items)) == 4

    def test_targets_first(self, star_graph):
        rng = np.random.default_rng(0)
        users, items = NeighborhoodSampler().sample(
            star_graph, np.array([0]), np.array([3]), 3, 3, rng, ALL_USERS, ALL_ITEMS)
        assert users[0] == 0
        assert items[0] == 3

    def test_prefers_neighbors(self, star_graph):
        """With budget 6/6 on the star, all one-hop neighbours make it in."""
        rng = np.random.default_rng(1)
        users, items = NeighborhoodSampler().sample(
            star_graph, np.array([0]), np.array([0]), 6, 6, rng, ALL_USERS, ALL_ITEMS)
        # users 1-5 all rated item 0 (the seed item) -> all present
        assert set(range(1, 6)) <= set(users.tolist())
        # items 0-4 all rated by user 0 -> all present
        assert set(range(5)) <= set(items.tolist())

    def test_pads_when_graph_exhausted(self, star_graph):
        """Isolated seed still yields full budgets via uniform padding."""
        rng = np.random.default_rng(2)
        users, items = NeighborhoodSampler().sample(
            star_graph, np.array([9]), np.array([9]), 5, 5, rng, ALL_USERS, ALL_ITEMS)
        assert len(users) == 5 and len(items) == 5

    def test_respects_candidate_pool(self, star_graph):
        rng = np.random.default_rng(3)
        pool_users = np.array([0, 1, 2])
        users, _ = NeighborhoodSampler().sample(
            star_graph, np.array([0]), np.array([0]), 3, 3, rng, pool_users, ALL_ITEMS)
        assert set(users.tolist()) <= set(pool_users.tolist())

    def test_example1_from_paper(self):
        """Fig. 5 / Example 1: seed {u1, i2}; u2 (neighbour of i2) and i1
        (neighbour of u2) complete the context of n=m=2."""
        # users: u1=0, u2=1, u3=2; items: i1=0, i2=1
        triples = np.array([
            [1, 1, 4.0],  # u2 rated i2
            [2, 1, 3.0],  # u3 rated i2
            [1, 0, 5.0],  # u2 rated i1
        ])
        graph = RatingGraph(triples, num_users=3, num_items=2)
        rng = np.random.default_rng(0)
        users, items = NeighborhoodSampler().sample(
            graph, np.array([0]), np.array([1]), 2, 2, rng,
            np.arange(3), np.arange(2))
        assert 0 in users          # cold user u1
        assert set(users.tolist()) <= {0, 1, 2}
        assert set(items.tolist()) == {0, 1}  # i1 joins via u2's ratings


class TestRandomSampler:
    def test_budgets_and_targets(self, star_graph):
        rng = np.random.default_rng(0)
        users, items = RandomSampler().sample(
            star_graph, np.array([7]), np.array([8]), 4, 4, rng, ALL_USERS, ALL_ITEMS)
        assert users[0] == 7 and items[0] == 8
        assert len(users) == 4 and len(items) == 4

    def test_uniform_over_pool(self, star_graph):
        rng = np.random.default_rng(0)
        seen = set()
        for _ in range(50):
            users, _ = RandomSampler().sample(
                star_graph, np.array([0]), np.array([0]), 3, 3, rng,
                ALL_USERS, ALL_ITEMS)
            seen.update(users.tolist())
        assert len(seen) == 10  # every user eventually sampled


class TestFeatureSimilaritySampler:
    def test_picks_most_similar(self):
        ds = movielens_like(num_users=30, num_items=20, seed=0)
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        sampler = FeatureSimilaritySampler(ds)
        rng = np.random.default_rng(0)
        target = 0
        users, _ = sampler.sample(graph, np.array([target]), np.array([0]),
                                  5, 5, rng, np.arange(30), np.arange(20))
        # Sampled users must be at least as similar as the median candidate.
        attrs = ds.user_attributes
        def similarity(u):
            return (attrs[u] == attrs[target]).mean()
        picked = [similarity(u) for u in users[1:]]
        all_sims = [similarity(u) for u in range(1, 30)]
        assert np.mean(picked) >= np.median(all_sims)

    def test_budgets(self, star_graph):
        ds = movielens_like(num_users=10, num_items=10, seed=1)
        sampler = FeatureSimilaritySampler(ds)
        rng = np.random.default_rng(0)
        users, items = sampler.sample(star_graph, np.array([0]), np.array([0]),
                                      6, 7, rng, ALL_USERS, ALL_ITEMS)
        assert len(users) == 6 and len(items) == 7


class TestFactory:
    def test_by_name(self, ml_dataset):
        assert isinstance(sampler_by_name("neighborhood"), NeighborhoodSampler)
        assert isinstance(sampler_by_name("random"), RandomSampler)
        assert isinstance(sampler_by_name("feature", ml_dataset), FeatureSimilaritySampler)

    def test_feature_requires_dataset(self):
        with pytest.raises(ValueError):
            sampler_by_name("feature")

    def test_unknown(self):
        with pytest.raises(KeyError):
            sampler_by_name("magic")


@settings(max_examples=20, deadline=None)
@given(
    n=st.integers(1, 8),
    m=st.integers(1, 8),
    seed=st.integers(0, 1000),
)
def test_property_budgets_always_exact(n, m, seed):
    """All samplers return exactly n unique users and m unique items
    whenever the pools are large enough."""
    ds = movielens_like(num_users=12, num_items=12, seed=seed, ratings_per_user=4.0)
    graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
    rng = np.random.default_rng(seed)
    for sampler in (NeighborhoodSampler(), RandomSampler(), FeatureSimilaritySampler(ds)):
        users, items = sampler.sample(graph, np.array([0]), np.array([0]), n, m,
                                      rng, np.arange(12), np.arange(12))
        assert len(users) == n, sampler.name
        assert len(items) == m, sampler.name
        assert len(np.unique(users)) == n
        assert len(np.unique(items)) == m


class TestSampleTrainingContext:
    """sample_training_context: retry-exhaustion reporting and determinism."""

    def test_exhaustion_names_retries_and_seed_pair(self, ml_graph, ml_split):
        # A 2x2 context holds at most 4 observed cells, and
        # round(0.99 * N) == N for every N < 50 — so reveal_fraction=0.99
        # reveals every observed rating, leaving zero query cells on every
        # attempt until the retry budget runs out.
        with pytest.raises(RuntimeError) as excinfo:
            sample_training_context(
                ml_graph, NeighborhoodSampler(), ml_split.train_ratings(),
                np.random.default_rng(0),
                context_users=2, context_items=2, reveal_fraction=0.99,
                candidate_users=ml_split.train_users,
                candidate_items=ml_split.train_items,
                max_retries=3,
            )
        message = str(excinfo.value)
        assert "3 attempts" in message
        assert "seed pair" in message and "user" in message and "item" in message
        assert "0.99" in message

    def test_default_retry_budget_is_the_named_constant(self):
        assert MAX_CONTEXT_RETRIES == 16

    def test_empty_ratings_rejected(self, ml_graph, ml_split):
        with pytest.raises(ValueError, match="empty"):
            sample_training_context(
                ml_graph, NeighborhoodSampler(), np.empty((0, 3)),
                np.random.default_rng(0),
                context_users=4, context_items=4, reveal_fraction=0.1,
                candidate_users=ml_split.train_users,
                candidate_items=ml_split.train_items,
            )

    def test_same_rng_state_same_context(self, ml_graph, ml_split):
        kwargs = dict(
            context_users=6, context_items=6, reveal_fraction=0.1,
            candidate_users=ml_split.train_users,
            candidate_items=ml_split.train_items,
        )
        a = sample_training_context(ml_graph, NeighborhoodSampler(),
                                    ml_split.train_ratings(),
                                    np.random.default_rng(42), **kwargs)
        b = sample_training_context(ml_graph, NeighborhoodSampler(),
                                    ml_split.train_ratings(),
                                    np.random.default_rng(42), **kwargs)
        assert np.array_equal(a.users, b.users)
        assert np.array_equal(a.ratings, b.ratings)
        assert np.array_equal(a.query, b.query)


class TestDegradedContexts:
    """Budgets beyond what the graph can supply: degrade, don't hang."""

    @pytest.fixture
    def dense_2x2(self):
        """Two users, two items, every cell rated — nothing left to grow."""
        triples = [[u, i, 3.0] for u in range(2) for i in range(2)]
        return RatingGraph(np.asarray(triples, dtype=float),
                           num_users=2, num_items=2)

    def test_degrades_to_achievable_shape_with_named_warning(self, dense_2x2):
        with pytest.warns(RuntimeWarning,
                          match=r"degraded to the achievable \(2, 2\) shape"):
            context = sample_training_context(
                dense_2x2, NeighborhoodSampler(),
                dense_2x2.triples(), np.random.default_rng(0),
                context_users=8, context_items=8, reveal_fraction=0.25,
                candidate_users=np.arange(2), candidate_items=np.arange(2),
            )
        # The context was built at the achievable shape and still has
        # something to supervise on.
        assert len(context.users) == 2 and len(context.items) == 2
        assert context.num_query() > 0

    def test_warns_once_per_draw_not_per_retry(self, dense_2x2):
        # reveal 0.5 on 4 cells keeps retries plausible; however many
        # attempts the draw takes, the degraded-shape warning fires once.
        with pytest.warns(RuntimeWarning) as record:
            sample_training_context(
                dense_2x2, NeighborhoodSampler(),
                dense_2x2.triples(), np.random.default_rng(3),
                context_users=8, context_items=8, reveal_fraction=0.5,
                candidate_users=np.arange(2), candidate_items=np.arange(2),
            )
        degraded = [w for w in record
                    if "degraded to the achievable" in str(w.message)]
        assert len(degraded) == 1

    def test_deterministic_zero_query_fails_fast(self, dense_2x2):
        # Both axes degraded + fixed reveal fraction: every retry rebuilds
        # the same observed cells, so the first zero-query draw is final —
        # "attempt 1", not the full retry budget.
        with pytest.warns(RuntimeWarning, match="degraded"):
            with pytest.raises(RuntimeError) as excinfo:
                sample_training_context(
                    dense_2x2, NeighborhoodSampler(),
                    dense_2x2.triples(), np.random.default_rng(0),
                    context_users=8, context_items=8, reveal_fraction=0.99,
                    candidate_users=np.arange(2),
                    candidate_items=np.arange(2),
                )
        message = str(excinfo.value)
        assert "zero maskable query cells" in message
        assert "degraded context shape (2, 2)" in message
        assert "attempt 1 of" in message

    def test_random_reveal_band_keeps_retrying(self, dense_2x2):
        # With reveal_fraction_high set, each retry redraws the fraction —
        # the zero is not deterministic, so the full retry budget applies.
        with pytest.warns(RuntimeWarning, match="degraded"):
            with pytest.raises(RuntimeError, match="after 2 attempts"):
                sample_training_context(
                    dense_2x2, NeighborhoodSampler(),
                    dense_2x2.triples(), np.random.default_rng(0),
                    context_users=8, context_items=8,
                    reveal_fraction=0.97, reveal_fraction_high=0.99,
                    candidate_users=np.arange(2),
                    candidate_items=np.arange(2),
                    max_retries=2,
                )
