"""Lint gate: no bare ``print(`` in library code.

All human-facing output must go through the telemetry layer
(``repro.obs`` sinks and report renderers) so it can be captured,
redirected, and rate-limited.  Only the CLI entry point, whose job *is*
stdout, is allowlisted.  Tokenising (rather than grepping) keeps
docstrings and comments from tripping the gate.
"""

import tokenize
from pathlib import Path

SRC = Path(__file__).resolve().parent.parent / "src" / "repro"

# Paths (relative to src/repro) whose purpose is writing to stdout.
ALLOWED = {
    "experiments/cli.py",
}


def _print_call_lines(path: Path) -> list[int]:
    with tokenize.open(path) as handle:
        tokens = list(tokenize.generate_tokens(handle.readline))
    lines = []
    for token, following in zip(tokens, tokens[1:]):
        if (token.type == tokenize.NAME and token.string == "print"
                and following.type == tokenize.OP and following.string == "("):
            lines.append(token.start[0])
    return lines


def test_no_bare_print_in_library_code():
    offenders = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC).as_posix()
        if rel in ALLOWED:
            continue
        offenders.extend(f"src/repro/{rel}:{line}"
                         for line in _print_call_lines(path))
    assert not offenders, (
        "bare print() in library code (route output through repro.obs "
        "sinks, or allowlist a renderer):\n  " + "\n  ".join(offenders)
    )


def test_allowlist_entries_exist():
    for rel in ALLOWED:
        assert (SRC / rel).is_file(), f"stale allowlist entry: {rel}"
