"""SVG chart rendering: structural validity and content."""

import xml.etree.ElementTree as ET

import numpy as np
import pytest

from repro.viz import bar_chart, fig6_svg, fig7_svg, fig8_svg, fig9_svg, heatmap, line_chart


def parse(svg: str) -> ET.Element:
    """Well-formedness check: the SVG must parse as XML."""
    return ET.fromstring(svg)


class TestPrimitives:
    def test_line_chart_valid_xml(self):
        svg = line_chart({"UC": [(1, 0.8), (2, 0.85), (3, 0.9)],
                          "IC": [(1, 0.7), (2, 0.75), (3, 0.72)]},
                         title="t", x_label="x", y_label="y")
        root = parse(svg)
        assert root.tag.endswith("svg")
        assert "UC" in svg and "IC" in svg

    def test_line_chart_single_point(self):
        svg = line_chart({"a": [(1.0, 0.5)]})
        parse(svg)

    def test_line_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            line_chart({})
        with pytest.raises(ValueError):
            line_chart({"a": []})

    def test_bar_chart_values_annotated(self):
        svg = bar_chart({"NeuMF": 0.01, "HIRE": 1.5}, y_label="s")
        parse(svg)
        assert "NeuMF" in svg and "HIRE" in svg

    def test_bar_chart_log_scale(self):
        svg = bar_chart({"fast": 0.001, "slow": 10.0}, y_label="s", log_scale=True)
        parse(svg)
        assert "log scale" in svg

    def test_bar_chart_empty_rejected(self):
        with pytest.raises(ValueError):
            bar_chart({})

    def test_heatmap_dimensions(self):
        svg = heatmap([[0.1, 0.9], [0.5, 0.2]], row_labels=["a", "b"],
                      col_labels=["x", "y"])
        root = parse(svg)
        rects = [e for e in root.iter() if e.tag.endswith("rect")]
        assert len(rects) >= 4  # one per cell plus background

    def test_heatmap_constant_matrix(self):
        parse(heatmap([[1.0, 1.0], [1.0, 1.0]]))

    def test_heatmap_empty_rejected(self):
        with pytest.raises(ValueError):
            heatmap([])

    def test_labels_escaped(self):
        svg = bar_chart({"a<b>&c": 1.0})
        parse(svg)  # would fail on unescaped '<'


class TestFigureRenderers:
    def test_fig6(self):
        rows = [{"dataset": "ml", "model": "HIRE", "test_seconds": 0.5},
                {"dataset": "db", "model": "HIRE", "test_seconds": 0.3},
                {"dataset": "ml", "model": "NeuMF", "test_seconds": 0.001}]
        svg = fig6_svg(rows)
        parse(svg)
        assert "HIRE" in svg

    def test_fig7(self):
        rows = [{"sweep": "num_him_blocks", "value": k, "scenario": "user",
                 "ndcg": 0.8 + 0.01 * k, "precision": 0.5, "map": 0.4}
                for k in (1, 2, 3, 4)]
        svg = fig7_svg(rows)
        parse(svg)
        assert "HIM blocks" in svg

    def test_fig8(self):
        rows = [{"sampler": s, "scenario": "user", "ndcg": 0.8,
                 "precision": 0.5, "map": 0.4}
                for s in ("neighborhood", "random")]
        svg = fig8_svg(rows)
        parse(svg)
        assert "neighborhood/UC" in svg

    def test_fig9_all_matrices(self):
        case = {
            "attention": {
                "user": np.random.default_rng(0).random((3, 3)),
                "item": np.random.default_rng(1).random((4, 4)),
                "attr": np.random.default_rng(2).random((5, 5)),
            },
            "users": np.array([1, 2, 3]),
            "items": np.array([7, 8, 9, 10]),
            "attribute_names": ("a", "b", "c", "d", "e"),
        }
        for which in ("user", "item", "attr"):
            svg = fig9_svg(case, which=which)
            parse(svg)
