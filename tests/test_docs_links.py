"""Docs lint: every link and code reference in README.md and docs/*.md
must resolve, and every repro subpackage must be documented.

Static checks only (no network, no execution of examples):

* relative markdown links point at files that exist;
* backticked repo paths (``tests/...``, ``docs/...``, ``src/...``,
  ``benchmarks/...``, ``examples/...``) exist;
* dotted ``repro.*`` references import (attribute tails resolved with
  ``getattr`` walks);
* every package/module directly under ``src/repro`` has a module
  docstring and is mentioned in at least one docs page;
* every public symbol (``__all__``) of the serving and inference-engine
  APIs is mentioned in at least one docs page.
"""

import ast
import importlib
import re
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
DOC_FILES = sorted([REPO_ROOT / "README.md",
                    *(REPO_ROOT / "docs").glob("*.md")])

# [text](target) — excluding images; target split from any #fragment.
MD_LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)\s]+)\)")
# `tests/foo/bar.py` / `docs/x.md` / `src/...` style backticked paths.
CODE_PATH = re.compile(
    r"`((?:tests|docs|src|benchmarks|examples)/[\w./-]+)(?:::[\w:\[\]-]+)?`")
# Dotted module/attribute references: `repro.core.task_chunk_rng`, ...
DOTTED_REF = re.compile(r"\brepro(?:\.\w+)+")


def doc_ids():
    return [path.relative_to(REPO_ROOT).as_posix() for path in DOC_FILES]


@pytest.fixture(params=DOC_FILES, ids=doc_ids())
def doc(request):
    path = request.param
    return path, path.read_text()


class TestLinksResolve:
    def test_relative_links_exist(self, doc):
        path, text = doc
        broken = []
        for target in MD_LINK.findall(text):
            if target.startswith(("http://", "https://", "mailto:", "#")):
                continue
            resolved = (path.parent / target.split("#", 1)[0]).resolve()
            if not resolved.exists():
                broken.append(target)
        assert not broken, f"{path.name}: broken relative links {broken}"

    def test_backticked_paths_exist(self, doc):
        path, text = doc
        missing = [ref for ref in CODE_PATH.findall(text)
                   if not (REPO_ROOT / ref).exists()]
        assert not missing, f"{path.name}: nonexistent paths {missing}"

    def test_dotted_repro_references_import(self, doc):
        path, text = doc
        unresolved = []
        for ref in sorted(set(DOTTED_REF.findall(text))):
            if not self._resolves(ref):
                unresolved.append(ref)
        assert not unresolved, f"{path.name}: dangling references {unresolved}"

    @staticmethod
    def _resolves(dotted: str) -> bool:
        parts = dotted.split(".")
        for cut in range(len(parts), 0, -1):
            try:
                obj = importlib.import_module(".".join(parts[:cut]))
            except ImportError:
                continue
            try:
                for attr in parts[cut:]:
                    obj = getattr(obj, attr)
            except AttributeError:
                return False
            return True
        return False


def repro_modules():
    """Top-level subpackages/modules of repro, as (name, init_path)."""
    src = REPO_ROOT / "src" / "repro"
    modules = []
    for entry in sorted(src.iterdir()):
        if entry.is_dir() and (entry / "__init__.py").exists():
            modules.append((f"repro.{entry.name}", entry / "__init__.py"))
        elif entry.suffix == ".py" and entry.name != "__init__.py":
            modules.append((f"repro.{entry.stem}", entry))
    return modules


@pytest.mark.parametrize("name,path", repro_modules(),
                         ids=[n for n, _ in repro_modules()])
class TestEveryPackageDocumented:
    def test_has_module_docstring(self, name, path):
        docstring = ast.get_docstring(ast.parse(path.read_text()))
        assert docstring, f"{name} ({path}) lacks a module docstring"

    def test_mentioned_in_docs(self, name, path):
        assert any(name in text for _, text in
                   ((p, p.read_text()) for p in DOC_FILES)), (
            f"{name} is not mentioned in README.md or any docs/*.md page")


# User-facing API surfaces whose every public symbol must appear in docs.
DOCUMENTED_APIS = ["repro.serve", "repro.serve.shard", "repro.nn.inference",
                   "repro.obs", "repro.online"]


def api_symbols():
    pairs = []
    for module_name in DOCUMENTED_APIS:
        module = importlib.import_module(module_name)
        pairs.extend((module_name, symbol) for symbol in module.__all__)
    return pairs


@pytest.mark.parametrize("module_name,symbol", api_symbols(),
                         ids=[f"{m}.{s}" for m, s in api_symbols()])
class TestPublicSymbolsDocumented:
    """A symbol exported from a documented API without a docs mention is a
    docs bug: either document it or stop exporting it."""

    def test_symbol_mentioned_in_docs(self, module_name, symbol):
        assert any(symbol in text for text in
                   (p.read_text() for p in DOC_FILES)), (
            f"{module_name}.{symbol} is exported but never mentioned in "
            f"README.md or any docs/*.md page")


# Metric-name lint: every instrument name emitted by the serve tier
# (``self._counter("x")`` -> ``serve.x``), the online loop
# (``online.x``), or the trainer metrics sink (``self._name("x")`` ->
# ``trainer.x``) must appear in docs/observability.md — an operator
# grepping a dashboard name has to land somewhere.
SERVE_METRIC_CALL = re.compile(
    r"self\._(?:windowed_)?(?:counter|gauge|histogram)\(\s*f?\"([^\"]+)\"")
SINK_METRIC_CALL = re.compile(r"self\._name\(\s*\"([^\"]+)\"")


def emitted_metric_names():
    from repro.obs import TRACE_STAGES

    names = set()
    for source in sorted((REPO_ROOT / "src" / "repro" / "serve").glob("*.py")):
        for name in SERVE_METRIC_CALL.findall(source.read_text()):
            if "{stage}" in name:
                names.update(f"serve.{name.format(stage=stage)}"
                             for stage in TRACE_STAGES)
            else:
                names.add(f"serve.{name}")
    for source in sorted((REPO_ROOT / "src" / "repro" / "online").glob("*.py")):
        names.update(f"online.{name}"
                     for name in SERVE_METRIC_CALL.findall(source.read_text()))
    for source in sorted((REPO_ROOT / "src" / "repro" / "obs").glob("*.py")):
        names.update(f"trainer.{name}"
                     for name in SINK_METRIC_CALL.findall(source.read_text()))
    return sorted(names)


@pytest.mark.parametrize("metric", emitted_metric_names())
def test_metric_name_in_observability_docs(metric):
    text = (REPO_ROOT / "docs" / "observability.md").read_text()
    assert metric in text, (
        f"metric {metric!r} is emitted by the code but absent from "
        f"docs/observability.md")


def test_metric_extraction_found_the_core_metrics():
    # Canary: the regexes must keep matching the real emission sites
    # (a refactor that silently empties the lint would pass trivially).
    names = emitted_metric_names()
    assert "serve.latency_seconds" in names
    assert "serve.window.latency_seconds" in names
    assert "serve.stage.forward_seconds" in names
    assert "trainer.loss" in names
    assert "online.promotions_total" in names
    assert "serve.shard.routed_total" in names
    assert "serve.invalidation_evicted_total" in names
    assert "serve.frontier.hits_total" in names
    assert "serve.assemble.degraded_total" in names


# Config surfaces: every tunable field of the serving/router configs must
# be documented somewhere — an operator reading a config dataclass has to
# find each knob's meaning in the docs.
DOCUMENTED_CONFIGS = ["repro.serve.ServiceConfig",
                      "repro.serve.RouterConfig"]


def config_fields():
    import dataclasses

    pairs = []
    for dotted in DOCUMENTED_CONFIGS:
        module_name, _, class_name = dotted.rpartition(".")
        cls = getattr(importlib.import_module(module_name), class_name)
        pairs.extend((dotted, field.name)
                     for field in dataclasses.fields(cls))
    return pairs


@pytest.mark.parametrize("config,field", config_fields(),
                         ids=[f"{c}.{f}" for c, f in config_fields()])
def test_config_field_documented(config, field):
    assert any(field in text for text in
               (p.read_text() for p in DOC_FILES)), (
        f"{config} field {field!r} is not mentioned in README.md or any "
        f"docs/*.md page")


def test_docs_readme_links_every_docs_page():
    """docs/README.md is the index: every docs/*.md page must be linked
    from it (and the links themselves resolve via TestLinksResolve)."""
    index = REPO_ROOT / "docs" / "README.md"
    assert index.is_file(), "docs/README.md index is missing"
    text = index.read_text()
    linked = {target.split("#", 1)[0] for target in MD_LINK.findall(text)}
    missing = [page.name for page in sorted((REPO_ROOT / "docs").glob("*.md"))
               if page.name != "README.md" and page.name not in linked]
    assert not missing, f"docs/README.md does not link {missing}"
