"""Shared fixtures: small seeded workloads reused across the test suite."""

import numpy as np
import pytest

from repro.data import (
    RatingGraph,
    bookcrossing_like,
    douban_like,
    make_cold_start_split,
    movielens_like,
)


@pytest.fixture(scope="session")
def rng():
    return np.random.default_rng(0)


@pytest.fixture(scope="session")
def ml_dataset():
    """Small MovieLens-like dataset (rich attributes)."""
    return movielens_like(num_users=80, num_items=60, seed=7)


@pytest.fixture(scope="session")
def douban_dataset():
    """Small Douban-like dataset (no attributes, social edges)."""
    return douban_like(num_users=60, num_items=70, seed=11)


@pytest.fixture(scope="session")
def book_dataset():
    """Small Bookcrossing-like dataset (1-10 scale, sparse)."""
    return bookcrossing_like(num_users=70, num_items=60, seed=13)


@pytest.fixture(scope="session")
def ml_split(ml_dataset):
    return make_cold_start_split(ml_dataset, 0.2, 0.2, seed=3)


@pytest.fixture(scope="session")
def douban_split(douban_dataset):
    return make_cold_start_split(douban_dataset, 0.3, 0.3, seed=3)


@pytest.fixture(scope="session")
def ml_graph(ml_split):
    return RatingGraph(ml_split.train_ratings(), ml_split.dataset.num_users,
                       ml_split.dataset.num_items)
