"""ContextPipeline + trainer integration: bit-identity across worker
counts and backends, failure propagation, shutdown, and metrics."""

import threading

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
from repro.pipeline import (
    ContextBatchSource,
    ContextPipeline,
    PipelineError,
)


def make_trainer(ml_dataset, ml_split, **overrides):
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                        attr_dim=4, seed=0))
    config = TrainerConfig(**{
        "steps": 6, "batch_size": 2, "context_users": 8,
        "context_items": 8, "seed": 0, **overrides})
    return HIRETrainer(model, ml_split, config=config)


@pytest.fixture(scope="module")
def sequential_history(ml_dataset, ml_split):
    """The per-step-RNG sequential baseline every pipelined run must match."""
    trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
    return list(trainer.fit())


class TestBitIdentity:
    @pytest.mark.parametrize("workers", [1, 4])
    def test_threaded_pipeline_matches_sequential(
            self, ml_dataset, ml_split, sequential_history, workers):
        trainer = make_trainer(ml_dataset, ml_split,
                               prefetch_workers=workers, prefetch_buffer=4)
        history = trainer.fit()
        assert history == sequential_history

    def test_process_backend_matches_sequential(
            self, ml_dataset, ml_split, sequential_history):
        trainer = make_trainer(ml_dataset, ml_split, prefetch_workers=2,
                               prefetch_buffer=4, prefetch_backend="process")
        history = trainer.fit()
        assert history == sequential_history

    def test_legacy_default_stream_is_unchanged(
            self, ml_dataset, ml_split, sequential_history):
        # prefetch off + per_step_rng unset keeps the original shared
        # advancing stream — a different (equally valid) trajectory, which
        # is exactly why per-step RNG is opt-in.
        trainer = make_trainer(ml_dataset, ml_split)
        assert not trainer.config.uses_per_step_rng
        history = trainer.fit()
        assert history != sequential_history

    def test_source_sampling_is_pure(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
        source = ContextBatchSource.from_trainer(trainer)
        once = source.sample_step(3)
        again = source.sample_step(3)
        assert len(once) == trainer.config.batch_size
        for a, b in zip(once, again):
            assert np.array_equal(a.users, b.users)
            assert np.array_equal(a.items, b.items)
            assert np.array_equal(a.ratings, b.ratings)
            assert np.array_equal(a.query, b.query)


class _FailingSource:
    """Stands in for ContextBatchSource; every sample raises."""

    def sample_step(self, step):
        raise ValueError(f"injected sampler failure at step {step}")


class TestFailureAndShutdown:
    def test_worker_exception_propagates_to_fit(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split)
        pipeline = ContextPipeline(_FailingSource(), num_workers=2,
                                   buffer_depth=4)
        with pytest.raises(PipelineError) as excinfo:
            trainer.fit(pipeline=pipeline)
        assert isinstance(excinfo.value.__cause__, ValueError)
        assert "injected sampler failure" in str(excinfo.value.__cause__)

    def test_failed_fit_still_closes_pipeline(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split)
        pipeline = ContextPipeline(_FailingSource(), num_workers=1)
        with pytest.raises(PipelineError):
            trainer.fit(pipeline=pipeline)
        assert pipeline.closed
        assert trainer._active_pipeline is None
        # No pipeline worker threads may outlive fit().
        pipeline._pool.join(timeout=5.0)
        assert pipeline._pool.alive_count() == 0

    def test_fit_closes_pipeline_on_success(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, prefetch_workers=1)
        trainer.fit()
        pipeline = trainer.last_pipeline
        assert pipeline is not None
        assert pipeline.closed
        pipeline._pool.join(timeout=5.0)
        assert pipeline._pool.alive_count() == 0
        assert not any(t.name.startswith("pipeline-")
                       for t in threading.enumerate())

    def test_context_manager_closes(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
        source = ContextBatchSource.from_trainer(trainer)
        with ContextPipeline(source, num_workers=1) as pipeline:
            pipeline.start  # started by __enter__
            assert pipeline.started
            batch = pipeline.take(0, timeout=10.0)
            assert len(batch) == trainer.config.batch_size
        assert pipeline.closed


class TestMetrics:
    def test_fit_populates_pipeline_metrics(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, prefetch_workers=1)
        trainer.fit()
        snap = trainer.last_pipeline.snapshot()
        steps = trainer.config.steps
        hits = snap["pipeline.buffer_hits"]["value"]
        starved = snap["pipeline.starvations"]["value"]
        assert hits + starved == steps
        assert snap["pipeline.batches"]["value"] >= steps
        assert snap["pipeline.wait_seconds"]["count"] == steps
        assert snap["pipeline.sample_seconds"]["count"] >= steps

    def test_report_renders(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, prefetch_workers=1)
        trainer.fit()
        report = trainer.last_pipeline.report()
        assert "pipeline.buffer_hits" in report


class TestConfigValidation:
    def test_prefetch_workers_nonnegative(self):
        with pytest.raises(ValueError):
            TrainerConfig(prefetch_workers=-1)

    def test_prefetch_buffer_positive(self):
        with pytest.raises(ValueError):
            TrainerConfig(prefetch_buffer=0)

    def test_backend_validated(self):
        with pytest.raises(ValueError, match="prefetch_backend"):
            TrainerConfig(prefetch_backend="fiber")

    def test_prefetching_requires_per_step_rng(self):
        with pytest.raises(ValueError, match="per-step RNG"):
            TrainerConfig(prefetch_workers=2, per_step_rng=False)

    def test_per_step_rng_auto_resolution(self):
        assert not TrainerConfig().uses_per_step_rng
        assert TrainerConfig(prefetch_workers=2).uses_per_step_rng
        assert TrainerConfig(per_step_rng=True).uses_per_step_rng

    def test_pipeline_rejects_bad_backend(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
        source = ContextBatchSource.from_trainer(trainer)
        with pytest.raises(ValueError, match="backend"):
            ContextPipeline(source, backend="fiber")
        with pytest.raises(ValueError, match="num_workers"):
            ContextPipeline(source, num_workers=0)

    def test_take_before_start_raises(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
        pipeline = ContextPipeline(ContextBatchSource.from_trainer(trainer))
        with pytest.raises(RuntimeError, match="not started"):
            pipeline.take(0)

    def test_double_start_raises(self, ml_dataset, ml_split):
        trainer = make_trainer(ml_dataset, ml_split, per_step_rng=True)
        pipeline = ContextPipeline(ContextBatchSource.from_trainer(trainer),
                                   num_workers=1)
        pipeline.start(total_steps=1)
        try:
            with pytest.raises(RuntimeError, match="already started"):
                pipeline.start()
        finally:
            pipeline.close()
