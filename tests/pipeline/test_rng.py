"""derive_step_rng: per-(seed, step, slot) generators — the determinism
foundation of repro.pipeline."""

import numpy as np

from repro.pipeline import STEP_RNG_DOMAIN, derive_step_rng


class TestDeriveStepRng:
    def test_same_key_same_stream(self):
        a = derive_step_rng(0, 3, 1).integers(0, 1 << 30, size=16)
        b = derive_step_rng(0, 3, 1).integers(0, 1 << 30, size=16)
        assert (a == b).all()

    def test_distinct_across_step_slot_seed(self):
        keys = [(0, 0, 0), (0, 0, 1), (0, 1, 0), (1, 0, 0), (0, 7, 3)]
        draws = {k: tuple(derive_step_rng(*k).integers(0, 1 << 30, size=8))
                 for k in keys}
        assert len(set(draws.values())) == len(keys)

    def test_independent_of_consumption_order(self):
        # Drawing step 5 first then step 2 gives the same streams as the
        # reverse order: each generator is freshly derived, never shared.
        first_5 = derive_step_rng(0, 5, 0).integers(0, 1 << 30, size=8)
        first_2 = derive_step_rng(0, 2, 0).integers(0, 1 << 30, size=8)
        again_2 = derive_step_rng(0, 2, 0).integers(0, 1 << 30, size=8)
        again_5 = derive_step_rng(0, 5, 0).integers(0, 1 << 30, size=8)
        assert (first_5 == again_5).all()
        assert (first_2 == again_2).all()

    def test_domain_separated_from_raw_seed(self):
        # The domain constant keeps pipeline streams disjoint from a plain
        # default_rng(seed) and from other derived-RNG schemes in the repo.
        assert STEP_RNG_DOMAIN == 0x48495245  # "HIRE"
        derived = derive_step_rng(0, 0, 0).integers(0, 1 << 30, size=8)
        plain = np.random.default_rng(0).integers(0, 1 << 30, size=8)
        assert not (derived == plain).all()

    def test_returns_numpy_generator(self):
        assert isinstance(derive_step_rng(0, 0, 0), np.random.Generator)
