"""PrefetchBuffer: ordering, backpressure, close and failure semantics."""

import threading

import pytest

from repro.concurrency import QueueClosedError
from repro.pipeline import PipelineError, PrefetchBuffer


class TestClaimPublishTake:
    def test_claims_are_sequential(self):
        buf = PrefetchBuffer(capacity=4)
        assert [buf.claim() for _ in range(3)] == [0, 1, 2]

    def test_take_returns_published_batch(self):
        buf = PrefetchBuffer(capacity=2)
        step = buf.claim()
        buf.publish(step, "batch-0")
        assert buf.take(0) == "batch-0"

    def test_out_of_order_publish_in_order_take(self):
        buf = PrefetchBuffer(capacity=4)
        steps = [buf.claim() for _ in range(3)]
        for step in reversed(steps):
            buf.publish(step, f"batch-{step}")
        assert [buf.take(i) for i in range(3)] == [
            "batch-0", "batch-1", "batch-2"]

    def test_take_enforces_order(self):
        buf = PrefetchBuffer(capacity=4)
        buf.publish(buf.claim(), "x")
        with pytest.raises(ValueError, match="in order"):
            buf.take(1)

    def test_depth_counts_untaken_batches(self):
        buf = PrefetchBuffer(capacity=4)
        buf.publish(buf.claim(), "a")
        buf.publish(buf.claim(), "b")
        assert buf.depth == 2 and len(buf) == 2
        buf.take(0)
        assert buf.depth == 1

    def test_ready_is_a_hit_probe(self):
        buf = PrefetchBuffer(capacity=2)
        assert not buf.ready(0)
        buf.publish(buf.claim(), "a")
        assert buf.ready(0)


class TestBackpressure:
    def test_claim_window_is_capacity_ahead_of_take(self):
        buf = PrefetchBuffer(capacity=2)
        assert buf.claim(timeout=0.01) == 0
        assert buf.claim(timeout=0.01) == 1
        # Window full: two claimed, none taken.
        assert buf.claim(timeout=0.01) is None
        buf.publish(0, "a")
        buf.take(0)
        # Taking a step reopens the window.
        assert buf.claim(timeout=0.5) == 2

    def test_blocked_claim_wakes_on_take(self):
        buf = PrefetchBuffer(capacity=1)
        buf.publish(buf.claim(), "a")
        got = []

        def producer():
            got.append(buf.claim(timeout=5.0))

        thread = threading.Thread(target=producer)
        thread.start()
        buf.take(0)
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert got == [1]

    def test_limit_stops_claims(self):
        buf = PrefetchBuffer(capacity=8, limit=2)
        assert buf.claim() == 0
        assert buf.claim() == 1
        assert buf.claim(timeout=0.01) is None


class TestCloseAndFailure:
    def test_close_makes_claim_return_none(self):
        buf = PrefetchBuffer(capacity=2)
        buf.close()
        assert buf.closed
        assert buf.claim(timeout=0.01) is None

    def test_close_discards_buffered_batches(self):
        buf = PrefetchBuffer(capacity=2)
        buf.publish(buf.claim(), "a")
        buf.close()
        assert buf.depth == 0
        with pytest.raises(QueueClosedError):
            buf.take(0)

    def test_publish_after_close_is_noop(self):
        buf = PrefetchBuffer(capacity=2)
        step = buf.claim()
        buf.close()
        buf.publish(step, "late")
        assert buf.depth == 0

    def test_close_wakes_blocked_take(self):
        buf = PrefetchBuffer(capacity=2)
        errors = []

        def consumer():
            try:
                buf.take(0, timeout=5.0)
            except QueueClosedError as exc:
                errors.append(exc)

        thread = threading.Thread(target=consumer)
        thread.start()
        buf.close()
        thread.join(timeout=5.0)
        assert not thread.is_alive()
        assert len(errors) == 1

    def test_failure_raises_pipeline_error_with_cause(self):
        buf = PrefetchBuffer(capacity=2)
        boom = RuntimeError("sampler exploded")
        buf.fail(boom)
        assert buf.failure is boom
        with pytest.raises(PipelineError) as excinfo:
            buf.take(0, timeout=1.0)
        assert excinfo.value.__cause__ is boom

    def test_first_failure_wins(self):
        buf = PrefetchBuffer(capacity=2)
        first = RuntimeError("first")
        buf.fail(first)
        buf.fail(RuntimeError("second"))
        assert buf.failure is first

    def test_failure_stops_claims(self):
        buf = PrefetchBuffer(capacity=2)
        buf.fail(RuntimeError("boom"))
        assert buf.claim(timeout=0.01) is None

    def test_take_timeout_raises(self):
        buf = PrefetchBuffer(capacity=2)
        with pytest.raises(QueueClosedError, match="timed out"):
            buf.take(0, timeout=0.01)


class TestValidation:
    def test_capacity_must_be_positive(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(capacity=0)

    def test_limit_must_be_nonnegative(self):
        with pytest.raises(ValueError):
            PrefetchBuffer(capacity=1, limit=-1)
