"""End-to-end integration: a trained HIRE beats chance and improves with
training on a small-but-real cold-start workload, across all three datasets
and all three scenarios."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor, HIRETrainer, TrainerConfig
from repro.data import bookcrossing_like, douban_like, make_cold_start_split, movielens_like
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import HIREModel


def train_eval_ndcg(dataset, split, steps, seed=0, scenario="user", max_tasks=6):
    tasks = build_eval_tasks(split, scenario, min_query=5, seed=seed,
                             max_tasks=max_tasks)
    if not tasks:
        pytest.skip(f"no {scenario} tasks at this scale")
    model = HIREModel(
        dataset,
        config=HIREConfig(num_blocks=2, num_heads=2, attr_dim=4, seed=seed),
        trainer_config=TrainerConfig(steps=steps, batch_size=2, context_users=10,
                                     context_items=10, seed=seed),
    )
    result = evaluate_model(model, split, scenario, ks=(5,), tasks=tasks)
    return result.metrics[5]["ndcg"]


class TestHIREEndToEnd:
    @pytest.mark.parametrize("scenario", ["user", "item", "both"])
    def test_all_scenarios_on_movielens(self, ml_dataset, ml_split, scenario):
        ndcg = train_eval_ndcg(ml_dataset, ml_split, steps=30, scenario=scenario,
                               max_tasks=4)
        assert 0.0 <= ndcg <= 1.0

    def test_training_improves_over_init(self, ml_dataset, ml_split):
        untrained = train_eval_ndcg(ml_dataset, ml_split, steps=1)
        trained = train_eval_ndcg(ml_dataset, ml_split, steps=80)
        # Trained model should not be materially worse; typically better.
        assert trained >= untrained - 0.05

    def test_douban_id_attributes_pipeline(self, douban_dataset, douban_split):
        ndcg = train_eval_ndcg(douban_dataset, douban_split, steps=25, max_tasks=3)
        assert np.isfinite(ndcg)

    def test_bookcrossing_ten_point_scale(self, book_dataset):
        split = make_cold_start_split(book_dataset, 0.3, 0.3, seed=1)
        ndcg = train_eval_ndcg(book_dataset, split, steps=25, max_tasks=3)
        assert np.isfinite(ndcg)

    def test_predictions_bounded_by_alpha(self, ml_dataset, ml_split):
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=10, batch_size=1, context_users=8, context_items=8, seed=0))
        trainer.fit()
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=2)
        predictor = HIREPredictor(model, ml_split, tasks, context_users=8,
                                  context_items=8, seed=0)
        for task in tasks:
            scores = predictor.predict_task(task)
            assert (scores >= 0).all() and (scores <= 5.0).all()


class TestReproducibility:
    def test_full_pipeline_deterministic(self, ml_dataset, ml_split):
        """Same seeds end to end -> identical metrics."""
        a = train_eval_ndcg(ml_dataset, ml_split, steps=10, seed=5)
        b = train_eval_ndcg(ml_dataset, ml_split, steps=10, seed=5)
        assert a == pytest.approx(b)
