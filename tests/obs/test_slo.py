"""SLO rules: burn-rate evaluation over (short, long) window pairs."""

import pytest

from repro.obs import SLORule, default_serve_rules, evaluate_slos, worst_state
from repro.obs.slo import evaluate_rule


def max_rule(threshold=1.0, warn_ratio=0.9):
    return SLORule(name="lat", probe="latency_p99_seconds",
                   objective="max", threshold=threshold,
                   warn_ratio=warn_ratio)


def min_rule(threshold=0.5, warn_ratio=0.9):
    return SLORule(name="hits", probe="cache_hit_rate",
                   objective="min", threshold=threshold,
                   warn_ratio=warn_ratio)


class TestRuleValidation:
    def test_objective_must_be_max_or_min(self):
        with pytest.raises(ValueError):
            SLORule(name="x", probe="p", objective="avg", threshold=1.0)

    def test_warn_ratio_bounds(self):
        with pytest.raises(ValueError):
            SLORule(name="x", probe="p", objective="max", threshold=1.0,
                    warn_ratio=0.0)
        with pytest.raises(ValueError):
            SLORule(name="x", probe="p", objective="max", threshold=1.0,
                    warn_ratio=1.5)


class TestMaxObjective:
    def test_ok_well_under_threshold(self):
        assert evaluate_rule(max_rule(), 0.2, 0.3).state == "ok"

    def test_breach_requires_every_window(self):
        assert evaluate_rule(max_rule(), 2.0, 2.0).state == "breach"

    def test_one_violating_window_is_warn(self):
        # Fast burn: bad now, long window not yet confirming.
        assert evaluate_rule(max_rule(), 2.0, 0.2).state == "warn"
        # Recovered: long window still bad, short back under budget.
        assert evaluate_rule(max_rule(), 0.2, 2.0).state == "warn"

    def test_warn_margin(self):
        # Within 10% of the budget (warn_ratio 0.9) warns early.
        assert evaluate_rule(max_rule(), 0.95, 0.2).state == "warn"

    def test_no_data(self):
        assert evaluate_rule(max_rule(), None, None).state == "no_data"

    def test_single_window_breaches_alone(self):
        # Only one window has data and it violates: breach, not warn.
        assert evaluate_rule(max_rule(), 2.0, None).state == "breach"


class TestMinObjective:
    def test_ok_above_threshold(self):
        assert evaluate_rule(min_rule(), 0.9, 0.9).state == "ok"

    def test_breach_below_threshold(self):
        assert evaluate_rule(min_rule(), 0.1, 0.1).state == "breach"

    def test_warn_margin_is_reciprocal(self):
        # threshold 0.5, warn_ratio 0.9 -> warn under 0.5/0.9 ~ 0.556.
        assert evaluate_rule(min_rule(), 0.54, 0.8).state == "warn"
        assert evaluate_rule(min_rule(), 0.6, 0.8).state == "ok"


class TestEvaluateSlos:
    def test_missing_probe_is_no_data(self):
        statuses = evaluate_slos([max_rule()], {})
        assert statuses[0].state == "no_data"

    def test_statuses_align_with_rules(self):
        rules = [max_rule(), min_rule()]
        statuses = evaluate_slos(rules, {
            "latency_p99_seconds": (2.0, 2.0),
            "cache_hit_rate": (0.9, 0.9),
        })
        assert [s.state for s in statuses] == ["breach", "ok"]

    def test_snapshot_is_jsonable(self):
        status = evaluate_rule(max_rule(), 0.5, None)
        snap = status.snapshot()
        assert snap["name"] == "lat"
        assert snap["objective"] == "max"
        assert snap["short_value"] == 0.5
        assert snap["long_value"] is None


class TestWorstState:
    def test_severity_order(self):
        assert worst_state([]) == "ok"
        statuses = evaluate_slos(
            [max_rule(), min_rule()],
            {"latency_p99_seconds": (0.95, 0.2),
             "cache_hit_rate": (0.1, 0.1)})
        assert worst_state(statuses) == "breach"

    def test_no_data_never_escalates(self):
        statuses = evaluate_slos([max_rule()], {})
        assert worst_state(statuses) == "ok"

    def test_accepts_raw_strings(self):
        assert worst_state(["ok", "warn"]) == "warn"


class TestDefaultServeRules:
    def test_stock_rules(self):
        rules = default_serve_rules()
        assert [r.probe for r in rules] == ["latency_p99_seconds",
                                            "shed_rate"]

    def test_cache_rule_is_opt_in(self):
        rules = default_serve_rules(min_cache_hit_rate=0.5)
        assert rules[-1].probe == "cache_hit_rate"
        assert rules[-1].objective == "min"

    def test_thresholds_propagate(self):
        rules = default_serve_rules(max_p99_seconds=0.25, max_shed_rate=0.01)
        assert rules[0].threshold == 0.25
        assert rules[1].threshold == 0.01
