"""Tracer: ids, ring buffer bounds, stage aggregation, JSONL sink."""

import pytest

from repro.obs import TRACE_STAGES, Tracer, read_run


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now


class TestRequestTrace:
    def test_ids_are_monotonic(self):
        tracer = Tracer()
        assert tracer.begin().trace_id == 1
        assert tracer.begin().trace_id == 2

    def test_started_at_from_clock_or_caller(self):
        clock = FakeClock(12.5)
        tracer = Tracer(clock=clock)
        assert tracer.begin().started_at == 12.5
        assert tracer.begin(started_at=3.0).started_at == 3.0

    def test_mark_clamps_negative(self):
        trace = Tracer().begin()
        trace.mark("enqueue", -0.5)
        assert trace.stages["enqueue"] == 0.0


class TestTracer:
    def test_finish_fills_every_stage(self):
        tracer = Tracer()
        trace = tracer.begin()
        trace.mark("forward", 0.25)
        record = tracer.finish(trace, 0.5)
        assert set(record["stages"]) == set(TRACE_STAGES)
        assert record["stages"]["forward"] == 0.25
        assert record["stages"]["enqueue"] == 0.0
        assert record["total_seconds"] == 0.5

    def test_ring_is_bounded(self):
        tracer = Tracer(capacity=3)
        for _ in range(10):
            tracer.finish(tracer.begin(), 0.1)
        assert len(tracer) == 3
        assert tracer.completed == 10
        # Oldest-first, holding the most recent ids.
        assert [t["trace_id"] for t in tracer.recent()] == [8, 9, 10]
        assert [t["trace_id"] for t in tracer.recent(2)] == [9, 10]

    def test_capacity_validated(self):
        with pytest.raises(ValueError):
            Tracer(capacity=0)

    def test_stage_totals(self):
        tracer = Tracer()
        for forward in (0.1, 0.3):
            trace = tracer.begin()
            trace.mark("forward", forward)
            tracer.finish(trace, forward + 0.1)
        totals = tracer.stage_totals()
        assert totals["forward"]["count"] == 2
        assert totals["forward"]["total_seconds"] == pytest.approx(0.4)
        assert totals["forward"]["mean_seconds"] == pytest.approx(0.2)
        assert totals["forward"]["max_seconds"] == pytest.approx(0.3)
        assert totals["total"]["total_seconds"] == pytest.approx(0.6)

    def test_stage_totals_empty(self):
        totals = Tracer().stage_totals()
        assert totals["total"]["count"] == 0
        assert totals["forward"]["mean_seconds"] == 0.0

    def test_clear(self):
        tracer = Tracer()
        tracer.finish(tracer.begin(), 0.1)
        tracer.clear()
        assert len(tracer) == 0
        assert tracer.completed == 1  # lifetime counter survives


class TestTraceSink:
    def test_completed_traces_reach_the_sink(self, tmp_path):
        path = tmp_path / "traces.jsonl"
        tracer = Tracer(capacity=2, sink_path=path)
        for _ in range(5):
            trace = tracer.begin()
            trace.mark("forward", 0.1)
            tracer.finish(trace, 0.2)
        tracer.close()
        records = read_run(path)
        traces = [r for r in records if r["type"] == "trace"]
        # The sink keeps everything, beyond the in-memory ring's capacity.
        assert len(traces) == 5
        assert traces[0]["stages"]["forward"] == 0.1
        summary = [r for r in records if r["type"] == "summary"]
        assert summary and summary[0]["traces_completed"] == 5

    def test_close_without_sink_is_noop(self):
        tracer = Tracer()
        tracer.close()
        tracer.close()
