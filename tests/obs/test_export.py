"""TelemetryExporter: periodic snapshots, drain-on-close, source errors."""

import time

import pytest

from repro.obs import MetricsRegistry, TelemetryExporter, read_run


class TestExportOnce:
    def test_snapshot_record_shape(self, tmp_path):
        reg = MetricsRegistry()
        reg.counter("c").inc(3)
        with TelemetryExporter(tmp_path / "t.jsonl", registry=reg,
                               interval_seconds=60.0,
                               sources={"extra": lambda: {"x": 1}}) as exp:
            record = exp.export_once()
        assert record["metrics"]["c"]["value"] == 3.0
        assert record["extra"] == {"x": 1}
        assert "at" in record

    def test_registry_optional(self, tmp_path):
        with TelemetryExporter(tmp_path / "t.jsonl",
                               interval_seconds=60.0,
                               sources={"n": lambda: 7}) as exp:
            record = exp.export_once()
        assert "metrics" not in record
        assert record["n"] == 7

    def test_source_error_does_not_kill_the_tick(self, tmp_path):
        def broken():
            raise RuntimeError("probe down")

        with TelemetryExporter(tmp_path / "t.jsonl",
                               interval_seconds=60.0,
                               sources={"bad": broken,
                                        "good": lambda: 1}) as exp:
            record = exp.export_once()
        assert record["good"] == 1
        assert "bad" not in record
        assert "probe down" in record["source_errors"]["bad"]

    def test_interval_validated(self, tmp_path):
        with pytest.raises(ValueError):
            TelemetryExporter(tmp_path / "t.jsonl", interval_seconds=0.0)


class TestBackgroundThread:
    def test_exports_on_interval(self, tmp_path):
        reg = MetricsRegistry()
        exporter = TelemetryExporter(tmp_path / "t.jsonl", registry=reg,
                                     interval_seconds=0.02)
        deadline = time.monotonic() + 5.0
        while exporter.num_exports < 3 and time.monotonic() < deadline:
            time.sleep(0.01)
        exporter.close()
        assert exporter.num_exports >= 3

    def test_close_writes_final_drain_snapshot(self, tmp_path):
        reg = MetricsRegistry()
        exporter = TelemetryExporter(tmp_path / "t.jsonl", registry=reg,
                                     interval_seconds=3600.0)
        reg.counter("late").inc(9)  # lands between ticks
        exporter.close()
        records = read_run(tmp_path / "t.jsonl")
        exports = [r for r in records if r["type"] == "export"]
        assert exports, "drain snapshot missing"
        assert exports[-1]["metrics"]["late"]["value"] == 9.0
        assert exporter.closed

    def test_close_is_idempotent(self, tmp_path):
        exporter = TelemetryExporter(tmp_path / "t.jsonl",
                                     interval_seconds=60.0)
        exporter.close()
        before = exporter.num_exports
        exporter.close()
        assert exporter.num_exports == before


class TestFileFormat:
    def test_readable_by_read_run(self, tmp_path):
        reg = MetricsRegistry()
        reg.gauge("g").set(0.5)
        with TelemetryExporter(tmp_path / "t.jsonl", registry=reg,
                               interval_seconds=60.0) as exporter:
            exporter.export_once()
        records = read_run(tmp_path / "t.jsonl")
        types = [r["type"] for r in records]
        assert types[0] == "run_start"
        assert types[-1] == "summary"
        assert "export" in types
        exports = [r for r in records if r["type"] == "export"]
        assert [r["sequence"] for r in exports] == list(range(len(exports)))
        assert records[-1]["num_exports"] == len(exports)
