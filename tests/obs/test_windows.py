"""Rolling windowed instruments under a fake clock: rotation, pruning,
sub-window queries, rates, and registry integration."""

import pytest

from repro.obs import MetricsRegistry, WindowedCounter, WindowedHistogram


class FakeClock:
    def __init__(self, now=0.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestWindowedCounter:
    def test_counts_within_window(self):
        clock = FakeClock()
        c = WindowedCounter("req", window_seconds=60.0, num_slices=6,
                            clock=clock)
        c.inc()
        c.inc(2)
        assert c.total() == pytest.approx(3.0)

    def test_old_slices_expire(self):
        clock = FakeClock()
        c = WindowedCounter("req", window_seconds=60.0, num_slices=6,
                            clock=clock)
        c.inc(5)
        clock.advance(30)
        c.inc(1)
        assert c.total() == pytest.approx(6.0)
        clock.advance(40)  # first slice now outside the 60s window
        assert c.total() == pytest.approx(1.0)
        clock.advance(60)
        assert c.total() == 0.0

    def test_sub_window_query(self):
        clock = FakeClock()
        c = WindowedCounter("req", window_seconds=60.0, num_slices=6,
                            clock=clock)
        c.inc(5)
        clock.advance(30)
        c.inc(1)
        # Last 10s covers only the current slice.
        assert c.total(10.0) == pytest.approx(1.0)
        assert c.total(60.0) == pytest.approx(6.0)

    def test_rate_divides_by_covered_time(self):
        clock = FakeClock(1000.0)
        c = WindowedCounter("req", window_seconds=60.0, num_slices=6,
                            clock=clock)
        for _ in range(30):
            c.inc()
            clock.advance(1.0)
        assert c.rate() == pytest.approx(1.0, rel=0.35)

    def test_rejects_negative(self):
        c = WindowedCounter("req", clock=FakeClock())
        with pytest.raises(ValueError):
            c.inc(-1)

    def test_snapshot_shape(self):
        c = WindowedCounter("req", window_seconds=60.0, clock=FakeClock())
        c.inc(2)
        snap = c.snapshot()
        assert snap["type"] == "windowed_counter"
        assert snap["window_seconds"] == 60.0
        assert snap["total"] == pytest.approx(2.0)
        assert snap["rate"] > 0


class TestWindowedHistogram:
    def test_quantiles_within_window(self):
        clock = FakeClock()
        h = WindowedHistogram("lat", window_seconds=60.0, num_slices=6,
                              clock=clock)
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count() == 3
        assert h.quantile(1.0) == pytest.approx(4.0, rel=0.1)

    def test_observations_expire(self):
        clock = FakeClock()
        h = WindowedHistogram("lat", window_seconds=60.0, num_slices=6,
                              clock=clock)
        h.observe(100.0)
        clock.advance(30)
        h.observe(1.0)
        assert h.count() == 2
        clock.advance(40)
        assert h.count() == 1
        # The big old observation no longer pollutes the p99.
        assert h.quantile(0.99) == pytest.approx(1.0, rel=0.1)

    def test_sub_window_rounds_up_to_slices(self):
        clock = FakeClock()
        h = WindowedHistogram("lat", window_seconds=60.0, num_slices=6,
                              clock=clock)
        h.observe(5.0)
        clock.advance(15)  # one full slice boundary crossed
        h.observe(1.0)
        assert h.count(10.0) == 1
        assert h.count(60.0) == 2

    def test_merged_is_lossless_union(self):
        clock = FakeClock()
        h = WindowedHistogram("lat", window_seconds=60.0, num_slices=6,
                              clock=clock)
        values = [0.5, 1.0, 2.0, 8.0]
        for i, v in enumerate(values):
            h.observe(v)
            clock.advance(5)
        merged = h.merged()
        assert merged.count == len(values)
        assert merged.min == pytest.approx(0.5)
        assert merged.max == pytest.approx(8.0)
        assert merged.sum == pytest.approx(sum(values))

    def test_empty_window_reports_zero(self):
        h = WindowedHistogram("lat", clock=FakeClock())
        assert h.count() == 0
        assert h.quantile(0.99) == 0.0
        snap = h.snapshot()
        assert snap["count"] == 0
        assert snap["p99"] == 0.0

    def test_snapshot_shape(self):
        h = WindowedHistogram("lat", window_seconds=60.0, clock=FakeClock())
        h.observe(2.0)
        snap = h.snapshot()
        assert snap["type"] == "windowed_histogram"
        assert snap["count"] == 1
        for key in ("sum", "min", "max", "mean", "p50", "p90", "p99"):
            assert key in snap

    def test_validation(self):
        with pytest.raises(ValueError):
            WindowedHistogram("x", window_seconds=0.0)
        with pytest.raises(ValueError):
            WindowedHistogram("x", num_slices=0)
        with pytest.raises(ValueError):
            WindowedCounter("x", window_seconds=-1.0)


class TestRegistryIntegration:
    def test_windowed_instruments_join_snapshot(self):
        clock = FakeClock()
        reg = MetricsRegistry()
        c = reg.instrument("w.req", lambda name: WindowedCounter(
            name, window_seconds=60.0, clock=clock))
        h = reg.instrument("w.lat", lambda name: WindowedHistogram(
            name, window_seconds=60.0, clock=clock))
        assert reg.instrument("w.req", lambda name: None) is c
        c.inc()
        h.observe(1.0)
        snap = reg.snapshot()
        assert snap["w.req"]["type"] == "windowed_counter"
        assert snap["w.lat"]["type"] == "windowed_histogram"
