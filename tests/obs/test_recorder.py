"""RunRecorder JSONL round-trips and the report renderers."""

from dataclasses import dataclass
from pathlib import Path

import numpy as np
import pytest

from repro import obs
from repro.obs.recorder import jsonable


@dataclass
class FakeConfig:
    steps: int = 10
    base_lr: float = 1e-3


class TestJsonable:
    def test_primitives_pass_through(self):
        assert jsonable(3) == 3
        assert jsonable(0.5) == 0.5
        assert jsonable("x") == "x"
        assert jsonable(None) is None
        assert jsonable(True) is True

    def test_numpy_scalars_and_arrays(self):
        assert jsonable(np.float32(0.5)) == pytest.approx(0.5)
        assert jsonable(np.int64(3)) == 3
        assert jsonable(np.arange(3)) == [0, 1, 2]
        assert jsonable(np.float64(1.5)) == 1.5

    def test_dataclass_and_containers(self):
        out = jsonable({"cfg": FakeConfig(), "seq": (1, 2)})
        assert out == {"cfg": {"steps": 10, "base_lr": 1e-3}, "seq": [1, 2]}

    def test_path_and_fallback(self):
        assert jsonable(Path("/tmp/x")) == "/tmp/x"
        assert isinstance(jsonable(object()), str)


class TestRunRecorder:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = obs.RunRecorder(path, config=FakeConfig())
        recorder.record("step", step=1, loss=np.float32(0.25))
        recorder.record("step", step=2, loss=0.2)
        recorder.finalize(steps_run=2, final_loss=0.2)
        records = obs.read_run(path)
        assert [r["type"] for r in records] == ["run_start", "step", "step",
                                                "summary"]
        assert records[0]["config"]["steps"] == 10
        assert records[1]["loss"] == pytest.approx(0.25)
        assert records[-1]["steps_run"] == 2

    def test_reserved_types_rejected(self, tmp_path):
        recorder = obs.RunRecorder(tmp_path / "run.jsonl")
        with pytest.raises(ValueError):
            recorder.record("run_start")
        with pytest.raises(ValueError):
            recorder.record("summary")
        recorder.close()

    def test_finalize_is_idempotent_and_closes(self, tmp_path):
        recorder = obs.RunRecorder(tmp_path / "run.jsonl")
        recorder.finalize(ok=True)
        recorder.finalize(ok=False)  # no-op
        assert recorder.closed
        records = obs.read_run(tmp_path / "run.jsonl")
        assert sum(r["type"] == "summary" for r in records) == 1
        with pytest.raises(ValueError):
            recorder.record("step")

    def test_context_manager_marks_aborted_runs(self, tmp_path):
        path = tmp_path / "run.jsonl"
        with pytest.raises(RuntimeError):
            with obs.RunRecorder(path) as recorder:
                recorder.record("step", step=1)
                raise RuntimeError("boom")
        summary = obs.read_run(path)[-1]
        assert summary["type"] == "summary"
        assert summary["aborted"] is True
        assert "boom" in summary["error"]

    def test_truncated_tail_tolerated(self, tmp_path):
        path = tmp_path / "run.jsonl"
        recorder = obs.RunRecorder(path)
        recorder.record("step", step=1)
        recorder.close()
        with open(path, "a", encoding="utf-8") as handle:
            handle.write('{"type": "step", "st')  # crashed mid-write
        records = obs.read_run(path)
        assert [r["type"] for r in records] == ["run_start", "step"]

    def test_one_file_per_run(self, tmp_path):
        a = obs.RunRecorder(tmp_path / "a.jsonl", run_id="a")
        b = obs.RunRecorder(tmp_path / "b.jsonl", run_id="b")
        a.finalize()
        b.finalize()
        assert obs.read_run(tmp_path / "a.jsonl")[0]["run_id"] == "a"
        assert obs.read_run(tmp_path / "b.jsonl")[0]["run_id"] == "b"


class TestReport:
    def _run_records(self, tmp_path, steps=5):
        path = tmp_path / "run.jsonl"
        with obs.RunRecorder(path, run_id="demo",
                             config={"steps": steps}) as recorder:
            for step in range(1, steps + 1):
                recorder.record("step", step=step, loss=1.0 / step,
                                grad_norm=0.5, lr=1e-3, step_seconds=0.01,
                                context_n=8, context_m=8, masked_cells=12)
            recorder.record("validation", step=steps, loss=0.4,
                            best_loss=0.4, improved=True)
            recorder.finalize(steps_run=steps, total_steps=steps,
                              stopped_early=False, final_loss=1.0 / steps,
                              wall_seconds=0.05, steps_per_second=100.0)
        return path

    def test_run_report_contains_trajectory_and_summary(self, tmp_path):
        path = self._run_records(tmp_path)
        text = obs.render_run_report(path)
        assert "run demo" in text
        assert "Loss" in text and "|grad|" in text
        assert "1.0000" in text   # first step's loss
        assert "validation checks: 1" in text
        assert "summary:" in text and "steps/s" in text

    def test_step_table_thins_long_runs(self, tmp_path):
        path = self._run_records(tmp_path, steps=100)
        text = obs.render_run_report(path, max_rows=10)
        assert "(100 steps total; showing 10)" in text
        # Last step always shown.
        assert f"{100:>10d}" in text

    def test_empty_inputs(self):
        assert obs.render_run_report([]) == "(empty run)"
        assert obs.render_step_table([]) == "(no step records)"
        assert obs.render_span_table({}) == "(no spans recorded)"

    def test_span_table_renders_paths(self):
        totals = {
            "fit": obs.SpanStats("fit", 2, 1.0, 0.4, 0.6),
            "fit/train_step": obs.SpanStats("fit/train_step", 10, 0.9,
                                            0.05, 0.15),
        }
        text = obs.render_span_table(totals)
        assert "fit" in text
        assert "train_step" in text  # indented leaf name
        assert "10" in text

    def test_metrics_table(self):
        reg = obs.MetricsRegistry()
        reg.counter("trainer.steps").inc(4)
        reg.histogram("trainer.loss").observe(0.5)
        text = obs.render_metrics_table(reg)
        assert "trainer.steps" in text
        assert "counter" in text
        assert "histogram" in text
