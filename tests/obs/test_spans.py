"""Hierarchical spans: nesting, aggregation, disabled-path behaviour."""

import threading

import pytest

from repro import obs
from repro.obs import spans


@pytest.fixture(autouse=True)
def clean_spans():
    obs.reset_spans()
    obs.enable_profiling(False)
    yield
    obs.reset_spans()
    obs.enable_profiling(False)


class TestDisabled:
    def test_disabled_records_nothing(self):
        with obs.span("a"):
            with obs.span("b"):
                pass
        assert obs.span_totals() == {}

    def test_disabled_returns_shared_noop(self):
        assert obs.span("a") is obs.span("b")

    def test_disabled_path_is_empty(self):
        with obs.span("a"):
            assert obs.current_span_path() == ""


class TestNesting:
    def test_paths_join_with_slash(self):
        with obs.profiling():
            with obs.span("fit"):
                with obs.span("train_step"):
                    with obs.span("forward"):
                        pass
        totals = obs.span_totals()
        assert set(totals) == {"fit", "fit/train_step", "fit/train_step/forward"}

    def test_counts_accumulate(self):
        with obs.profiling():
            for _ in range(5):
                with obs.span("step"):
                    pass
        stats = obs.span_totals()["step"]
        assert stats.count == 5
        assert stats.total_seconds >= stats.count * stats.min_seconds
        assert stats.min_seconds <= stats.mean_seconds <= stats.max_seconds

    def test_current_span_path_tracks_stack(self):
        with obs.profiling():
            with obs.span("a"):
                assert obs.current_span_path() == "a"
                with obs.span("b/c"):
                    assert obs.current_span_path() == "a/b/c"
                assert obs.current_span_path() == "a"
            assert obs.current_span_path() == ""

    def test_sibling_spans_share_path(self):
        with obs.profiling():
            for name in ("x", "x"):
                with obs.span(name):
                    pass
        assert obs.span_totals()["x"].count == 2


class TestControls:
    def test_profiling_context_restores_previous_state(self):
        obs.enable_profiling(True)
        with obs.profiling(False):
            assert not obs.profiling_enabled()
        assert obs.profiling_enabled()

    def test_reset_clears(self):
        with obs.profiling():
            with obs.span("a"):
                pass
        obs.reset_spans()
        assert obs.span_totals() == {}

    def test_record_span_direct(self):
        obs.record_span("manual/path", 0.5)
        obs.record_span("manual/path", 1.5)
        stats = obs.span_totals()["manual/path"]
        assert stats.count == 2
        assert stats.total_seconds == pytest.approx(2.0)
        assert stats.min_seconds == pytest.approx(0.5)
        assert stats.max_seconds == pytest.approx(1.5)
        assert stats.mean_seconds == pytest.approx(1.0)


class TestThreading:
    def test_stacks_are_thread_local(self):
        paths = {}

        def worker(name):
            with obs.span(name):
                paths[name] = obs.current_span_path()

        obs.enable_profiling(True)
        threads = [threading.Thread(target=worker, args=(f"t{i}",))
                   for i in range(4)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        # No cross-thread nesting: every worker saw only its own span.
        assert paths == {f"t{i}": f"t{i}" for i in range(4)}
        totals = obs.span_totals()
        for i in range(4):
            assert totals[f"t{i}"].count == 1
