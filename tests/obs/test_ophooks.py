"""Per-op hooks: instrumentation is reversible, attributed, and exact."""

import numpy as np
import pytest

from repro import nn, obs
from repro.nn import functional as F
from repro.obs import ophooks


@pytest.fixture(autouse=True)
def clean_state():
    obs.reset_spans()
    obs.enable_profiling(False)
    yield
    ophooks.uninstrument()
    obs.reset_spans()
    obs.enable_profiling(False)


class TestInstrumentation:
    def test_instrument_wraps_and_uninstrument_restores(self):
        originals = {name: getattr(F, name) for name in ophooks.HOT_OPS}
        ophooks.instrument()
        assert ophooks.instrumented()
        for name in ophooks.HOT_OPS:
            assert getattr(getattr(F, name), "__wrapped_op__") is originals[name]
        ophooks.uninstrument()
        assert not ophooks.instrumented()
        for name in ophooks.HOT_OPS:
            assert getattr(F, name) is originals[name]

    def test_double_instrument_is_idempotent(self):
        ophooks.instrument()
        wrapped = F.linear
        ophooks.instrument()
        assert F.linear is wrapped  # not double-wrapped
        ophooks.uninstrument()

    def test_context_manager(self):
        original = F.gelu
        with ophooks.op_hooks():
            assert F.gelu is not original
        assert F.gelu is original

    def test_nested_context_does_not_unwrap_early(self):
        with ophooks.op_hooks():
            wrapped = F.linear
            with ophooks.op_hooks():
                pass
            assert F.linear is wrapped
        assert not ophooks.instrumented()


class TestAttribution:
    def _small_linear_call(self):
        x = nn.Tensor(np.ones((2, 3)))
        w = nn.Tensor(np.ones((3, 4)))
        return F.linear(x, w)

    def test_records_op_span_with_fused_tag(self):
        with ophooks.op_hooks():
            self._small_linear_call()
        totals = obs.span_totals()
        assert "op/linear[fused]" in totals
        assert totals["op/linear[fused]"].count == 1

    def test_reference_mode_tagged_ref(self):
        with ophooks.op_hooks(), nn.functional.fused_kernels(False):
            self._small_linear_call()
        assert "op/linear[ref]" in obs.span_totals()

    def test_nested_under_current_span(self):
        with obs.profiling(), ophooks.op_hooks():
            with obs.span("forward"):
                self._small_linear_call()
        assert "forward/op/linear[fused]" in obs.span_totals()

    def test_wrapped_output_matches_original(self):
        x = nn.Tensor(np.arange(12, dtype=np.float64).reshape(3, 4))
        w = nn.Tensor(np.ones((4, 2)))
        expected = F.linear(x, w).data
        with ophooks.op_hooks():
            wrapped = F.linear(x, w).data
        np.testing.assert_array_equal(wrapped, expected)

    def test_model_forward_records_hot_ops(self, ml_dataset, ml_split):
        from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig
        model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=0))
        trainer = HIRETrainer(model, ml_split, config=TrainerConfig(
            steps=2, batch_size=1, context_users=6, context_items=6, seed=0))
        with ophooks.op_hooks():
            trainer.train_step()
        recorded = set(obs.span_totals())
        # The HIRE hot path exercises at least these kernels.
        for op in ("linear", "layer_norm", "embedding_lookup",
                   "multi_head_attention_qkv", "masked_mse_loss"):
            assert f"op/{op}[fused]" in recorded
