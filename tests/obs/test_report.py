"""Report renderers on empty, zero-sample, and populated telemetry."""

from repro.obs import (
    MetricsRegistry,
    SLORule,
    Tracer,
    WindowedCounter,
    WindowedHistogram,
    evaluate_slos,
    render_metrics_table,
    render_slo_table,
    render_trace_table,
)


class TestMetricsTable:
    def test_empty_registry(self):
        assert render_metrics_table(MetricsRegistry()) == "(no metrics recorded)"

    def test_zero_sample_histogram_renders(self):
        reg = MetricsRegistry()
        reg.histogram("h")  # registered, never observed
        text = render_metrics_table(reg)
        assert "h" in text
        assert "histogram" in text

    def test_zero_sample_windowed_histogram_renders(self):
        reg = MetricsRegistry()
        reg.instrument("w", lambda name: WindowedHistogram(name))
        text = render_metrics_table(reg)
        assert "w-histogram" in text

    def test_windowed_counter_shows_window_total(self):
        reg = MetricsRegistry()
        counter = reg.instrument("w.req", lambda name: WindowedCounter(name))
        counter.inc(7)
        text = render_metrics_table(reg)
        assert "w-counter" in text
        assert "7" in text

    def test_mixed_kinds_share_the_table(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.gauge("g").set(1.0)
        reg.histogram("h").observe(2.0)
        reg.instrument("wh", lambda name: WindowedHistogram(name)).observe(3.0)
        text = render_metrics_table(reg)
        for name in ("c", "g", "h", "wh"):
            assert name in text


class TestTraceTable:
    def test_no_traces(self):
        assert render_trace_table(Tracer().stage_totals()) == \
            "(no traces recorded)"

    def test_stage_rows_and_share(self):
        tracer = Tracer()
        trace = tracer.begin()
        trace.mark("forward", 0.3)
        trace.mark("enqueue", 0.1)
        tracer.finish(trace, 0.4)
        text = render_trace_table(tracer.stage_totals())
        assert "forward" in text
        assert "75.0%" in text
        assert "total" in text

    def test_accepts_plain_dicts(self):
        totals = {"forward": {"count": 2, "total_seconds": 1.0,
                              "mean_seconds": 0.5, "max_seconds": 0.6}}
        text = render_trace_table(totals)
        assert "forward" in text


class TestSloTable:
    def test_no_rules(self):
        assert render_slo_table([]) == "(no slo rules)"

    def test_statuses_and_snapshots_both_render(self):
        rule = SLORule(name="lat", probe="p", objective="max", threshold=1.0)
        statuses = evaluate_slos([rule], {"p": (2.0, 2.0)})
        from_objects = render_slo_table(statuses)
        from_dicts = render_slo_table([s.snapshot() for s in statuses])
        assert from_objects == from_dicts
        assert "breach" in from_objects
        assert "<= 1" in from_objects

    def test_no_data_renders_dashes(self):
        rule = SLORule(name="hits", probe="p", objective="min", threshold=0.5)
        text = render_slo_table(evaluate_slos([rule], {}))
        assert "no_data" in text
        assert ">= 0.5" in text
