"""Metrics registry: counters, gauges, streaming histogram quantiles."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, metrics


class TestCounter:
    def test_increments(self):
        c = Counter("steps")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("steps").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("lr")
        g.set(1e-3)
        g.set(5e-4)
        assert g.value == pytest.approx(5e-4)


class TestHistogram:
    def test_exact_moments(self):
        h = Histogram("loss")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(4.0)
        assert h.mean == pytest.approx(7.0 / 3.0)

    def test_quantiles_track_numpy_percentile(self):
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=0.0, sigma=1.0, size=50_000)
        h = Histogram("x")
        for v in values:
            h.observe(v)
        for q in (0.50, 0.90, 0.99):
            true = float(np.percentile(values, q * 100))
            est = h.quantile(q)
            # Log-bucketed estimate: bounded relative error ~ growth - 1.
            assert est == pytest.approx(true, rel=0.10)

    def test_memory_is_bounded(self):
        rng = np.random.default_rng(0)
        h = Histogram("x")
        for v in rng.uniform(1e-6, 1e6, size=20_000):
            h.observe(v)
        # Bucket count scales with the value *range* (log), not the sample
        # count: 12 decades at ~5% resolution is ~570 buckets.
        assert h.num_buckets() < 700

    def test_nonpositive_values_underflow(self):
        h = Histogram("x")
        h.observe(-1.0)
        h.observe(0.0)
        h.observe(3.0)
        assert h.count == 3
        assert h.min == pytest.approx(-1.0)
        assert h.quantile(0.0) == pytest.approx(-1.0)
        assert h.quantile(1.0) == pytest.approx(3.0)

    def test_empty_quantile_is_zero(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_growth_validated(self):
        with pytest.raises(ValueError):
            Histogram("x", growth=1.0)

    def test_percentiles_keys(self):
        h = Histogram("x")
        h.observe(1.0)
        assert set(h.percentiles()) == {"p50", "p90", "p99"}


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 0.5}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert "p99" in snap["h"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = metrics.set_registry(fresh)
        try:
            assert metrics.get_registry() is fresh
        finally:
            metrics.set_registry(previous)
