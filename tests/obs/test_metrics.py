"""Metrics registry: counters, gauges, streaming histogram quantiles."""

import numpy as np
import pytest

from repro.obs import Counter, Gauge, Histogram, MetricsRegistry, metrics


class TestCounter:
    def test_increments(self):
        c = Counter("steps")
        c.inc()
        c.inc(2.5)
        assert c.value == pytest.approx(3.5)

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("steps").inc(-1)


class TestGauge:
    def test_last_write_wins(self):
        g = Gauge("lr")
        g.set(1e-3)
        g.set(5e-4)
        assert g.value == pytest.approx(5e-4)


class TestHistogram:
    def test_exact_moments(self):
        h = Histogram("loss")
        for v in (1.0, 2.0, 4.0):
            h.observe(v)
        assert h.count == 3
        assert h.sum == pytest.approx(7.0)
        assert h.min == pytest.approx(1.0)
        assert h.max == pytest.approx(4.0)
        assert h.mean == pytest.approx(7.0 / 3.0)

    def test_quantiles_track_numpy_percentile(self):
        rng = np.random.default_rng(42)
        values = rng.lognormal(mean=0.0, sigma=1.0, size=50_000)
        h = Histogram("x")
        for v in values:
            h.observe(v)
        for q in (0.50, 0.90, 0.99):
            true = float(np.percentile(values, q * 100))
            est = h.quantile(q)
            # Log-bucketed estimate: bounded relative error ~ growth - 1.
            assert est == pytest.approx(true, rel=0.10)

    def test_memory_is_bounded(self):
        rng = np.random.default_rng(0)
        h = Histogram("x")
        for v in rng.uniform(1e-6, 1e6, size=20_000):
            h.observe(v)
        # Bucket count scales with the value *range* (log), not the sample
        # count: 12 decades at ~5% resolution is ~570 buckets.
        assert h.num_buckets() < 700

    def test_nonpositive_values_underflow(self):
        h = Histogram("x")
        h.observe(-1.0)
        h.observe(0.0)
        h.observe(3.0)
        assert h.count == 3
        assert h.min == pytest.approx(-1.0)
        assert h.quantile(0.0) == pytest.approx(-1.0)
        assert h.quantile(1.0) == pytest.approx(3.0)

    def test_empty_quantile_is_zero(self):
        assert Histogram("x").quantile(0.5) == 0.0

    def test_quantile_bounds_validated(self):
        with pytest.raises(ValueError):
            Histogram("x").quantile(1.5)

    def test_growth_validated(self):
        with pytest.raises(ValueError):
            Histogram("x", growth=1.0)

    def test_percentiles_keys(self):
        h = Histogram("x")
        h.observe(1.0)
        assert set(h.percentiles()) == {"p50", "p90", "p99"}


class TestLockedReads:
    def test_counter_read_under_writer_contention(self):
        import threading
        c = Counter("c")

        def writer():
            for _ in range(5_000):
                c.inc()

        threads = [threading.Thread(target=writer) for _ in range(4)]
        for t in threads:
            t.start()
        while any(t.is_alive() for t in threads):
            value = c.value  # must never see torn state
            assert 0.0 <= value <= 20_000.0
        for t in threads:
            t.join()
        assert c.value == 20_000.0

    def test_gauge_read_is_locked(self):
        g = Gauge("g")
        g.set(1.0)
        assert g.value == 1.0


class TestHistogramMerge:
    def test_merge_combines_counts_and_moments(self):
        a, b = Histogram("a"), Histogram("b")
        for v in (1.0, 2.0):
            a.observe(v)
        for v in (4.0, 8.0):
            b.observe(v)
        a.merge(b)
        assert a.count == 4
        assert a.sum == pytest.approx(15.0)
        assert a.min == pytest.approx(1.0)
        assert a.max == pytest.approx(8.0)
        # b is untouched.
        assert b.count == 2

    def test_merge_preserves_quantile_resolution(self):
        rng = np.random.default_rng(7)
        values = rng.lognormal(size=20_000)
        whole, a, b = Histogram("w"), Histogram("a"), Histogram("b")
        for i, v in enumerate(values):
            whole.observe(v)
            (a if i % 2 else b).observe(v)
        a.merge(b)
        for q in (0.5, 0.9, 0.99):
            # Merged shards agree with single-histogram ingestion exactly:
            # bucket merge is lossless addition, not re-sampling.
            assert a.quantile(q) == pytest.approx(whole.quantile(q))

    def test_merge_underflow_bucket(self):
        a, b = Histogram("a"), Histogram("b")
        b.observe(-2.0)
        b.observe(3.0)
        a.merge(b)
        assert a.count == 2
        assert a.quantile(0.0) == pytest.approx(-2.0)

    def test_merge_empty_is_noop(self):
        a = Histogram("a")
        a.observe(1.0)
        a.merge(Histogram("b"))
        assert a.count == 1

    def test_merge_into_empty(self):
        a, b = Histogram("a"), Histogram("b")
        b.observe(5.0)
        assert a.merge(b) is a
        assert a.count == 1
        assert a.quantile(0.5) == pytest.approx(5.0, rel=0.1)

    def test_merge_growth_mismatch_raises(self):
        with pytest.raises(ValueError):
            Histogram("a", growth=1.05).merge(Histogram("b", growth=1.1))

    def test_merge_type_checked(self):
        with pytest.raises(TypeError):
            Histogram("a").merge("not a histogram")


class TestRegistry:
    def test_same_name_same_instrument(self):
        reg = MetricsRegistry()
        assert reg.counter("a") is reg.counter("a")

    def test_kind_conflict_raises(self):
        reg = MetricsRegistry()
        reg.counter("a")
        with pytest.raises(TypeError):
            reg.gauge("a")

    def test_snapshot_shape(self):
        reg = MetricsRegistry()
        reg.counter("c").inc(2)
        reg.gauge("g").set(0.5)
        reg.histogram("h").observe(1.0)
        snap = reg.snapshot()
        assert snap["c"] == {"type": "counter", "value": 2.0}
        assert snap["g"] == {"type": "gauge", "value": 0.5}
        assert snap["h"]["type"] == "histogram"
        assert snap["h"]["count"] == 1
        assert "p99" in snap["h"]

    def test_reset(self):
        reg = MetricsRegistry()
        reg.counter("c").inc()
        reg.reset()
        assert reg.names() == []

    def test_instrument_registers_once(self):
        reg = MetricsRegistry()
        calls = []

        def factory(name):
            calls.append(name)
            return Histogram(name)

        first = reg.instrument("x", factory)
        second = reg.instrument("x", factory)
        assert first is second
        assert calls == ["x"]
        assert "x" in reg.snapshot()

    def test_default_registry_swap(self):
        fresh = MetricsRegistry()
        previous = metrics.set_registry(fresh)
        try:
            assert metrics.get_registry() is fresh
        finally:
            metrics.set_registry(previous)
