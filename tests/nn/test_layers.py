"""Layer semantics: Linear, Embedding, LayerNorm, Dropout, MLP."""

import numpy as np
import pytest

from repro import nn


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestLinear:
    def test_affine_map(self, rng):
        layer = nn.Linear(3, 2, rng)
        x = rng.normal(size=(5, 3))
        out = layer(nn.Tensor(x))
        np.testing.assert_allclose(out.data, x @ layer.weight.data + layer.bias.data)

    def test_no_bias(self, rng):
        layer = nn.Linear(3, 2, rng, bias=False)
        assert layer.bias is None
        assert len(list(layer.parameters())) == 1

    def test_batched_input(self, rng):
        layer = nn.Linear(4, 2, rng)
        out = layer(nn.Tensor(rng.normal(size=(2, 3, 4))))
        assert out.shape == (2, 3, 2)

    def test_gradients_flow(self, rng):
        layer = nn.Linear(3, 2, rng)
        layer(nn.Tensor(rng.normal(size=(5, 3)))).sum().backward()
        assert layer.weight.grad is not None
        assert layer.bias.grad is not None
        np.testing.assert_allclose(layer.bias.grad, np.full(2, 5.0))


class TestEmbedding:
    def test_lookup_shape(self, rng):
        table = nn.Embedding(10, 4, rng)
        out = table(np.array([1, 5, 5]))
        assert out.shape == (3, 4)
        np.testing.assert_array_equal(out.data[1], out.data[2])

    def test_out_of_range_raises(self, rng):
        table = nn.Embedding(10, 4, rng)
        with pytest.raises(IndexError):
            table(np.array([10]))
        with pytest.raises(IndexError):
            table(np.array([-1]))

    def test_gradient_reaches_rows(self, rng):
        table = nn.Embedding(5, 3, rng)
        table(np.array([0, 0, 4])).sum().backward()
        grad = table.weight.grad
        np.testing.assert_allclose(grad[0], np.full(3, 2.0))
        np.testing.assert_allclose(grad[4], np.ones(3))
        np.testing.assert_allclose(grad[1], np.zeros(3))


class TestLayerNorm:
    def test_normalises_last_axis(self, rng):
        ln = nn.LayerNorm(6)
        x = rng.normal(loc=5.0, scale=3.0, size=(4, 6))
        out = ln(nn.Tensor(x)).data
        np.testing.assert_allclose(out.mean(axis=-1), np.zeros(4), atol=1e-10)
        np.testing.assert_allclose(out.std(axis=-1), np.ones(4), atol=1e-4)

    def test_learnable_affine(self, rng):
        ln = nn.LayerNorm(4)
        ln.gamma.data = np.full(4, 2.0)
        ln.beta.data = np.full(4, 1.0)
        out = ln(nn.Tensor(rng.normal(size=(3, 4)))).data
        np.testing.assert_allclose(out.mean(axis=-1), np.ones(3), atol=1e-10)

    def test_gradcheck(self, rng):
        from tests.nn.test_tensor import check_grad

        ln = nn.LayerNorm(5)
        check_grad(lambda t: ln(t) * 2.0, rng.normal(size=(3, 5)), tol=1e-5)


class TestDropout:
    def test_invalid_rate(self, rng):
        with pytest.raises(ValueError):
            nn.Dropout(1.0, rng)
        with pytest.raises(ValueError):
            nn.Dropout(-0.1, rng)

    def test_eval_passthrough(self, rng):
        drop = nn.Dropout(0.5, rng)
        drop.eval()
        x = rng.normal(size=(10, 10))
        np.testing.assert_array_equal(drop(nn.Tensor(x)).data, x)

    def test_train_zeroes_some(self, rng):
        drop = nn.Dropout(0.5, rng)
        out = drop(nn.Tensor(np.ones((50, 50)))).data
        assert (out == 0).any()
        assert (out != 0).any()


class TestMLP:
    def test_shapes(self, rng):
        mlp = nn.MLP([4, 8, 2], rng)
        assert mlp(nn.Tensor(rng.normal(size=(6, 4)))).shape == (6, 2)

    def test_needs_two_dims(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([4], rng)

    def test_unknown_activation(self, rng):
        with pytest.raises(ValueError):
            nn.MLP([4, 2], rng, activation="swish")

    def test_final_activation_flag(self, rng):
        bounded = nn.MLP([3, 3], rng, activation="sigmoid", final_activation=True)
        out = bounded(nn.Tensor(rng.normal(scale=10, size=(5, 3)))).data
        assert (out > 0).all() and (out < 1).all()

    def test_all_activations_run(self, rng):
        for act in ("relu", "gelu", "sigmoid", "tanh"):
            mlp = nn.MLP([3, 4, 2], rng, activation=act)
            assert mlp(nn.Tensor(rng.normal(size=(2, 3)))).shape == (2, 2)

    def test_trains_to_fit_linear_target(self, rng):
        mlp = nn.MLP([2, 16, 1], rng)
        x = rng.normal(size=(64, 2))
        y = (x[:, :1] * 2.0 - x[:, 1:] * 0.5)
        optimizer = nn.Adam(mlp.parameters(), lr=1e-2)
        first = None
        for _ in range(200):
            optimizer.zero_grad()
            loss = nn.functional.mse_loss(mlp(nn.Tensor(x)), nn.Tensor(y))
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.1
