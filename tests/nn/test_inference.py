"""The graph-free inference engine: bitwise identity, caching, allocations.

The engine's contract is strict: running a HIRE forward through
:mod:`repro.nn.inference` must produce the *same bytes* as the ``no_grad``
fused Tensor path, at both dtypes, for every ablation — and, after warmup,
it must not allocate.  These tests pin all of it, plus the plan cache's
invalidation triggers (shape, ratings dtype, generation bumps from registry
hot swaps).
"""

import dataclasses
import gc
import tracemalloc

import numpy as np
import pytest

from repro import nn
from repro.core import build_context
from repro.core.model import HIRE, HIREConfig
from repro.data import RatingGraph, movielens_like
from repro.nn import inference
from repro.serve.registry import ModelRegistry


@pytest.fixture(scope="module")
def dataset():
    return movielens_like(num_users=50, num_items=40, seed=3)


@pytest.fixture(scope="module")
def graph(dataset):
    return RatingGraph(dataset.ratings, dataset.num_users, dataset.num_items)


def make_contexts(graph, n=8, m=6):
    rng = np.random.default_rng(11)
    first = build_context(graph, np.arange(n), np.arange(m), rng,
                          reveal_fraction=0.3)
    second = build_context(graph, np.arange(5, 5 + n), np.arange(3, 3 + m),
                           rng, reveal_fraction=0.2)
    return first, second


def make_model(dataset, **flags):
    return HIRE(dataset, HIREConfig(num_blocks=2, num_heads=2, attr_dim=4,
                                    **flags))


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("flags", [
    {},
    {"learned_mask_token": False},
    {"use_user": False},
    {"use_item": False},
    {"use_attr": False},
    {"use_layer_norm": False},
    {"use_residual": False},
])
def test_engine_bitwise_identical_to_tensor_path(dataset, graph, dtype, flags):
    with nn.dtype_policy(dtype):
        model = make_model(dataset, **flags)
        model.eval()
        ctx, ctx2 = make_contexts(graph)
        with nn.no_grad():
            ref = model.forward(ctx).data.copy()
            ref_many = model.forward_many([ctx, ctx2]).data.copy()
        out = inference.forward_inference(model, ctx).copy()
        out_many = inference.forward_inference_many(model, [ctx, ctx2]).copy()
    assert ref.tobytes() == out.tobytes()
    assert ref_many.tobytes() == out_many.tobytes()


def test_predict_routes_through_engine_and_escape_hatch(dataset, graph):
    model = make_model(dataset)
    ctx, ctx2 = make_contexts(graph)
    engine = model.predict(ctx)
    tensor_path = model.predict(ctx, use_inference_engine=False)
    assert engine.tobytes() == tensor_path.tobytes()
    engine_many = model.predict_many([ctx, ctx2])
    tensor_many = model.predict_many([ctx, ctx2], use_inference_engine=False)
    assert engine_many.tobytes() == tensor_many.tobytes()
    # predict() copies out of the workspace: results must survive more calls.
    again = model.predict(ctx2)
    assert engine.tobytes() == model.predict(ctx).tobytes()
    assert again.tobytes() == model.predict(ctx2).tobytes()


def test_reference_kernels_fall_back_to_tensor_path(dataset, graph):
    model = make_model(dataset)
    ctx, _ = make_contexts(graph)
    expected = model.predict(ctx, use_inference_engine=False)
    nn.functional.set_fused_kernels(False)
    try:
        assert not inference.engine_supported(model)
        out = model.predict(ctx)  # silently takes the Tensor path
    finally:
        nn.functional.set_fused_kernels(True)
    np.testing.assert_allclose(out, expected, rtol=1e-12, atol=1e-12)


def test_capture_attention_falls_back(dataset):
    model = make_model(dataset)
    assert inference.engine_supported(model)
    model.capture_attention(True)
    assert not inference.engine_supported(model)
    model.capture_attention(False)
    assert inference.engine_supported(model)


def test_plan_cache_hits_and_shape_invalidation(dataset, graph):
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    ctx, _ = make_contexts(graph)
    before = inference.cache_stats()
    inference.forward_inference(model, ctx)
    after_first = inference.cache_stats()
    assert after_first["misses"] == before["misses"] + 1
    assert after_first["plans"] == before["plans"] + 1
    inference.forward_inference(model, ctx)
    after_second = inference.cache_stats()
    assert after_second["hits"] == after_first["hits"] + 1
    assert after_second["misses"] == after_first["misses"]

    # A new shape builds a second plan instead of reusing the first.
    rng = np.random.default_rng(5)
    wider = build_context(graph, np.arange(8), np.arange(9), rng,
                          reveal_fraction=0.3)
    inference.forward_inference(model, wider)
    after_wider = inference.cache_stats()
    assert after_wider["misses"] == after_second["misses"] + 1
    assert after_wider["plans"] == after_second["plans"] + 1
    assert after_wider["workspace_bytes"] > 0


def test_ratings_dtype_change_rebuilds_plan(dataset, graph):
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    ctx, _ = make_contexts(graph)
    out64 = inference.forward_inference(model, ctx).copy()
    cast = dataclasses.replace(ctx, ratings=ctx.ratings.astype(np.float32))
    before = inference.cache_stats()
    out32 = inference.forward_inference(model, cast)
    after = inference.cache_stats()
    assert after["misses"] == before["misses"] + 1
    # Same revealed integer levels -> same embeddings -> same scores.
    assert out64.tobytes() == out32.tobytes()


def test_bump_generation_invalidates_all_plans(dataset, graph):
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    ctx, _ = make_contexts(graph)
    inference.forward_inference(model, ctx)
    assert inference.cache_stats()["plans"] == 1
    inference.bump_generation()
    before = inference.cache_stats()
    inference.forward_inference(model, ctx)
    after = inference.cache_stats()
    assert after["misses"] == before["misses"] + 1


def test_registry_hot_swap_bumps_generation(dataset):
    registry = ModelRegistry(dataset)
    gen = inference.generation()
    registry.add("a", make_model(dataset))
    assert inference.generation() > gen
    gen = inference.generation()
    registry.add("b", make_model(dataset), activate=False)
    registry.activate("b")
    assert inference.generation() > gen
    gen = inference.generation()
    registry.activate("a")
    registry.unregister("b")
    assert inference.generation() > gen


def test_weight_updates_flow_without_rebuild(dataset, graph):
    """Plans read parameters through ``.data`` at run time, so a
    ``load_state_dict`` hot update changes scores without a cache miss."""
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    ctx, _ = make_contexts(graph)
    first = inference.forward_inference(model, ctx).copy()
    state = {name: param.data * 1.5
             for name, param in model.named_parameters()}
    model.load_state_dict(state)
    before = inference.cache_stats()
    second = inference.forward_inference(model, ctx).copy()
    after = inference.cache_stats()
    assert after["hits"] == before["hits"] + 1
    assert first.tobytes() != second.tobytes()
    with nn.no_grad():
        expected = model.forward(ctx).data
    assert second.tobytes() == expected.tobytes()


def test_zero_steady_state_allocations(dataset, graph):
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    ctx, ctx2 = make_contexts(graph)
    # Warm up: builds the plans and touches every lazily-created metric.
    for _ in range(3):
        inference.forward_inference(model, ctx)
        inference.forward_inference_many(model, [ctx, ctx2])
    gc.collect()
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(20):
        inference.forward_inference(model, ctx)
        inference.forward_inference_many(model, [ctx, ctx2])
    gc.collect()
    snap = tracemalloc.take_snapshot()
    tracemalloc.stop()
    growth = sum(stat.size_diff for stat in snap.compare_to(base, "filename")
                 if "repro" in (stat.traceback[0].filename or ""))
    # 40 forwards through a steady-state engine: no per-call ndarray may
    # survive (the 1 KiB allowance covers interned ints and counter churn).
    assert growth < 1024, f"steady-state engine leaked {growth} bytes"


def test_cache_stats_shape():
    stats = inference.cache_stats()
    assert set(stats) == {"plans", "generation", "workspace_bytes",
                          "hits", "misses"}


# ---------------------------------------------------------------------- #
# Padded packing
# ---------------------------------------------------------------------- #
def make_mixed_contexts(graph):
    """Contexts of several (n, m) shapes, all fitting a (8, 8) bucket."""
    rng = np.random.default_rng(29)
    shapes = [(8, 6), (6, 5), (8, 6), (5, 8), (7, 4), (4, 6)]
    contexts = []
    for index, (n, m) in enumerate(shapes):
        contexts.append(build_context(
            graph, np.arange(index, index + n), np.arange(index, index + m),
            rng, reveal_fraction=0.3))
    return contexts


@pytest.mark.parametrize("dtype", [np.float64, np.float32])
@pytest.mark.parametrize("flags", [
    {},
    {"learned_mask_token": False},
    {"use_user": False},
    {"use_item": False},
    {"use_attr": False},
    {"use_layer_norm": False},
    {"use_residual": False},
])
def test_packed_identical_to_unpadded(dataset, graph, dtype, flags):
    """Padded packing is exact: every real row of a packed forward matches
    the solo unpadded forward — bitwise at float64, within the documented
    float32 tolerance (see docs/nn_substrate.md; empirically bitwise on
    this box at float32 too)."""
    with nn.dtype_policy(dtype):
        model = make_model(dataset, **flags)
        model.eval()
        contexts = make_mixed_contexts(graph)
        refs = [inference.forward_inference(model, c).copy() for c in contexts]
        outputs, slots = inference.forward_inference_packed(
            model, contexts, 8, 8)
        got = [outputs[slots[i]][:c.n, :c.m].copy()
               for i, c in enumerate(contexts)]
    for ref, out in zip(refs, got):
        if dtype is np.float64:
            assert ref.tobytes() == out.tobytes()
        else:
            np.testing.assert_allclose(out, ref, rtol=2e-6, atol=1e-6)


def test_packed_exact_shapes_match_forward_many(dataset, graph):
    """When every context already fills the plan shape, packing degrades to
    the plain stacked forward — same bytes."""
    model = make_model(dataset)
    model.eval()
    ctx, ctx2 = make_contexts(graph)
    many = inference.forward_inference_many(model, [ctx, ctx2]).copy()
    outputs, slots = inference.forward_inference_packed(
        model, [ctx, ctx2], ctx.n, ctx.m)
    assert slots == [0, 1]
    assert outputs.tobytes() == many.tobytes()


def test_packed_rejects_oversized_and_empty(dataset, graph):
    model = make_model(dataset)
    model.eval()
    ctx, _ = make_contexts(graph)
    with pytest.raises(ValueError):
        inference.forward_inference_packed(model, [], 8, 8)
    with pytest.raises(ValueError):
        inference.forward_inference_packed(model, [ctx], ctx.n - 1, ctx.m)


def test_packed_zero_steady_state_allocations(dataset, graph):
    """The tracemalloc pin holds for the packed path too: once the plan and
    its pack program exist, repeated packed forwards allocate nothing."""
    inference.clear_cache()
    model = make_model(dataset)
    model.eval()
    contexts = make_mixed_contexts(graph)
    store = inference.EmbeddingStore(model)
    for _ in range(3):
        inference.forward_inference_packed(model, contexts, 8, 8,
                                           embed_store=store)
    gc.collect()
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(20):
        inference.forward_inference_packed(model, contexts, 8, 8,
                                           embed_store=store)
    gc.collect()
    snap = tracemalloc.take_snapshot()
    tracemalloc.stop()
    growth = sum(stat.size_diff for stat in snap.compare_to(base, "filename")
                 if "repro" in (stat.traceback[0].filename or ""))
    assert growth < 1024, f"steady-state packed engine leaked {growth} bytes"


# ---------------------------------------------------------------------- #
# Warm-entity embedding store
# ---------------------------------------------------------------------- #
class TestEmbeddingStore:
    def test_store_backed_scores_are_bitwise_identical(self, dataset, graph):
        model = make_model(dataset)
        model.eval()
        ctx, ctx2 = make_contexts(graph)
        plain = inference.forward_inference(model, ctx).copy()
        plain_many = inference.forward_inference_many(model, [ctx, ctx2]).copy()
        store = inference.EmbeddingStore(model)
        warm = inference.forward_inference(model, ctx, embed_store=store).copy()
        warm_many = inference.forward_inference_many(
            model, [ctx, ctx2], embed_store=store).copy()
        assert plain.tobytes() == warm.tobytes()
        assert plain_many.tobytes() == warm_many.tobytes()

    def test_hits_and_misses_accumulate(self, dataset, graph):
        model = make_model(dataset)
        model.eval()
        ctx, _ = make_contexts(graph)
        store = inference.EmbeddingStore(model)
        inference.forward_inference(model, ctx, embed_store=store)
        first = store.stats()
        assert first["misses"] > 0
        inference.forward_inference(model, ctx, embed_store=store)
        second = store.stats()
        assert second["misses"] == first["misses"]  # all rows warm now
        assert second["hits"] > first["hits"]

    def test_generation_bump_invalidates(self, dataset):
        model = make_model(dataset)
        store = inference.EmbeddingStore(model)
        assert store.valid_for(model)
        inference.bump_generation()
        assert not store.valid_for(model)
        assert not store.valid_for(make_model(dataset))  # wrong model too

    def test_registry_hot_swap_invalidates(self, dataset):
        model = make_model(dataset)
        store = inference.EmbeddingStore(model)
        registry = ModelRegistry(dataset)
        registry.add("a", make_model(dataset))  # bumps the generation
        assert not store.valid_for(model)

    def test_invalidate_entities_refills_only_touched_rows(self, dataset,
                                                           graph):
        """Per-entity invalidation: the swept rows go back to misses, every
        other row keeps serving hits, and scores stay bitwise identical."""
        model = make_model(dataset)
        model.eval()
        ctx, _ = make_contexts(graph)
        plain = inference.forward_inference(model, ctx).copy()
        store = inference.EmbeddingStore(model)
        inference.forward_inference(model, ctx, embed_store=store)
        warm_users = np.flatnonzero(store._user_valid)
        warm_items = np.flatnonzero(store._item_valid)
        assert warm_users.size > 1 and warm_items.size > 1
        store.invalidate_entities(warm_users[:1], warm_items[:1])
        assert not store._user_valid[warm_users[0]]
        assert not store._item_valid[warm_items[0]]
        assert store._user_valid[warm_users[1:]].all()
        assert store._item_valid[warm_items[1:]].all()
        baseline = store.stats()
        out = inference.forward_inference(model, ctx, embed_store=store).copy()
        after = store.stats()
        assert out.tobytes() == plain.tobytes()
        # Only the swept rows were rebuilt; the rest were warm hits.
        assert after["misses"] > baseline["misses"]
        assert after["hits"] > baseline["hits"]

    def test_invalidate_entities_accepts_empty(self, dataset):
        store = inference.EmbeddingStore(make_model(dataset))
        store.invalidate_entities(np.array([], dtype=np.int64),
                                  np.array([], dtype=np.int64))

    def test_stale_rows_are_not_reused_after_weight_update(self, dataset, graph):
        """A store outliving a weight hot-update must be discarded by the
        caller; ``valid_for`` only tracks generation bumps, so registry-less
        updates are the caller's responsibility — pin the recipe."""
        model = make_model(dataset)
        model.eval()
        ctx, _ = make_contexts(graph)
        store = inference.EmbeddingStore(model)
        inference.forward_inference(model, ctx, embed_store=store)
        state = {name: param.data * 2.0
                 for name, param in model.named_parameters()}
        model.load_state_dict(state)
        fresh = inference.EmbeddingStore(model)
        out = inference.forward_inference(model, ctx, embed_store=fresh).copy()
        expected = inference.forward_inference(model, ctx).copy()
        assert out.tobytes() == expected.tobytes()
