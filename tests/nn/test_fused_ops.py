"""Fused-kernel guarantees: finite-difference gradchecks for every fused op,
float64 fused-vs-reference equivalence at <= 1e-10, packed-QKV checkpoint
compatibility, and the float32 dtype policy."""

import numpy as np
import pytest

import repro.nn.functional as F
from repro import nn
from repro.nn import MultiHeadSelfAttention, Parameter, Tensor

from .test_tensor import check_grad

EQ_TOL = 1e-10


@pytest.fixture
def rng():
    return np.random.default_rng(0)


def _clone_param(t: Tensor) -> Tensor:
    return Tensor(t.data.copy(), requires_grad=True)


class TestGradchecks:
    def test_layer_norm_wrt_input(self, rng):
        gamma = Tensor(rng.normal(size=(6,)))
        beta = Tensor(rng.normal(size=(6,)))
        check_grad(lambda t: F.layer_norm(t, gamma, beta),
                   rng.normal(size=(3, 4, 6)), tol=1e-5)

    def test_layer_norm_wrt_gamma_beta(self, rng):
        x = Tensor(rng.normal(size=(5, 6)))
        check_grad(lambda g: F.layer_norm(x, g, Tensor(np.zeros(6))),
                   rng.normal(size=(6,)), tol=1e-5)
        check_grad(lambda b: F.layer_norm(x, Tensor(np.ones(6)), b),
                   rng.normal(size=(6,)), tol=1e-5)

    def test_gelu(self, rng):
        check_grad(lambda t: F.gelu(t), rng.normal(size=(4, 3)), tol=1e-5)

    def test_linear_wrt_input(self, rng):
        w = Tensor(rng.normal(size=(4, 3)))
        b = Tensor(rng.normal(size=(3,)))
        check_grad(lambda t: F.linear(t, w, b), rng.normal(size=(2, 5, 4)), tol=1e-5)

    def test_linear_wrt_weight_and_bias(self, rng):
        x = Tensor(rng.normal(size=(5, 4)))
        b = Tensor(rng.normal(size=(3,)))
        check_grad(lambda w: F.linear(x, w, b), rng.normal(size=(4, 3)), tol=1e-5)
        w = Tensor(rng.normal(size=(4, 3)))
        check_grad(lambda bb: F.linear(x, w, bb), rng.normal(size=(3,)), tol=1e-5)

    def test_scaled_dot_product_attention_each_input(self, rng):
        q0 = rng.normal(size=(2, 5, 4))
        k0 = rng.normal(size=(2, 5, 4))
        v0 = rng.normal(size=(2, 5, 4))
        check_grad(lambda q: F.scaled_dot_product_attention(q, Tensor(k0), Tensor(v0)),
                   q0, tol=1e-5)
        check_grad(lambda k: F.scaled_dot_product_attention(Tensor(q0), k, Tensor(v0)),
                   k0, tol=1e-5)
        check_grad(lambda v: F.scaled_dot_product_attention(Tensor(q0), Tensor(k0), v),
                   v0, tol=1e-5)

    def test_multi_head_attention_qkv(self, rng):
        # (batch, t, 3d) packed projection, d = 4, 2 heads.
        check_grad(lambda t: F.multi_head_attention_qkv(t, num_heads=2),
                   rng.normal(size=(2, 3, 12)), tol=1e-5)

    def test_gradcheck_through_packed_mhsa(self, rng):
        mhsa = MultiHeadSelfAttention(4, 2, rng)
        check_grad(lambda t: mhsa(t), rng.normal(size=(3, 4)), tol=1e-5)


class TestFusedVsReferenceEquivalence:
    def test_layer_norm(self, rng):
        x = rng.normal(size=(3, 7, 6))
        gamma, beta = rng.normal(size=(6,)), rng.normal(size=(6,))

        fused_in = Tensor(x, requires_grad=True)
        fused = F.layer_norm(fused_in, g1 := Tensor(gamma, requires_grad=True),
                             b1 := Tensor(beta, requires_grad=True))
        ref_in = Tensor(x, requires_grad=True)
        ref = F.layer_norm_reference(ref_in, g2 := Tensor(gamma, requires_grad=True),
                                     b2 := Tensor(beta, requires_grad=True))
        np.testing.assert_allclose(fused.data, ref.data, atol=EQ_TOL, rtol=0)

        upstream = rng.normal(size=fused.shape)
        (fused * Tensor(upstream)).sum().backward()
        (ref * Tensor(upstream)).sum().backward()
        np.testing.assert_allclose(fused_in.grad, ref_in.grad, atol=EQ_TOL, rtol=0)
        np.testing.assert_allclose(g1.grad, g2.grad, atol=EQ_TOL, rtol=0)
        np.testing.assert_allclose(b1.grad, b2.grad, atol=EQ_TOL, rtol=0)

    def test_gelu(self, rng):
        x = rng.normal(size=(5, 4))
        a = Tensor(x, requires_grad=True)
        b = Tensor(x, requires_grad=True)
        fused, ref = F.gelu(a), F.gelu_reference(b)
        np.testing.assert_allclose(fused.data, ref.data, atol=EQ_TOL, rtol=0)
        fused.sum().backward()
        ref.sum().backward()
        np.testing.assert_allclose(a.grad, b.grad, atol=EQ_TOL, rtol=0)

    def test_linear(self, rng):
        x = rng.normal(size=(3, 5, 4))
        w, bias = rng.normal(size=(4, 2)), rng.normal(size=(2,))
        a = Tensor(x, requires_grad=True)
        w1, b1 = Tensor(w, requires_grad=True), Tensor(bias, requires_grad=True)
        fused = F.linear(a, w1, b1)
        c = Tensor(x, requires_grad=True)
        w2, b2 = Tensor(w, requires_grad=True), Tensor(bias, requires_grad=True)
        ref = c @ w2 + b2
        np.testing.assert_allclose(fused.data, ref.data, atol=EQ_TOL, rtol=0)
        fused.sum().backward()
        ref.sum().backward()
        np.testing.assert_allclose(a.grad, c.grad, atol=EQ_TOL, rtol=0)
        np.testing.assert_allclose(w1.grad, w2.grad, atol=EQ_TOL, rtol=0)
        np.testing.assert_allclose(b1.grad, b2.grad, atol=EQ_TOL, rtol=0)

    def test_packed_attention_forward_and_grads(self, rng):
        """Fused MHSA path matches the decomposed reference path."""
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(3, 5, 8))

        with F.fused_kernels(True):
            out_fused = mhsa(Tensor(x))
            mhsa.zero_grad()
            mhsa(Tensor(x)).sum().backward()
            grad_fused = mhsa.w_qkv.grad.copy()
        with F.fused_kernels(False):
            out_ref = mhsa(Tensor(x))
            mhsa.zero_grad()
            mhsa(Tensor(x)).sum().backward()
            grad_ref = mhsa.w_qkv.grad.copy()

        np.testing.assert_allclose(out_fused.data, out_ref.data, atol=EQ_TOL, rtol=0)
        np.testing.assert_allclose(grad_fused, grad_ref, atol=EQ_TOL, rtol=0)

    def test_sdpa_matches_manual_composition(self, rng):
        q = rng.normal(size=(2, 4, 6))
        k = rng.normal(size=(2, 4, 6))
        v = rng.normal(size=(2, 4, 6))
        fused = F.scaled_dot_product_attention(Tensor(q), Tensor(k), Tensor(v))
        scores = (Tensor(q) @ Tensor(k).swapaxes(-1, -2)) * (1.0 / np.sqrt(6.0))
        ref = F.softmax(scores, axis=-1) @ Tensor(v)
        np.testing.assert_allclose(fused.data, ref.data, atol=EQ_TOL, rtol=0)


class TestCheckpointCompatibility:
    def test_old_three_matrix_state_dict_loads(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        d = mhsa.embed_dim
        state = mhsa.state_dict()
        # Rewrite as a pre-packing checkpoint: separate W_q / W_k / W_v.
        old_state = {
            "w_query.weight": state["w_qkv"][:, :d],
            "w_key.weight": state["w_qkv"][:, d:2 * d],
            "w_value.weight": state["w_qkv"][:, 2 * d:],
            "w_output.weight": state["w_output.weight"],
        }
        fresh = MultiHeadSelfAttention(8, 2, np.random.default_rng(99))
        fresh.load_state_dict(old_state)
        np.testing.assert_array_equal(fresh.w_qkv.data, mhsa.w_qkv.data)

    def test_old_checkpoint_forward_is_bitwise_identical(self, rng, tmp_path):
        """Loading a pre-PR (three-matrix) checkpoint must give bitwise the
        same float64 forward output as the natively packed weights."""
        mhsa = MultiHeadSelfAttention(16, 4, rng)
        d = mhsa.embed_dim
        state = mhsa.state_dict()
        old_state = {
            "w_query.weight": state["w_qkv"][:, :d],
            "w_key.weight": state["w_qkv"][:, d:2 * d],
            "w_value.weight": state["w_qkv"][:, 2 * d:],
            "w_output.weight": state["w_output.weight"],
        }
        nn.save_checkpoint(tmp_path / "old.npz", old_state)
        loaded_state, _ = nn.load_checkpoint(tmp_path / "old.npz")
        restored = MultiHeadSelfAttention(16, 4, np.random.default_rng(123))
        restored.load_state_dict(loaded_state)

        x = Tensor(rng.normal(size=(3, 7, 16)))
        np.testing.assert_array_equal(restored(x).data, mhsa(x).data)

    def test_round_trip_new_format(self, rng, tmp_path):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        nn.save_module(tmp_path / "new.npz", mhsa)
        fresh = MultiHeadSelfAttention(8, 2, np.random.default_rng(7))
        nn.load_module(tmp_path / "new.npz", fresh)
        np.testing.assert_array_equal(fresh.w_qkv.data, mhsa.w_qkv.data)

    def test_legacy_projection_views(self, rng):
        """w_query/w_key/w_value stay readable on the packed layout."""
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        d = mhsa.embed_dim
        np.testing.assert_array_equal(mhsa.w_query.weight.data,
                                      mhsa.w_qkv.data[:, :d])
        assert mhsa.w_key.weight.grad is None
        mhsa(Tensor(rng.normal(size=(4, 8)))).sum().backward()
        for view in (mhsa.w_query, mhsa.w_key, mhsa.w_value):
            assert view.weight.grad is not None
            assert view.weight.grad.shape == (d, d)


class TestDtypePolicy:
    def test_default_is_float64(self):
        assert nn.get_default_dtype() == np.dtype(np.float64)
        assert Tensor([1.0, 2.0]).data.dtype == np.float64

    def test_policy_scopes_new_tensors_and_params(self, rng):
        with nn.dtype_policy(np.float32):
            layer = nn.Linear(4, 3, rng)
            assert layer.weight.data.dtype == np.float32
            assert Tensor([1.0]).data.dtype == np.float32
        assert nn.get_default_dtype() == np.dtype(np.float64)
        assert layer.weight.data.dtype == np.float32  # params keep their dtype

    def test_float32_graph_stays_float32_end_to_end(self, rng):
        with nn.dtype_policy(np.float32):
            mhsa = MultiHeadSelfAttention(8, 2, rng)
            ln = nn.LayerNorm(8)
            x = Tensor(rng.normal(size=(4, 8)).astype(np.float32), requires_grad=True)
            out = F.gelu(mhsa(ln(x)))
            assert out.data.dtype == np.float32
            loss = F.masked_mse_loss(out, np.zeros((4, 8)), np.ones((4, 8), bool))
            assert loss.data.dtype == np.float32
            loss.backward()
        assert x.grad.dtype == np.float32
        assert mhsa.w_qkv.grad.dtype == np.float32
        assert ln.gamma.grad.dtype == np.float32

    def test_optimizer_state_follows_policy(self, rng):
        with nn.dtype_policy(np.float32):
            layer = nn.Linear(3, 2, rng)
            opt = nn.LAMB(layer.parameters(), lr=1e-3)
        assert all(m.dtype == np.float32 for m in opt._m)
        layer(Tensor(np.ones((2, 3), dtype=np.float32))).sum().backward()
        opt.step()
        assert layer.weight.data.dtype == np.float32

    def test_dropout_mask_follows_input_dtype(self, rng):
        x32 = Tensor(rng.normal(size=(64, 64)).astype(np.float32), requires_grad=True)
        out = F.dropout(x32, 0.5, rng, training=True)
        assert out.data.dtype == np.float32
        # Eval mode is the identity — same object, no mask allocated.
        assert F.dropout(x32, 0.5, rng, training=False) is x32

    def test_scalar_constants_do_not_upcast(self):
        x = Tensor(np.ones(3, dtype=np.float32))
        assert (x * 2.0 + 1.0).data.dtype == np.float32
        assert (1.0 / x).data.dtype == np.float32

    def test_load_checkpoint_dtype_cast(self, rng, tmp_path):
        layer = nn.Linear(3, 2, rng)
        nn.save_module(tmp_path / "ckpt.npz", layer)
        with nn.dtype_policy(np.float32):
            state, _ = nn.load_checkpoint(tmp_path / "ckpt.npz", dtype="default")
            assert state["weight"].dtype == np.float32
            target = nn.Linear(3, 2, rng)
            target.load_state_dict(state)
            assert target.weight.data.dtype == np.float32

    def test_rejects_non_float_dtype(self):
        with pytest.raises(ValueError):
            nn.set_default_dtype(np.int32)


class TestEmbeddingBackward:
    def test_duplicate_indices_accumulate(self, rng):
        table = Tensor(rng.normal(size=(6, 3)), requires_grad=True)
        idx = np.array([[5, 1, 1], [0, 5, 5]])
        out = F.embedding_lookup(table, idx)
        upstream = rng.normal(size=out.shape)
        out.backward(upstream)
        expected = np.zeros((6, 3))
        np.add.at(expected, idx.reshape(-1), upstream.reshape(-1, 3))
        np.testing.assert_allclose(table.grad, expected, atol=EQ_TOL)

    def test_two_lookups_accumulate_into_same_table(self, rng):
        table = Tensor(rng.normal(size=(4, 2)), requires_grad=True)
        a = F.embedding_lookup(table, np.array([0, 1]))
        b = F.embedding_lookup(table, np.array([1, 3]))
        (a.sum() + b.sum()).backward()
        expected = np.zeros((4, 2))
        expected[0] += 1.0
        expected[1] += 2.0
        expected[3] += 1.0
        np.testing.assert_allclose(table.grad, expected, atol=EQ_TOL)

    def test_grad_is_dense_for_optimizer(self, rng):
        table = Parameter(rng.normal(size=(5, 2)))
        F.embedding_lookup(table, np.array([2])).sum().backward()
        assert isinstance(table.grad, np.ndarray)
        assert table.grad.shape == (5, 2)


class TestBackwardAccumulation:
    def test_repeated_use_accumulates_correctly(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        out = x * 1.0 + x * 2.0 + x * 3.0 + x * 4.0
        out.sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 10.0), atol=EQ_TOL)

    def test_shared_upstream_grad_not_corrupted(self, rng):
        # y feeds two adds; the accumulation must not mutate a shared buffer.
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        y = Tensor(rng.normal(size=(3,)), requires_grad=True)
        ((x + y) + (x + y)).sum().backward()
        np.testing.assert_allclose(x.grad, np.full(3, 2.0), atol=EQ_TOL)
        np.testing.assert_allclose(y.grad, np.full(3, 2.0), atol=EQ_TOL)

    def test_grad_accumulates_across_backward_calls(self, rng):
        x = Tensor(rng.normal(size=(3,)), requires_grad=True)
        (x * 2.0).sum().backward()
        first = x.grad.copy()
        (x * 3.0).sum().backward()
        np.testing.assert_allclose(x.grad, first + 3.0, atol=EQ_TOL)


def test_substrate_microbench_smoke(tmp_path):
    """Tier-1 smoke of the benchmark harness: runs in seconds, no JSON write."""
    from repro.experiments.substrate_bench import run_substrate_microbench

    payload = run_substrate_microbench(smoke=True)
    assert payload["smoke"] is True
    assert payload["baseline_float64_unfused"]["dtype"] == "float64"
    assert payload["fused_float32"]["dtype"] == "float32"
    assert payload["speedup_train_step"] > 0
