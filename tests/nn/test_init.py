"""Weight initialisers: ranges, determinism, fan computation."""

import math

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import init


class TestXavier:
    def test_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((100, 50), rng)
        bound = math.sqrt(6.0 / 150)
        assert np.abs(w).max() <= bound
        assert w.shape == (100, 50)

    def test_gain_scales_bound(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((200, 200), rng, gain=2.0)
        base_bound = math.sqrt(6.0 / 400)
        assert np.abs(w).max() <= 2.0 * base_bound
        assert np.abs(w).max() > base_bound  # gain actually widened it

    def test_deterministic_per_seed(self):
        a = init.xavier_uniform((5, 5), np.random.default_rng(7))
        b = init.xavier_uniform((5, 5), np.random.default_rng(7))
        np.testing.assert_array_equal(a, b)


class TestKaiming:
    def test_bound_uses_fan_in(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((64, 8), rng)
        assert np.abs(w).max() <= math.sqrt(6.0 / 64)

    def test_3d_fan_in(self):
        rng = np.random.default_rng(0)
        w = init.kaiming_uniform((4, 4, 8), rng)
        assert np.abs(w).max() <= math.sqrt(6.0 / 16)


class TestOthers:
    def test_normal_std(self):
        rng = np.random.default_rng(0)
        w = init.normal((10_000,), rng, std=0.5)
        assert w.std() == pytest.approx(0.5, rel=0.05)

    def test_zeros_ones(self):
        assert (init.zeros((3, 2)) == 0).all()
        assert (init.ones((4,)) == 1).all()

    def test_scalar_shape_fans(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((), rng)
        assert w.shape == ()

    def test_1d_fans(self):
        rng = np.random.default_rng(0)
        w = init.xavier_uniform((10,), rng)
        assert np.abs(w).max() <= math.sqrt(6.0 / 20)


@settings(max_examples=20, deadline=None)
@given(
    rows=st.integers(1, 64),
    cols=st.integers(1, 64),
    seed=st.integers(0, 10_000),
)
def test_property_xavier_within_bound(rows, cols, seed):
    rng = np.random.default_rng(seed)
    w = init.xavier_uniform((rows, cols), rng)
    assert np.abs(w).max() <= math.sqrt(6.0 / (rows + cols)) + 1e-12
