"""Optimisers: analytic single-step checks, Lookahead mechanics, and
convergence on convex problems."""

import numpy as np
import pytest

from repro import nn
from repro.nn import LAMB, SGD, Adam, Lookahead, Parameter


def quadratic_loss(p: Parameter) -> nn.Tensor:
    return (p * p).sum()


class TestSGD:
    def test_single_step(self):
        p = Parameter(np.array([1.0, -2.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.8, -1.6])

    def test_momentum_accumulates(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, momentum=0.9)
        for _ in range(2):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        # step1: v=2, p=0.8 ; step2: v=0.9*2+1.6=3.4, p=0.8-0.34=0.46
        np.testing.assert_allclose(p.data, [0.46])

    def test_weight_decay(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1, weight_decay=1.0)
        opt.zero_grad()
        (p * 0.0).sum().backward()
        opt.step()
        np.testing.assert_allclose(p.data, [0.9])

    def test_skips_none_grads(self):
        p = Parameter(np.array([1.0]))
        SGD([p], lr=0.1).step()
        np.testing.assert_allclose(p.data, [1.0])

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = SGD([p], lr=0.1)
        for _ in range(100):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 1e-4


class TestAdam:
    def test_first_step_magnitude(self):
        """Adam's bias-corrected first step ≈ lr regardless of grad scale."""
        for scale in (1.0, 100.0):
            p = Parameter(np.array([1.0]))
            opt = Adam([p], lr=0.01)
            opt.zero_grad()
            (p * scale).sum().backward()
            opt.step()
            assert 1.0 - p.data[0] == pytest.approx(0.01, rel=1e-4)

    def test_converges_faster_than_sgd_on_ill_conditioned(self):
        def run(opt_cls, **kw):
            p = Parameter(np.array([1.0, 1.0]))
            scale = nn.Tensor(np.array([100.0, 1.0]))
            opt = opt_cls([p], **kw)
            for _ in range(200):
                opt.zero_grad()
                ((p * scale) ** 2).sum().backward()
                opt.step()
            return np.abs(p.data).max()

        assert run(Adam, lr=0.05) < run(SGD, lr=1e-5)


class TestLAMB:
    def test_trust_ratio_scales_update(self):
        """Parameters with larger norms take proportionally larger steps."""
        small = Parameter(np.array([0.01]))
        large = Parameter(np.array([10.0]))
        opt = LAMB([small, large], lr=0.1)
        opt.zero_grad()
        (small * 1.0 + large * 1.0).sum().backward()
        opt.step()
        step_small = abs(0.01 - small.data[0])
        step_large = abs(10.0 - large.data[0])
        assert step_large > step_small * 100

    def test_zero_weight_falls_back_to_unit_trust(self):
        p = Parameter(np.zeros(2))
        opt = LAMB([p], lr=0.1)
        opt.zero_grad()
        (p + 1.0).sum().backward()
        opt.step()
        assert np.isfinite(p.data).all()
        assert (p.data != 0).all()

    def test_converges_on_quadratic(self):
        p = Parameter(np.array([5.0, -3.0]))
        opt = LAMB([p], lr=0.05)
        for _ in range(300):
            opt.zero_grad()
            quadratic_loss(p).backward()
            opt.step()
        assert np.abs(p.data).max() < 0.1


class TestLookahead:
    def test_slow_update_every_k_steps(self):
        p = Parameter(np.array([1.0]))
        inner = SGD([p], lr=0.1)
        look = Lookahead(inner, alpha=0.5, k=2)
        start = p.data.copy()
        for step in range(2):
            look.zero_grad()
            quadratic_loss(p).backward()
            look.step()
        # After k steps, weights are pulled halfway back toward the start.
        fast_after_2 = 0.8 * 0.8  # two SGD steps on x^2 with lr .1
        expected = start + 0.5 * (fast_after_2 - start)
        np.testing.assert_allclose(p.data, expected)

    def test_invalid_hyperparameters(self):
        p = Parameter(np.array([1.0]))
        with pytest.raises(ValueError):
            Lookahead(SGD([p], lr=0.1), alpha=0.0)
        with pytest.raises(ValueError):
            Lookahead(SGD([p], lr=0.1), k=0)

    def test_lr_proxy(self):
        p = Parameter(np.array([1.0]))
        look = Lookahead(SGD([p], lr=0.1))
        assert look.lr == pytest.approx(0.1)
        look.lr = 0.05
        assert look.inner.lr == pytest.approx(0.05)

    def test_converges(self):
        p = Parameter(np.array([4.0]))
        look = Lookahead(Adam([p], lr=0.1), alpha=0.5, k=6)
        for _ in range(300):
            look.zero_grad()
            quadratic_loss(p).backward()
            look.step()
        assert abs(p.data[0]) < 0.05


class TestValidation:
    def test_empty_parameters_raise(self):
        with pytest.raises(ValueError):
            SGD([], lr=0.1)

    def test_nonpositive_lr_raises(self):
        p = Parameter(np.ones(1))
        with pytest.raises(ValueError):
            Adam([p], lr=0.0)


class TestZeroGradModes:
    def test_set_to_zero_keeps_buffers(self):
        p = Parameter(np.array([1.0, -2.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        buffer = p.grad
        opt.zero_grad(set_to_zero=True)
        assert p.grad is not None
        np.testing.assert_array_equal(p.grad, 0.0)
        # The second sweep accumulates in place into the retained buffer.
        quadratic_loss(p).backward()
        assert p.grad is buffer or p.grad is not None

    def test_default_mode_drops_grads(self):
        p = Parameter(np.array([1.0]))
        opt = SGD([p], lr=0.1)
        quadratic_loss(p).backward()
        opt.zero_grad()
        assert p.grad is None

    def test_set_to_zero_breaks_takeover_aliasing(self):
        # `(p + q).sum()` sends the SAME upstream gradient array to both
        # parents; zeroing one in place would corrupt the other.
        p = Parameter(np.array([1.0, 2.0]))
        q = Parameter(np.array([3.0, 4.0]))
        (p + q).sum().backward()
        assert p.grad is q.grad  # the takeover aliases them
        p.zero_grad(set_to_zero=True)
        np.testing.assert_array_equal(p.grad, 0.0)
        np.testing.assert_array_equal(q.grad, 1.0)

    def test_trajectories_bit_identical_across_modes(self):
        histories = []
        for set_to_zero in (False, True):
            rng = np.random.default_rng(4)
            p = Parameter(np.array([1.3, -0.7, 2.1]))
            opt = Adam([p], lr=0.05)
            values = []
            for _ in range(25):
                opt.zero_grad(set_to_zero=set_to_zero)
                x = Parameter(rng.normal(size=3))
                loss = ((p - x) * (p - x)).sum()
                loss.backward()
                opt.step()
                values.append(p.data.copy())
            histories.append(np.stack(values))
        assert histories[0].tobytes() == histories[1].tobytes()

    def test_lookahead_forwards_mode(self):
        p = Parameter(np.array([1.0]))
        look = Lookahead(Adam([p], lr=0.1), alpha=0.5, k=2)
        quadratic_loss(p).backward()
        look.zero_grad(set_to_zero=True)
        assert p.grad is not None
        np.testing.assert_array_equal(p.grad, 0.0)
