"""Schedulers and gradient clipping."""

import math

import numpy as np
import pytest

from repro.nn import (
    SGD,
    ConstantLR,
    FlatThenAnnealLR,
    Parameter,
    clip_grad_norm,
)


def make_optimizer(lr=1.0):
    return SGD([Parameter(np.ones(3))], lr=lr)


class TestFlatThenAnneal:
    def test_flat_phase_holds_base_lr(self):
        opt = make_optimizer(lr=0.5)
        sched = FlatThenAnnealLR(opt, total_steps=100, flat_fraction=0.7)
        for _ in range(70):
            assert sched.step() == pytest.approx(0.5)

    def test_anneals_to_zero(self):
        opt = make_optimizer(lr=0.5)
        sched = FlatThenAnnealLR(opt, total_steps=100, flat_fraction=0.7)
        values = [sched.step() for _ in range(100)]
        assert values[-1] == pytest.approx(0.0, abs=1e-12)
        # Monotonically non-increasing after the flat phase.
        anneal = values[70:]
        assert all(a >= b for a, b in zip(anneal, anneal[1:]))

    def test_cosine_midpoint(self):
        opt = make_optimizer(lr=1.0)
        sched = FlatThenAnnealLR(opt, total_steps=10, flat_fraction=0.0)
        # halfway through the anneal, lr = 0.5*(1+cos(pi/2)) = 0.5
        assert sched.lr_at(5) == pytest.approx(0.5 * (1 + math.cos(math.pi / 2)))

    def test_steps_clamp_at_total(self):
        opt = make_optimizer()
        sched = FlatThenAnnealLR(opt, total_steps=5, flat_fraction=0.0)
        for _ in range(10):
            lr = sched.step()
        assert lr == pytest.approx(0.0, abs=1e-12)

    def test_invalid_fraction(self):
        with pytest.raises(ValueError):
            FlatThenAnnealLR(make_optimizer(), total_steps=10, flat_fraction=1.5)

    def test_invalid_total_steps(self):
        with pytest.raises(ValueError):
            FlatThenAnnealLR(make_optimizer(), total_steps=0)

    def test_mutates_optimizer_lr(self):
        opt = make_optimizer(lr=0.3)
        sched = FlatThenAnnealLR(opt, total_steps=4, flat_fraction=0.5)
        sched.step()
        assert opt.lr == pytest.approx(0.3)
        for _ in range(3):
            sched.step()
        assert opt.lr == pytest.approx(0.0, abs=1e-12)


class TestConstantLR:
    def test_never_changes(self):
        opt = make_optimizer(lr=0.2)
        sched = ConstantLR(opt, total_steps=10)
        for _ in range(20):
            assert sched.step() == pytest.approx(0.2)


class TestClipGradNorm:
    def test_no_clip_below_threshold(self):
        p = Parameter(np.zeros(3))
        p.grad = np.array([0.3, 0.0, 0.4])  # norm 0.5
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(0.5)
        np.testing.assert_allclose(p.grad, [0.3, 0.0, 0.4])

    def test_clips_to_max_norm(self):
        p = Parameter(np.zeros(2))
        p.grad = np.array([3.0, 4.0])  # norm 5
        norm = clip_grad_norm([p], 1.0)
        assert norm == pytest.approx(5.0)
        assert np.linalg.norm(p.grad) == pytest.approx(1.0, rel=1e-6)

    def test_global_norm_across_params(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([3.0])
        b.grad = np.array([4.0])
        clip_grad_norm([a, b], 1.0)
        total = math.sqrt(float(a.grad[0] ** 2 + b.grad[0] ** 2))
        assert total == pytest.approx(1.0, rel=1e-6)

    def test_ignores_none_grads(self):
        a, b = Parameter(np.zeros(1)), Parameter(np.zeros(1))
        a.grad = np.array([2.0])
        norm = clip_grad_norm([a, b], 10.0)
        assert norm == pytest.approx(2.0)

    def test_invalid_max_norm(self):
        with pytest.raises(ValueError):
            clip_grad_norm([], 0.0)
