"""Autograd engine tests: every op's gradient is checked against finite
differences, plus graph mechanics (accumulation, detach, no_grad)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.nn import Tensor, is_grad_enabled, no_grad

EPS = 1e-6
TOL = 1e-6


def numeric_grad(fn, x: np.ndarray) -> np.ndarray:
    """Central finite differences of a scalar-valued fn at x."""
    grad = np.zeros_like(x)
    for idx in np.ndindex(*x.shape):
        plus, minus = x.copy(), x.copy()
        plus[idx] += EPS
        minus[idx] -= EPS
        grad[idx] = (fn(plus) - fn(minus)) / (2 * EPS)
    return grad


def check_grad(build, x: np.ndarray, tol: float = TOL):
    """Compare autograd gradient of sum(build(x)) with finite differences."""
    t = Tensor(x, requires_grad=True)
    out = build(t)
    out.sum().backward()
    expected = numeric_grad(lambda arr: build(Tensor(arr)).sum().item(), x)
    np.testing.assert_allclose(t.grad, expected, atol=tol, rtol=tol)


class TestElementwiseGrads:
    def setup_method(self):
        self.rng = np.random.default_rng(42)

    def test_add(self):
        check_grad(lambda t: t + 3.0, self.rng.normal(size=(3, 4)))

    def test_sub(self):
        check_grad(lambda t: 5.0 - t, self.rng.normal(size=(3, 4)))

    def test_mul(self):
        check_grad(lambda t: t * t, self.rng.normal(size=(2, 5)))

    def test_div(self):
        check_grad(lambda t: 1.0 / t, self.rng.uniform(1.0, 2.0, size=(4,)))

    def test_neg(self):
        check_grad(lambda t: -t * 2.0, self.rng.normal(size=(3,)))

    def test_pow(self):
        check_grad(lambda t: t**3, self.rng.uniform(0.5, 1.5, size=(3, 2)))

    def test_exp(self):
        check_grad(lambda t: t.exp(), self.rng.normal(size=(3, 3)))

    def test_log(self):
        check_grad(lambda t: t.log(), self.rng.uniform(0.5, 2.0, size=(4,)))

    def test_sqrt(self):
        check_grad(lambda t: t.sqrt(), self.rng.uniform(0.5, 2.0, size=(4,)))

    def test_tanh(self):
        check_grad(lambda t: t.tanh(), self.rng.normal(size=(3, 4)))

    def test_sigmoid(self):
        check_grad(lambda t: t.sigmoid(), self.rng.normal(size=(3, 4)))

    def test_relu(self):
        # Keep values away from the kink where finite differences lie.
        x = self.rng.normal(size=(4, 4))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: t.relu(), x)

    def test_abs(self):
        x = self.rng.normal(size=(4,))
        x[np.abs(x) < 0.1] = 0.5
        check_grad(lambda t: t.abs(), x)

    def test_clip(self):
        x = np.array([-2.0, -0.5, 0.3, 0.9, 2.5])
        check_grad(lambda t: t.clip(-1.0, 1.0), x)


class TestBroadcasting:
    def setup_method(self):
        self.rng = np.random.default_rng(7)

    def test_add_broadcast_rows(self):
        other = Tensor(self.rng.normal(size=(4,)))
        check_grad(lambda t: t + other, self.rng.normal(size=(3, 4)))

    def test_mul_broadcast_to_smaller(self):
        big = self.rng.normal(size=(3, 4))
        t = Tensor(self.rng.normal(size=(4,)), requires_grad=True)
        out = Tensor(big) * t
        out.sum().backward()
        np.testing.assert_allclose(t.grad, big.sum(axis=0), atol=TOL)

    def test_broadcast_keepdim_axis(self):
        t = Tensor(self.rng.normal(size=(3, 1)), requires_grad=True)
        out = t * Tensor(np.ones((3, 5)))
        out.sum().backward()
        np.testing.assert_allclose(t.grad, np.full((3, 1), 5.0), atol=TOL)


class TestMatmulGrads:
    def setup_method(self):
        self.rng = np.random.default_rng(3)

    def test_2d(self):
        w = Tensor(self.rng.normal(size=(4, 2)))
        check_grad(lambda t: t @ w, self.rng.normal(size=(3, 4)))

    def test_2d_rhs(self):
        x = Tensor(self.rng.normal(size=(3, 4)))
        check_grad(lambda t: x @ t, self.rng.normal(size=(4, 2)))

    def test_batched(self):
        w = Tensor(self.rng.normal(size=(2, 4, 3)))
        check_grad(lambda t: t @ w, self.rng.normal(size=(2, 5, 4)))

    def test_batched_broadcast_lhs(self):
        w = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: t @ w, self.rng.normal(size=(2, 5, 4)))

    def test_vector_vector(self):
        v = Tensor(self.rng.normal(size=(4,)))
        check_grad(lambda t: t @ v, self.rng.normal(size=(4,)))

    def test_matrix_vector(self):
        v = Tensor(self.rng.normal(size=(4,)))
        check_grad(lambda t: t @ v, self.rng.normal(size=(3, 4)))

    def test_vector_matrix(self):
        m = Tensor(self.rng.normal(size=(4, 3)))
        check_grad(lambda t: t @ m, self.rng.normal(size=(4,)))


class TestShapeOps:
    def setup_method(self):
        self.rng = np.random.default_rng(5)

    def test_reshape(self):
        check_grad(lambda t: (t.reshape(6, 2) * 2.0), self.rng.normal(size=(3, 4)))

    def test_transpose_default(self):
        check_grad(lambda t: t.T * 3.0, self.rng.normal(size=(3, 4)))

    def test_transpose_axes(self):
        check_grad(lambda t: t.transpose(2, 0, 1), self.rng.normal(size=(2, 3, 4)))

    def test_swapaxes(self):
        check_grad(lambda t: t.swapaxes(0, 2), self.rng.normal(size=(2, 3, 4)))

    def test_getitem_slice(self):
        check_grad(lambda t: t[1:, :2], self.rng.normal(size=(3, 4)))

    def test_getitem_fancy(self):
        idx = np.array([0, 2, 2])
        t = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        t[idx].sum().backward()
        expected = np.zeros((4, 3))
        np.add.at(expected, idx, 1.0)
        np.testing.assert_allclose(t.grad, expected)

    def test_getitem_basic_index_variants(self):
        # Basic indexing (ints, slices, Ellipsis, None) takes the direct
        # assignment backward — same gradients as the np.add.at scatter.
        for key in (1, slice(None, None, 2), (slice(1, None), 0),
                    (Ellipsis, slice(0, 2)), (None, slice(None)),
                    (0, Ellipsis, slice(None, None, -1))):
            t = Tensor(self.rng.normal(size=(3, 4)), requires_grad=True)
            (t[key] * 2.0).sum().backward()
            expected = np.zeros((3, 4))
            expected[key] += 2.0
            np.testing.assert_array_equal(t.grad, expected)

    def test_getitem_boolean_mask_stays_on_scatter_path(self):
        mask = np.array([True, False, True, True])
        t = Tensor(self.rng.normal(size=(4, 3)), requires_grad=True)
        t[mask].sum().backward()
        expected = np.zeros((4, 3))
        expected[mask] = 1.0
        np.testing.assert_array_equal(t.grad, expected)


class TestReductions:
    def setup_method(self):
        self.rng = np.random.default_rng(9)

    def test_sum_all(self):
        check_grad(lambda t: t.sum() * 2.0, self.rng.normal(size=(3, 4)))

    def test_sum_axis(self):
        check_grad(lambda t: t.sum(axis=0), self.rng.normal(size=(3, 4)))

    def test_sum_axis_keepdims(self):
        check_grad(lambda t: t.sum(axis=1, keepdims=True) * t,
                   self.rng.normal(size=(3, 4)))

    def test_sum_negative_axis(self):
        check_grad(lambda t: t.sum(axis=-1), self.rng.normal(size=(2, 3, 4)))

    def test_mean(self):
        check_grad(lambda t: t.mean(axis=1), self.rng.normal(size=(3, 4)))

    def test_mean_all(self):
        check_grad(lambda t: t.mean(), self.rng.normal(size=(5,)))

    def test_var(self):
        check_grad(lambda t: t.var(axis=-1), self.rng.normal(size=(3, 4)), tol=1e-5)

    def test_max_all(self):
        x = np.array([[1.0, 5.0], [3.0, 2.0]])
        t = Tensor(x, requires_grad=True)
        t.max().backward()
        expected = np.zeros_like(x)
        expected[0, 1] = 1.0
        np.testing.assert_allclose(t.grad, expected)

    def test_max_axis(self):
        x = np.array([[1.0, 5.0, 2.0], [7.0, 2.0, 3.0]])
        t = Tensor(x, requires_grad=True)
        t.max(axis=1).sum().backward()
        expected = np.zeros_like(x)
        expected[0, 1] = 1.0
        expected[1, 0] = 1.0
        np.testing.assert_allclose(t.grad, expected)


class TestGraphMechanics:
    def test_grad_accumulates(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        (t * 3.0).sum().backward()
        (t * 4.0).sum().backward()
        np.testing.assert_allclose(t.grad, [7.0])

    def test_shared_subexpression(self):
        t = Tensor(np.array([3.0]), requires_grad=True)
        y = t * t
        (y + y).sum().backward()
        np.testing.assert_allclose(t.grad, [12.0])

    def test_detach_cuts_graph(self):
        t = Tensor(np.array([2.0]), requires_grad=True)
        out = t.detach() * 5.0
        assert not out.requires_grad

    def test_no_grad_context(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        with no_grad():
            assert not is_grad_enabled()
            out = t * 2.0
        assert is_grad_enabled()
        assert not out.requires_grad

    def test_backward_requires_scalar_without_grad(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        with pytest.raises(RuntimeError):
            (t * 2.0).backward()

    def test_backward_on_non_grad_tensor(self):
        with pytest.raises(RuntimeError):
            Tensor(np.ones(3)).backward()

    def test_backward_grad_shape_mismatch(self):
        t = Tensor(np.ones((2, 2)), requires_grad=True)
        out = t * 1.0
        with pytest.raises(ValueError):
            out.backward(np.ones(3))

    def test_zero_grad(self):
        t = Tensor(np.array([1.0]), requires_grad=True)
        (t * 2.0).sum().backward()
        t.zero_grad()
        assert t.grad is None

    def test_comparison_returns_bool_array(self):
        t = Tensor(np.array([1.0, 3.0]))
        assert (t > 2.0).dtype == bool
        assert (t < 2.0).tolist() == [True, False]

    def test_repr_and_helpers(self):
        t = Tensor(np.ones((2, 3)), requires_grad=True)
        assert "requires_grad" in repr(t)
        assert t.shape == (2, 3)
        assert t.ndim == 2
        assert t.size == 6
        assert len(t) == 2


@settings(max_examples=30, deadline=None)
@given(
    rows=st.integers(1, 4),
    cols=st.integers(1, 4),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_composite_expression_gradcheck(rows, cols, seed):
    """Random composite expressions match finite-difference gradients."""
    rng = np.random.default_rng(seed)
    x = rng.uniform(0.5, 1.5, size=(rows, cols))
    w = Tensor(rng.normal(size=(cols, 3)))

    def build(t):
        return ((t @ w).tanh() * 2.0 + t.sum(axis=1, keepdims=True)).sigmoid()

    check_grad(build, x, tol=1e-5)


@settings(max_examples=30, deadline=None)
@given(seed=st.integers(0, 2**31 - 1))
def test_property_chain_rule_linearity(seed):
    """backward(a·g) == a · backward(g) for any upstream gradient."""
    rng = np.random.default_rng(seed)
    x = rng.normal(size=(3, 3))
    scale = float(rng.uniform(0.5, 3.0))

    t1 = Tensor(x, requires_grad=True)
    out1 = (t1 * t1).sum()
    out1.backward(np.array(scale))

    t2 = Tensor(x, requires_grad=True)
    out2 = (t2 * t2).sum()
    out2.backward(np.array(1.0))

    np.testing.assert_allclose(t1.grad, scale * t2.grad, rtol=1e-10)
