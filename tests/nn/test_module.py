"""Module system: registration, traversal, modes, state dicts."""

import numpy as np
import pytest

from repro import nn


class _Toy(nn.Module):
    def __init__(self, rng):
        super().__init__()
        self.linear = nn.Linear(4, 3, rng)
        self.inner = nn.Sequential(nn.Linear(3, 3, rng), nn.ReLU())
        self.scale = nn.Parameter(np.ones(1))

    def forward(self, x):
        return self.inner(self.linear(x)) * self.scale


@pytest.fixture
def toy():
    return _Toy(np.random.default_rng(0))


class TestTraversal:
    def test_named_parameters_nested(self, toy):
        names = dict(toy.named_parameters())
        assert "linear.weight" in names
        assert "linear.bias" in names
        assert "inner.layers.0.weight" in names
        assert "scale" in names

    def test_parameters_count(self, toy):
        # linear: 4*3+3, inner linear: 3*3+3, scale: 1
        assert toy.num_parameters() == 12 + 3 + 9 + 3 + 1

    def test_modules_iteration(self, toy):
        kinds = [type(m).__name__ for m in toy.modules()]
        assert "_Toy" in kinds
        assert "Linear" in kinds
        assert "ReLU" in kinds

    def test_parameter_stays_trainable_under_no_grad(self):
        with nn.no_grad():
            p = nn.Parameter(np.ones(2))
        assert p.requires_grad


class TestModes:
    def test_train_eval_propagates(self, toy):
        toy.eval()
        assert all(not m.training for m in toy.modules())
        toy.train()
        assert all(m.training for m in toy.modules())

    def test_zero_grad(self, toy):
        x = nn.Tensor(np.ones((2, 4)))
        toy(x).sum().backward()
        assert any(p.grad is not None for p in toy.parameters())
        toy.zero_grad()
        assert all(p.grad is None for p in toy.parameters())


class TestStateDict:
    def test_roundtrip(self, toy):
        state = toy.state_dict()
        other = _Toy(np.random.default_rng(99))
        before = other(nn.Tensor(np.ones((1, 4)))).data.copy()
        other.load_state_dict(state)
        after = other(nn.Tensor(np.ones((1, 4)))).data
        expected = toy(nn.Tensor(np.ones((1, 4)))).data
        np.testing.assert_allclose(after, expected)
        assert not np.allclose(before, after)

    def test_state_dict_copies(self, toy):
        state = toy.state_dict()
        state["scale"][0] = 42.0
        assert toy.scale.data[0] == 1.0

    def test_missing_key_raises(self, toy):
        state = toy.state_dict()
        del state["scale"]
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_unexpected_key_raises(self, toy):
        state = toy.state_dict()
        state["ghost"] = np.ones(1)
        with pytest.raises(KeyError):
            toy.load_state_dict(state)

    def test_shape_mismatch_raises(self, toy):
        state = toy.state_dict()
        state["scale"] = np.ones(5)
        with pytest.raises(ValueError):
            toy.load_state_dict(state)


class TestContainers:
    def test_sequential_order(self):
        rng = np.random.default_rng(1)
        seq = nn.Sequential(nn.Linear(2, 3, rng), nn.ReLU(), nn.Linear(3, 1, rng))
        assert len(seq) == 3
        out = seq(nn.Tensor(np.ones((4, 2))))
        assert out.shape == (4, 1)
        assert isinstance(seq[1], nn.ReLU)

    def test_modulelist_registration(self):
        rng = np.random.default_rng(2)
        ml = nn.ModuleList([nn.Linear(2, 2, rng)])
        ml.append(nn.Linear(2, 2, rng))
        assert len(ml) == 2
        assert len(list(ml)) == 2
        params = list(p for m in ml for p in m.parameters())
        assert len(params) == 4
        assert ml[0] is not ml[1]
