"""MHSA: shapes, permutation equivariance (Eq. 5), attention capture,
gradients, and batching semantics."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import MultiHeadSelfAttention, Tensor

from .test_tensor import check_grad


@pytest.fixture
def rng():
    return np.random.default_rng(0)


class TestShapes:
    def test_output_shape_2d(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        assert mhsa(Tensor(rng.normal(size=(5, 8)))).shape == (5, 8)

    def test_output_shape_batched(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        assert mhsa(Tensor(rng.normal(size=(3, 4, 5, 8)))).shape == (3, 4, 5, 8)

    def test_heads_must_divide(self, rng):
        with pytest.raises(ValueError):
            MultiHeadSelfAttention(10, 3, rng)

    def test_wrong_last_dim_raises(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        with pytest.raises(ValueError):
            mhsa(Tensor(rng.normal(size=(5, 6))))

    def test_single_token(self, rng):
        mhsa = MultiHeadSelfAttention(8, 4, rng)
        out = mhsa(Tensor(rng.normal(size=(1, 8))))
        assert out.shape == (1, 8)
        assert np.isfinite(out.data).all()


class TestEquivariance:
    def test_permutation_equivariance(self, rng):
        """Eq. 5: Π∘MHSA(X) == MHSA(Π∘X)."""
        mhsa = MultiHeadSelfAttention(16, 4, rng)
        x = rng.normal(size=(7, 16))
        perm = rng.permutation(7)
        out = mhsa(Tensor(x)).data
        out_perm = mhsa(Tensor(x[perm])).data
        np.testing.assert_allclose(out[perm], out_perm, atol=1e-10)

    def test_batch_independence(self, rng):
        """Each leading batch element is attended independently."""
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(3, 5, 8))
        full = mhsa(Tensor(x)).data
        for b in range(3):
            single = mhsa(Tensor(x[b])).data
            np.testing.assert_allclose(full[b], single, atol=1e-10)


class TestAttentionCapture:
    def test_capture_disabled_by_default(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        mhsa(Tensor(rng.normal(size=(4, 8))))
        assert mhsa.last_attention is None

    def test_captured_weights_are_row_stochastic(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        mhsa.capture_attention = True
        mhsa(Tensor(rng.normal(size=(4, 8))))
        attn = mhsa.last_attention
        assert attn.shape == (2, 4, 4)
        np.testing.assert_allclose(attn.sum(axis=-1), np.ones((2, 4)), atol=1e-10)

    def test_captured_batched_shape(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        mhsa.capture_attention = True
        mhsa(Tensor(rng.normal(size=(3, 4, 8))))
        assert mhsa.last_attention.shape == (3, 2, 4, 4)


class TestGradients:
    def test_gradcheck_through_attention(self, rng):
        mhsa = MultiHeadSelfAttention(4, 2, rng)
        check_grad(lambda t: mhsa(t), rng.normal(size=(3, 4)), tol=1e-5)

    def test_all_projections_receive_gradient(self, rng):
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        mhsa(Tensor(rng.normal(size=(4, 8)))).sum().backward()
        for name in ("w_query", "w_key", "w_value", "w_output"):
            assert getattr(mhsa, name).weight.grad is not None, name

    def test_trainable_to_identity(self, rng):
        """MHSA can learn to reproduce its input (sanity optimisation)."""
        mhsa = MultiHeadSelfAttention(8, 2, rng)
        x = rng.normal(size=(4, 6, 8))
        optimizer = nn.Adam(mhsa.parameters(), lr=1e-2)
        first = None
        for _ in range(150):
            optimizer.zero_grad()
            loss = nn.functional.mse_loss(mhsa(Tensor(x)), Tensor(x))
            if first is None:
                first = loss.item()
            loss.backward()
            optimizer.step()
        assert loss.item() < first * 0.2


@settings(max_examples=20, deadline=None)
@given(
    tokens=st.integers(2, 8),
    heads=st.sampled_from([1, 2, 4]),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_equivariance_random(tokens, heads, seed):
    """Permutation equivariance holds for arbitrary sizes and permutations."""
    rng = np.random.default_rng(seed)
    mhsa = MultiHeadSelfAttention(8, heads, rng)
    x = rng.normal(size=(tokens, 8))
    perm = rng.permutation(tokens)
    np.testing.assert_allclose(
        mhsa(Tensor(x)).data[perm],
        mhsa(Tensor(x[perm])).data,
        atol=1e-9,
    )
