"""Functional ops: softmax/log-softmax numerics, stack/concat gradients,
losses, dropout, embedding lookup."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

import repro.nn.functional as F
from repro.nn import Tensor

from .test_tensor import check_grad, numeric_grad


class TestSoftmax:
    def test_rows_sum_to_one(self):
        x = Tensor(np.random.default_rng(0).normal(size=(4, 6)))
        probs = F.softmax(x, axis=-1).data
        np.testing.assert_allclose(probs.sum(axis=-1), np.ones(4), atol=1e-12)
        assert (probs > 0).all()

    def test_shift_invariance(self):
        x = np.random.default_rng(1).normal(size=(3, 5))
        a = F.softmax(Tensor(x)).data
        b = F.softmax(Tensor(x + 1000.0)).data
        np.testing.assert_allclose(a, b, atol=1e-12)

    def test_extreme_values_stable(self):
        x = Tensor(np.array([[1e6, -1e6, 0.0]]))
        probs = F.softmax(x).data
        assert np.isfinite(probs).all()
        np.testing.assert_allclose(probs[0, 0], 1.0)

    def test_gradient(self):
        check_grad(lambda t: F.softmax(t, axis=-1) ** 2,
                   np.random.default_rng(2).normal(size=(3, 4)))

    def test_gradient_middle_axis(self):
        check_grad(lambda t: F.softmax(t, axis=1) * 3.0,
                   np.random.default_rng(3).normal(size=(2, 3, 4)))


class TestLogSoftmax:
    def test_matches_log_of_softmax(self):
        x = np.random.default_rng(4).normal(size=(3, 5))
        np.testing.assert_allclose(
            F.log_softmax(Tensor(x)).data,
            np.log(F.softmax(Tensor(x)).data),
            atol=1e-12,
        )

    def test_gradient(self):
        check_grad(lambda t: F.log_softmax(t) * 0.5,
                   np.random.default_rng(5).normal(size=(2, 4)))


class TestStackConcat:
    def test_stack_shape_and_grad(self):
        rng = np.random.default_rng(6)
        xs = [rng.normal(size=(2, 3)) for _ in range(4)]
        tensors = [Tensor(x, requires_grad=True) for x in xs]
        out = F.stack(tensors, axis=1)
        assert out.shape == (2, 4, 3)
        (out * 2.0).sum().backward()
        for t in tensors:
            np.testing.assert_allclose(t.grad, np.full((2, 3), 2.0))

    def test_stack_axis0_values(self):
        a, b = Tensor(np.zeros((2,))), Tensor(np.ones((2,)))
        out = F.stack([a, b], axis=0)
        np.testing.assert_allclose(out.data, [[0, 0], [1, 1]])

    def test_concatenate_grad_split(self):
        rng = np.random.default_rng(7)
        a = Tensor(rng.normal(size=(2, 3)), requires_grad=True)
        b = Tensor(rng.normal(size=(2, 2)), requires_grad=True)
        out = F.concatenate([a, b], axis=-1)
        assert out.shape == (2, 5)
        weights = rng.normal(size=(2, 5))
        (out * Tensor(weights)).sum().backward()
        np.testing.assert_allclose(a.grad, weights[:, :3])
        np.testing.assert_allclose(b.grad, weights[:, 3:])

    def test_concatenate_axis0(self):
        a = Tensor(np.ones((1, 2)))
        b = Tensor(np.zeros((3, 2)))
        assert F.concatenate([a, b], axis=0).shape == (4, 2)


class TestLosses:
    def test_mse_value(self):
        pred = Tensor(np.array([1.0, 2.0, 3.0]))
        target = np.array([1.0, 1.0, 1.0])
        assert F.mse_loss(pred, target).item() == pytest.approx(5.0 / 3.0)

    def test_mse_gradient(self):
        target = np.array([0.5, -0.5, 1.0])
        check_grad(lambda t: F.mse_loss(t, target),
                   np.random.default_rng(8).normal(size=(3,)))

    def test_masked_mse_selects_cells(self):
        pred = Tensor(np.array([[1.0, 5.0], [2.0, 2.0]]))
        target = np.array([[0.0, 4.0], [0.0, 0.0]])
        mask = np.array([[False, True], [False, False]])
        assert F.masked_mse_loss(pred, target, mask).item() == pytest.approx(1.0)

    def test_masked_mse_empty_mask_raises(self):
        with pytest.raises(ValueError):
            F.masked_mse_loss(Tensor(np.ones((2, 2))), np.ones((2, 2)),
                              np.zeros((2, 2), dtype=bool))

    def test_masked_mse_gradient_zero_outside_mask(self):
        rng = np.random.default_rng(9)
        target = rng.normal(size=(3, 3))
        mask = np.zeros((3, 3), dtype=bool)
        mask[0, 1] = mask[2, 2] = True
        t = Tensor(rng.normal(size=(3, 3)), requires_grad=True)
        F.masked_mse_loss(t, target, mask).backward()
        assert (t.grad[~mask] == 0).all()
        assert (t.grad[mask] != 0).all()

    def test_bce_loss_perfect_prediction_near_zero(self):
        pred = Tensor(np.array([0.999999, 0.000001]))
        target = np.array([1.0, 0.0])
        assert F.bce_loss(pred, target).item() < 1e-4

    def test_bce_gradient(self):
        target = np.array([1.0, 0.0, 1.0])
        check_grad(lambda t: F.bce_loss(t.sigmoid(), target),
                   np.random.default_rng(10).normal(size=(3,)), tol=1e-5)

    def test_l2_penalty(self):
        params = [Tensor(np.array([3.0])), Tensor(np.array([4.0]))]
        assert F.l2_penalty(params).item() == pytest.approx(25.0)

    def test_l2_penalty_empty(self):
        assert F.l2_penalty([]).item() == 0.0


class TestDropout:
    def test_eval_mode_is_identity(self):
        rng = np.random.default_rng(11)
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.5, rng, training=False)
        np.testing.assert_array_equal(out.data, x.data)

    def test_zero_rate_is_identity(self):
        rng = np.random.default_rng(12)
        x = Tensor(rng.normal(size=(5, 5)))
        out = F.dropout(x, 0.0, rng, training=True)
        np.testing.assert_array_equal(out.data, x.data)

    def test_scaling_preserves_expectation(self):
        rng = np.random.default_rng(13)
        x = Tensor(np.ones((200, 200)))
        out = F.dropout(x, 0.3, rng, training=True)
        assert out.data.mean() == pytest.approx(1.0, abs=0.02)

    def test_dropped_entries_are_zero(self):
        rng = np.random.default_rng(14)
        out = F.dropout(Tensor(np.ones(1000)), 0.5, rng, training=True)
        zeros = (out.data == 0).sum()
        assert 350 < zeros < 650


class TestEmbeddingLookup:
    def test_lookup_values(self):
        table = Tensor(np.arange(12, dtype=float).reshape(4, 3))
        out = F.embedding_lookup(table, np.array([2, 0]))
        np.testing.assert_allclose(out.data, [[6, 7, 8], [0, 1, 2]])

    def test_gradient_scatter_adds(self):
        table = Tensor(np.zeros((4, 3)), requires_grad=True)
        out = F.embedding_lookup(table, np.array([1, 1, 3]))
        out.sum().backward()
        expected = np.zeros((4, 3))
        expected[1] = 2.0
        expected[3] = 1.0
        np.testing.assert_allclose(table.grad, expected)

    def test_2d_indices(self):
        table = Tensor(np.random.default_rng(15).normal(size=(5, 2)), requires_grad=True)
        idx = np.array([[0, 1], [2, 0]])
        out = F.embedding_lookup(table, idx)
        assert out.shape == (2, 2, 2)
        out.sum().backward()
        assert table.grad[0].sum() == pytest.approx(4.0)  # index 0 used twice


class TestGelu:
    def test_known_values(self):
        out = F.gelu(Tensor(np.array([0.0]))).item()
        assert out == pytest.approx(0.0, abs=1e-9)
        assert F.gelu(Tensor(np.array([10.0]))).item() == pytest.approx(10.0, abs=1e-3)

    def test_gradient(self):
        check_grad(lambda t: F.gelu(t), np.random.default_rng(16).normal(size=(4,)),
                   tol=1e-5)


class TestPadTo:
    def test_pads_short(self):
        out = F.pad_to(np.array([1.0, 2.0]), 4, value=-1.0)
        np.testing.assert_allclose(out, [1, 2, -1, -1])

    def test_truncates_long(self):
        out = F.pad_to(np.arange(5.0), 3)
        np.testing.assert_allclose(out, [0, 1, 2])


@settings(max_examples=40, deadline=None)
@given(
    size=st.integers(2, 6),
    seed=st.integers(0, 2**31 - 1),
)
def test_property_softmax_is_distribution(size, seed):
    rng = np.random.default_rng(seed)
    x = Tensor(rng.normal(scale=5.0, size=(size, size)))
    probs = F.softmax(x, axis=-1).data
    assert (probs >= 0).all()
    np.testing.assert_allclose(probs.sum(axis=-1), np.ones(size), atol=1e-10)


@settings(max_examples=25, deadline=None)
@given(seed=st.integers(0, 2**31 - 1), parts=st.integers(2, 4))
def test_property_concat_then_split_roundtrip(seed, parts):
    rng = np.random.default_rng(seed)
    widths = rng.integers(1, 4, size=parts)
    tensors = [Tensor(rng.normal(size=(3, int(w)))) for w in widths]
    merged = F.concatenate(tensors, axis=-1)
    offset = 0
    for t, w in zip(tensors, widths):
        np.testing.assert_array_equal(merged.data[:, offset:offset + w], t.data)
        offset += int(w)
