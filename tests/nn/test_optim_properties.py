"""Property-based optimiser invariants (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import nn
from repro.nn import LAMB, SGD, Adam, Lookahead, Parameter


@settings(max_examples=25, deadline=None)
@given(
    lr=st.floats(1e-4, 0.5),
    seed=st.integers(0, 10_000),
)
def test_property_sgd_step_is_exact_gradient_descent(lr, seed):
    """One SGD step equals p - lr * grad, for any lr and gradient."""
    rng = np.random.default_rng(seed)
    data = rng.normal(size=5)
    grad = rng.normal(size=5)
    p = Parameter(data.copy())
    p.grad = grad.copy()
    SGD([p], lr=lr).step()
    np.testing.assert_allclose(p.data, data - lr * grad, rtol=1e-12)


@settings(max_examples=20, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_adam_step_bounded_by_lr(seed):
    """Adam's bias-corrected first step per coordinate is ≈ lr in magnitude
    regardless of the gradient's scale."""
    rng = np.random.default_rng(seed)
    p = Parameter(rng.normal(size=4))
    before = p.data.copy()
    p.grad = rng.normal(size=4) * 10.0 ** float(rng.integers(-3, 4))
    Adam([p], lr=0.01).step()
    steps = np.abs(p.data - before)
    assert (steps <= 0.0101).all()


@settings(max_examples=20, deadline=None)
@given(
    alpha=st.floats(0.1, 1.0),
    k=st.integers(1, 8),
    seed=st.integers(0, 10_000),
)
def test_property_lookahead_interpolation(alpha, k, seed):
    """After exactly k inner steps, weights equal
    start + alpha * (fast - start) where fast is the inner trajectory."""
    rng = np.random.default_rng(seed)
    start = rng.normal(size=3)

    # Trajectory of the bare inner optimiser.
    p_fast = Parameter(start.copy())
    inner_fast = SGD([p_fast], lr=0.1)
    grads = [rng.normal(size=3) for _ in range(k)]
    for g in grads:
        p_fast.grad = g.copy()
        inner_fast.step()
    fast_end = p_fast.data.copy()

    p = Parameter(start.copy())
    look = Lookahead(SGD([p], lr=0.1), alpha=alpha, k=k)
    for g in grads:
        p.grad = g.copy()
        look.step()
    np.testing.assert_allclose(p.data, start + alpha * (fast_end - start),
                               rtol=1e-10)


@settings(max_examples=15, deadline=None)
@given(seed=st.integers(0, 10_000))
def test_property_lamb_update_direction_descends(seed):
    """On a convex quadratic, a LAMB step never increases the loss by much
    (trust-ratio scaled steps stay productive)."""
    rng = np.random.default_rng(seed)
    target = rng.normal(size=4)
    p = Parameter(target + rng.normal(size=4))

    def loss_value():
        diff = p.data - target
        return float((diff * diff).sum())

    opt = LAMB([p], lr=0.01)
    before = loss_value()
    for _ in range(5):
        opt.zero_grad()
        diff = p - nn.Tensor(target)
        (diff * diff).sum().backward()
        opt.step()
    assert loss_value() <= before + 1e-6


@settings(max_examples=15, deadline=None)
@given(
    seed=st.integers(0, 10_000),
    max_norm=st.floats(0.1, 5.0),
)
def test_property_clip_grad_norm_postcondition(seed, max_norm):
    from repro.nn import clip_grad_norm

    rng = np.random.default_rng(seed)
    params = [Parameter(np.zeros(3)) for _ in range(3)]
    for p in params:
        p.grad = rng.normal(scale=10.0, size=3)
    clip_grad_norm(params, max_norm)
    total = np.sqrt(sum(float((p.grad ** 2).sum()) for p in params))
    assert total <= max_norm * (1 + 1e-9)
