"""Checkpointing round-trips."""

import numpy as np
import pytest

from repro import nn
from repro.nn import load_checkpoint, load_module, save_checkpoint, save_module


@pytest.fixture
def module():
    rng = np.random.default_rng(0)
    return nn.Sequential(nn.Linear(4, 8, rng), nn.ReLU(), nn.Linear(8, 2, rng))


class TestCheckpointRoundtrip:
    def test_state_roundtrip(self, module, tmp_path):
        path = tmp_path / "model.npz"
        save_module(path, module, metadata={"step": 42, "note": "hello"})
        fresh = nn.Sequential(
            nn.Linear(4, 8, np.random.default_rng(9)),
            nn.ReLU(),
            nn.Linear(8, 2, np.random.default_rng(9)),
        )
        metadata = load_module(path, fresh)
        assert metadata == {"step": 42, "note": "hello"}
        x = nn.Tensor(np.random.default_rng(1).normal(size=(3, 4)))
        np.testing.assert_allclose(module(x).data, fresh(x).data)

    def test_metadata_optional(self, module, tmp_path):
        path = tmp_path / "bare.npz"
        save_module(path, module)
        state, metadata = load_checkpoint(path)
        assert metadata == {}
        assert set(state) == set(module.state_dict())

    def test_reserved_key_rejected(self, tmp_path):
        with pytest.raises(ValueError, match="reserved"):
            save_checkpoint(tmp_path / "x.npz", {"__meta__": np.ones(1)})

    def test_creates_parent_dirs(self, module, tmp_path):
        path = tmp_path / "deep" / "nested" / "model.npz"
        save_module(path, module)
        assert path.exists()

    def test_loaded_arrays_are_copies(self, module, tmp_path):
        path = tmp_path / "model.npz"
        save_module(path, module)
        state, _ = load_checkpoint(path)
        key = next(iter(state))
        state[key][...] = 0  # mutating must not break subsequent loads
        state2, _ = load_checkpoint(path)
        assert not np.allclose(state2[key], 0) or module.state_dict()[key].sum() == 0


class TestHIRECheckpoint:
    def test_save_load_predictions_identical(self, ml_dataset, ml_graph, tmp_path):
        from repro.core import HIRE, HIREConfig, build_context

        config = HIREConfig(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        model = HIRE(ml_dataset, config)
        path = tmp_path / "hire.npz"
        model.save(path)

        other = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=4, seed=99))
        # seed differs -> configs differ -> rejected
        with pytest.raises(ValueError, match="config"):
            other.load(path)

        same = HIRE(ml_dataset, config)
        # perturb, then restore
        for p in same.parameters():
            p.data += 1.0
        same.load(path)
        ctx = build_context(ml_graph, np.arange(4), np.arange(4),
                            np.random.default_rng(0))
        np.testing.assert_allclose(model.predict(ctx), same.predict(ctx))


class TestSuffixNormalization:
    def test_save_appends_npz_and_returns_path(self, module, tmp_path):
        written = save_module(tmp_path / "model", module)
        assert written == tmp_path / "model.npz"
        assert written.exists()

    def test_save_checkpoint_returns_real_path(self, module, tmp_path):
        written = save_checkpoint(tmp_path / "ckpt", module.state_dict())
        assert written.suffix == ".npz"
        state, _ = load_checkpoint(written)
        assert set(state) == set(module.state_dict())

    def test_load_falls_back_to_suffixed_path(self, module, tmp_path):
        save_checkpoint(tmp_path / "ckpt", module.state_dict())
        # Loading with the suffix-less name the caller used must work too.
        state, _ = load_checkpoint(tmp_path / "ckpt")
        assert set(state) == set(module.state_dict())

    def test_explicit_suffix_unchanged(self, module, tmp_path):
        written = save_checkpoint(tmp_path / "ckpt.npz", module.state_dict())
        assert written == tmp_path / "ckpt.npz"

    def test_missing_checkpoint_still_errors(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_checkpoint(tmp_path / "ghost")
