"""Unit tests of ``tools/check_bench_regression.py``.

The tool guards the committed benchmark trajectory; these tests drive it
through ``--baseline-dir`` (no git involved) with synthetic payloads, so
both verdicts — clean pass and >10% headline regression — are exercised
deterministically.
"""

import importlib.util
import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parent.parent
TOOL_PATH = REPO_ROOT / "tools" / "check_bench_regression.py"

spec = importlib.util.spec_from_file_location("check_bench_regression",
                                              TOOL_PATH)
tool = importlib.util.module_from_spec(spec)
spec.loader.exec_module(tool)


def serve_payload(best_speedup=2.0, pack_gain=1.5, balance=0.8,
                  precision=0.4, smoke=False):
    return {
        "benchmark": "serve_throughput",
        "smoke": smoke,
        "best_speedup": best_speedup,
        "packing": {"pack_gain": pack_gain},
        "sharding": {"balance": balance,
                     "invalidation_precision": precision},
    }


def write(directory: Path, filename: str, payload: dict) -> None:
    (directory / filename).write_text(json.dumps(payload))


@pytest.fixture
def roots(tmp_path):
    current = tmp_path / "current"
    baseline = tmp_path / "baseline"
    current.mkdir()
    baseline.mkdir()
    return current, baseline


def run_tool(current: Path, baseline: Path, *extra: str) -> int:
    return tool.main(["--repo-root", str(current),
                      "--baseline-dir", str(baseline), *extra])


class TestDottedGet:
    def test_resolves_nested(self):
        payload = {"a": {"b": {"c": 3.0}}}
        assert tool.dotted_get(payload, "a.b.c") == 3.0

    def test_missing_returns_none(self):
        assert tool.dotted_get({"a": 1}, "a.b") is None
        assert tool.dotted_get({}, "missing") is None


class TestVerdicts:
    def test_identical_passes(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload())
        write(baseline, "BENCH_serve.json", serve_payload())
        assert run_tool(current, baseline) == 0

    def test_improvement_passes(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=3.0))
        write(baseline, "BENCH_serve.json", serve_payload(best_speedup=2.0))
        assert run_tool(current, baseline) == 0

    def test_small_drop_within_tolerance_passes(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=1.85))
        write(baseline, "BENCH_serve.json", serve_payload(best_speedup=2.0))
        assert run_tool(current, baseline) == 0  # -7.5% < 10%

    def test_large_drop_fails(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=1.5))
        write(baseline, "BENCH_serve.json", serve_payload(best_speedup=2.0))
        assert run_tool(current, baseline) == 1  # -25%

    def test_nested_metric_drop_fails(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(pack_gain=1.0))
        write(baseline, "BENCH_serve.json", serve_payload(pack_gain=1.6))
        assert run_tool(current, baseline) == 1

    def test_sharding_balance_drop_fails(self, roots):
        """A collapsed shard (balance falling toward 1/num_shards) is a
        routing regression even when throughput holds."""
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(balance=0.4))
        write(baseline, "BENCH_serve.json", serve_payload(balance=0.8))
        assert run_tool(current, baseline) == 1

    def test_invalidation_precision_drop_fails(self, roots):
        """Precision falling to ~0 means updates went back to evicting
        everything — the incremental data plane's headline property."""
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(precision=0.05))
        write(baseline, "BENCH_serve.json", serve_payload(precision=0.4))
        assert run_tool(current, baseline) == 1

    def test_tolerance_is_configurable(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=1.9))
        write(baseline, "BENCH_serve.json", serve_payload(best_speedup=2.0))
        assert run_tool(current, baseline, "--tolerance", "0.02") == 1
        assert run_tool(current, baseline, "--tolerance", "0.10") == 0


class TestSkips:
    def test_missing_baseline_file_skipped(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=0.1))
        assert run_tool(current, baseline) == 0

    def test_missing_current_file_skipped(self, roots):
        current, baseline = roots
        write(baseline, "BENCH_serve.json", serve_payload())
        assert run_tool(current, baseline) == 0

    def test_smoke_payload_skipped(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json",
              serve_payload(best_speedup=0.1, smoke=True))
        write(baseline, "BENCH_serve.json", serve_payload())
        assert run_tool(current, baseline) == 0

    def test_measurement_protocol_change_skipped(self, roots):
        """Numbers from different measurement protocols are incomparable:
        the first run under a new protocol resets the trajectory rather
        than being judged against the old one."""
        current, baseline = roots
        changed = serve_payload(pack_gain=0.5)  # would fail if compared
        changed["measurement"] = {"protocol": "interleaved", "repeats": 2}
        write(current, "BENCH_serve.json", changed)
        write(baseline, "BENCH_serve.json", serve_payload(pack_gain=1.6))
        assert run_tool(current, baseline) == 0

    def test_same_measurement_protocol_still_compared(self, roots):
        current, baseline = roots
        new, old = serve_payload(pack_gain=0.5), serve_payload(pack_gain=1.6)
        for payload in (new, old):
            payload["measurement"] = {"protocol": "interleaved", "repeats": 2}
        write(current, "BENCH_serve.json", new)
        write(baseline, "BENCH_serve.json", old)
        assert run_tool(current, baseline) == 1

    def test_metric_missing_from_baseline_skipped(self, roots):
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload())
        old = serve_payload()
        del old["packing"]
        write(baseline, "BENCH_serve.json", old)
        assert run_tool(current, baseline) == 0

    def test_sharding_absent_from_baseline_skipped(self, roots):
        """The first payload carrying the sharding section has no baseline
        for its metrics — clean skip, not a crash or a false failure."""
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(balance=0.1))
        old = serve_payload()
        del old["sharding"]
        write(baseline, "BENCH_serve.json", old)
        assert run_tool(current, baseline) == 0

    def test_null_precision_skipped(self, roots):
        """invalidation_precision is null until a sweep saw a non-empty
        cache; a null on either side must skip, never compare."""
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(precision=None))
        write(baseline, "BENCH_serve.json", serve_payload(precision=0.4))
        assert run_tool(current, baseline) == 0

    def test_corrupt_baseline_file_skipped(self, roots):
        """A truncated/mangled baseline reads as "no baseline", not a
        crash — a broken baseline can never prove a regression."""
        current, baseline = roots
        write(current, "BENCH_serve.json", serve_payload(best_speedup=0.1))
        (baseline / "BENCH_serve.json").write_text('{"best_speedup": 2.0')
        assert run_tool(current, baseline) == 0

    def test_corrupt_current_file_skipped(self, roots):
        current, baseline = roots
        (current / "BENCH_serve.json").write_text("not json at all")
        write(baseline, "BENCH_serve.json", serve_payload())
        assert run_tool(current, baseline) == 0

    def test_non_dict_payload_skipped(self, roots):
        current, baseline = roots
        (current / "BENCH_serve.json").write_text('[1, 2, 3]')
        write(baseline, "BENCH_serve.json", serve_payload())
        assert run_tool(current, baseline) == 0

    def test_unknown_git_ref_skips_cleanly(self, tmp_path):
        """Through the git path (no --baseline-dir), a ref that does not
        exist yields a skip for every file, not a crash."""
        write(tmp_path, "BENCH_serve.json", serve_payload())
        assert tool.main(["--repo-root", str(tmp_path),
                          "--baseline-ref", "no-such-ref"]) == 0


def online_payload(recovery_ratio=1.2, smoke=False):
    return {
        "benchmark": "online_loop",
        "smoke": smoke,
        "recovery": {"rmse_recovery_ratio": recovery_ratio},
    }


class TestOnlineHeadline:
    def test_online_recovery_drop_fails(self, roots):
        current, baseline = roots
        write(current, "BENCH_online.json", online_payload(1.0))
        write(baseline, "BENCH_online.json", online_payload(1.5))
        assert run_tool(current, baseline) == 1

    def test_online_recovery_held_passes(self, roots):
        current, baseline = roots
        write(current, "BENCH_online.json", online_payload(1.5))
        write(baseline, "BENCH_online.json", online_payload(1.5))
        assert run_tool(current, baseline) == 0

    def test_online_absent_from_baseline_skipped(self, roots):
        """The first commit shipping BENCH_online.json has no baseline to
        regress against — the gate must skip it, not crash."""
        current, baseline = roots
        write(current, "BENCH_online.json", online_payload(0.5))
        assert run_tool(current, baseline) == 0


class TestAgainstRealRepoFiles:
    def test_headline_schema_matches_committed_files(self):
        """Every headline metric must exist in the committed BENCH files —
        otherwise the guard silently checks nothing."""
        for filename, metrics in tool.HEADLINE.items():
            path = REPO_ROOT / filename
            if not path.is_file():
                continue
            payload = json.loads(path.read_text())
            for metric in metrics:
                assert isinstance(tool.dotted_get(payload, metric),
                                  (int, float)), (
                    f"{filename}: headline metric {metric!r} missing from "
                    f"the committed payload")

    def test_repo_vs_itself_passes(self, tmp_path):
        for filename in tool.HEADLINE:
            source = REPO_ROOT / filename
            if source.is_file():
                (tmp_path / filename).write_text(source.read_text())
        assert tool.main(["--repo-root", str(REPO_ROOT),
                          "--baseline-dir", str(tmp_path)]) == 0
