"""The incremental data plane: apply_deltas vs rebuild equivalence,
GraphStore generation/epoch semantics, and fine-grained invalidation.

The load-bearing property is *bitwise equivalence*: a graph grown through
the O(deltas) copy-on-write path must be indistinguishable from one fully
rebuilt from ``triples()`` + deltas — property-tested here over random
delta batches (new pairs, re-rates, in-batch duplicates), because the
serving tier's bit-identity guarantee rests on it.
"""

import numpy as np
import pytest

from repro.data import RatingGraph
from repro.serve import GraphStore, PredictionService, dedupe_deltas
from repro.serve.dataplane import EntityVersions


def random_graph(rng, num_users=20, num_items=15, num_edges=60):
    users = rng.integers(num_users, size=num_edges)
    items = rng.integers(num_items, size=num_edges)
    values = rng.integers(1, 6, size=num_edges).astype(np.float64)
    triples = np.stack([users, items, values], axis=1).astype(np.float64)
    # The constructor dedupes pairs itself (dict comprehension: last wins).
    return RatingGraph(triples, num_users, num_items)


def random_deltas(rng, graph, size):
    """A delta batch mixing new pairs, re-rates, and in-batch duplicates."""
    users = rng.integers(graph.num_users, size=size)
    items = rng.integers(graph.num_items, size=size)
    values = rng.integers(1, 6, size=size).astype(np.float64)
    return np.stack([users, items, values], axis=1).astype(np.float64)


class TestApplyDeltas:
    def test_random_batches_identical_to_rebuild(self):
        """Property: across random graphs and delta batches, incremental
        derivation is bitwise identical to a from-scratch rebuild."""
        rng = np.random.default_rng(0)
        for trial in range(20):
            graph = random_graph(rng)
            deltas = dedupe_deltas(graph, random_deltas(rng, graph, 12))
            derived = graph.apply_deltas(deltas)
            rebuilt = RatingGraph(np.concatenate([graph.triples(), deltas]),
                                  graph.num_users, graph.num_items)
            assert derived.identical_to(rebuilt), f"trial {trial} diverged"
            assert rebuilt.identical_to(derived)

    def test_chained_batches_identical_to_rebuild(self):
        """Deltas applied over many rounds match one cumulative rebuild."""
        rng = np.random.default_rng(1)
        graph = random_graph(rng)
        derived = graph
        all_triples = [graph.triples()]
        for _ in range(5):
            deltas = dedupe_deltas(derived, random_deltas(rng, derived, 6))
            derived = derived.apply_deltas(deltas)
            all_triples.append(deltas)
        rebuilt = RatingGraph(np.concatenate(all_triples),
                              graph.num_users, graph.num_items)
        assert derived.identical_to(rebuilt)

    def test_parent_graph_untouched(self):
        """Copy-on-write: the parent keeps its adjacency and ratings."""
        graph = RatingGraph(np.array([[0, 0, 3.0]]), 2, 2)
        before = graph.triples().copy()
        derived = graph.apply_deltas(np.array([[0, 1, 5.0], [1, 0, 2.0]]))
        assert np.array_equal(graph.triples(), before)
        assert graph.rating(0, 1) is None
        assert derived.rating(0, 1) == 5.0
        # Untouched rows are shared, touched rows are fresh arrays.
        assert derived.num_edges == 3

    def test_rerate_keeps_delta_value_and_degree(self):
        graph = RatingGraph(np.array([[0, 0, 3.0]]), 2, 2)
        derived = graph.apply_deltas(np.array([[0, 0, 1.0]]))
        assert derived.rating(0, 0) == 1.0
        assert derived.user_degree(0) == 1

    def test_duplicate_pair_in_batch_last_wins(self):
        graph = RatingGraph(np.empty((0, 3)), 2, 2)
        derived = graph.apply_deltas(np.array([[0, 1, 2.0], [0, 1, 4.0]]))
        assert derived.rating(0, 1) == 4.0
        assert derived.num_edges == 1

    def test_empty_deltas_return_self(self):
        graph = RatingGraph(np.array([[0, 0, 3.0]]), 2, 2)
        assert graph.apply_deltas(np.empty((0, 3))) is graph

    def test_out_of_range_ids_rejected(self):
        graph = RatingGraph(np.empty((0, 3)), 2, 2)
        with pytest.raises(ValueError):
            graph.apply_deltas(np.array([[2, 0, 1.0]]))
        with pytest.raises(ValueError):
            graph.apply_deltas(np.array([[0, -1, 1.0]]))

    def test_identical_to_detects_differences(self):
        a = RatingGraph(np.array([[0, 0, 3.0]]), 2, 2)
        assert not a.identical_to(RatingGraph(np.array([[0, 0, 4.0]]), 2, 2))
        assert not a.identical_to(RatingGraph(np.array([[0, 1, 3.0]]), 2, 2))
        assert not a.identical_to(RatingGraph(np.array([[0, 0, 3.0]]), 3, 2))
        assert a.identical_to(RatingGraph(np.array([[0, 0, 3.0]]), 2, 2))


class TestEntityVersions:
    def test_changed_since_tracks_bumps(self):
        versions = EntityVersions(4, 4)
        versions.bump(np.array([1]), np.array([2]), generation=3)
        assert versions.changed_since([1], [], 2)
        assert versions.changed_since([], [2], 0)
        assert not versions.changed_since([1], [2], 3)
        assert not versions.changed_since([0], [3], 0)

    def test_none_and_empty_are_unchanged(self):
        versions = EntityVersions(2, 2)
        versions.bump(np.array([0]), np.array([0]), generation=1)
        assert not versions.changed_since(None, None, 0)
        assert not versions.changed_since([], [], 0)


class TestGraphStore:
    def make_store(self, **kwargs):
        graph = RatingGraph(np.array([[0, 0, 3.0], [1, 1, 4.0]]), 4, 4)
        return GraphStore(graph, np.array([0, 1]), np.array([0, 1]), **kwargs)

    def test_apply_bumps_generation_not_epoch(self):
        store = self.make_store()
        result = store.apply(np.array([[0, 1, 5.0]]))
        assert result.applied == 1
        assert not result.full_invalidation
        assert store.generation == 1
        assert store.epoch == 0

    def test_pool_growth_forces_full_invalidation(self):
        store = self.make_store()
        result = store.apply(np.array([[2, 0, 5.0]]))  # user 2 not in pool
        assert result.full_invalidation
        assert store.epoch == 1
        # The pool grew to contain the new entity.
        assert 2 in store.state.candidate_users

    def test_incremental_off_is_always_full(self):
        store = self.make_store(incremental=False)
        result = store.apply(np.array([[0, 1, 5.0]]))
        assert result.full_invalidation
        assert store.epoch == 1

    def test_noop_batch_notifies_but_does_not_bump(self):
        store = self.make_store()
        seen = []
        store.subscribe(seen.append)
        result = store.apply(np.array([[0, 0, 3.0]]))  # restatement
        assert result.applied == 0 and result.skipped == 1
        assert store.generation == 0
        assert len(seen) == 1 and seen[0].applied == 0

    def test_changed_since_after_apply(self):
        store = self.make_store()
        store.apply(np.array([[0, 1, 5.0]]))
        assert store.changed_since([0], [], 0)
        assert store.changed_since([], [1], 0)
        assert not store.changed_since([1], [0], 0)
        assert not store.changed_since([0], [1], 1)

    def test_verify_mode_asserts_equivalence(self):
        store = self.make_store(verify=True)
        store.apply(np.array([[0, 1, 5.0], [1, 0, 2.0], [0, 0, 1.0]]))
        assert store.generation == 1

    def test_stats_counts(self):
        store = self.make_store()
        store.apply(np.array([[0, 1, 5.0], [0, 0, 3.0]]))  # 1 applied 1 skip
        store.apply(np.array([[2, 2, 1.0]]))               # full (pool growth)
        stats = store.stats()
        assert stats["updates_total"] == 2
        assert stats["applied_total"] == 2
        assert stats["skipped_total"] == 1
        assert stats["partial_invalidations"] == 1
        assert stats["full_invalidations"] == 1

    def test_rating_log_tees_applied_only(self):
        class Log:
            def __init__(self):
                self.batches = []

            def append(self, deltas):
                self.batches.append(np.array(deltas))

        log = Log()
        graph = RatingGraph(np.array([[0, 0, 3.0]]), 4, 4)
        store = GraphStore(graph, np.array([0]), np.array([0]),
                           rating_log=log)
        store.apply(np.array([[0, 0, 3.0]]))  # restatement: no tee
        store.apply(np.array([[0, 1, 5.0], [0, 0, 3.0]]))
        assert len(log.batches) == 1
        assert np.array_equal(log.batches[0], np.array([[0, 1, 5.0]]))

    def test_snapshot_positional_compatibility(self):
        """GraphSnapshot must stay a 5-tuple with generation at index 3
        (the batcher's coalescing key reads graph_state[3])."""
        store = self.make_store()
        snapshot = store.state
        assert snapshot[3] == snapshot.generation
        assert snapshot[4] == snapshot.epoch


class TestServiceIncrementalInvalidation:
    """End-to-end: untouched entries survive, invalidation stays sound."""

    def test_untouched_entries_survive_and_results_stay_exact(
            self, serve_model, ml_split, serve_tasks):
        """An update touching only entities outside an entry's tag spares
        it, and the spared entry still returns bit-identical scores."""
        task_a, task_b = serve_tasks[0], serve_tasks[1]
        with PredictionService.from_split(serve_model, ml_split, serve_tasks) \
                as service:
            scores_a = service.predict(task_a.user, task_a.query_items,
                                       task_a.support_items)
            service.predict(task_b.user, task_b.query_items,
                            task_b.support_items)
            assert len(service.cache) == 2
            # Craft a delta disjoint from task_a's tag: pick a pool user
            # and item that task_a's contexts never touched.
            key_a = next(iter(service.cache._tags))
            tags = dict(service.cache._tags)
            tag_a = next(tag for key, tag in tags.items()
                         if key[2] == task_a.user)
            snapshot = service.graph_store.state
            user = next(int(u) for u in snapshot.candidate_users
                        if int(u) not in tag_a[0]
                        and not any(int(u) in t[0] and key[2] != task_a.user
                                    for key, t in tags.items()))
            item = next(int(i) for i in snapshot.candidate_items
                        if int(i) not in tag_a[1]
                        and not snapshot.graph.has_rating(user, int(i)))
            applied = service.update_ratings(np.array([[user, item, 4.0]]))
            assert applied == 1
            stats = service.cache.stats
            assert stats.entries_spared >= 1
            assert stats.invalidation_precision > 0
            # The spared entry serves a hit that is still bit-identical.
            hits_before = stats.hits
            again = service.predict(task_a.user, task_a.query_items,
                                    task_a.support_items)
            assert np.array_equal(again, scores_a)

    def test_random_update_stream_stays_identical_to_rebuilds(
            self, serve_model, ml_split, serve_tasks):
        """Serving through many incremental updates (verify mode on)
        matches a service rebuilt from scratch at the final graph."""
        from repro.core.predictor import build_serving_graph
        from repro.serve import ServiceConfig

        rng = np.random.default_rng(7)
        graph, users, items = build_serving_graph(ml_split, serve_tasks)
        task = serve_tasks[0]
        deltas = []
        pool_users = [int(u) for u in users if u != task.user]
        for _ in range(8):
            deltas.append([
                int(rng.choice(pool_users)), int(rng.choice(items)),
                float(rng.integers(1, 6))])
        deltas = np.asarray(deltas, dtype=np.float64)

        config = ServiceConfig(incremental_verify=True)
        with PredictionService(serve_model, graph, users, items,
                               config=config) as service:
            for row in deltas:
                service.update_ratings(row[None])
            incremental = service.predict(task.user, task.query_items,
                                          task.support_items)
            final_state = service.graph_store.state

        with PredictionService(serve_model, final_state.graph,
                               final_state.candidate_users,
                               final_state.candidate_items) as rebuilt:
            reference = rebuilt.predict(task.user, task.query_items,
                                        task.support_items)
        assert np.array_equal(incremental, reference)
