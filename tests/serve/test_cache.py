"""ContextCache LRU/TTL behaviour, cache-key sensitivity, and the
entity-tagged fine-grained invalidation path (tags, sweeps, put guard)."""

import numpy as np
import pytest

from repro.serve import (
    ContextCache,
    FrontierBinding,
    FrontierCache,
    context_cache_key,
    frontier_cache_key,
)


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestContextCacheKey:
    def test_equal_inputs_equal_keys(self):
        key_a = context_cache_key(0, "neighborhood", 3, np.array([1, 2]),
                                  np.array([5]), 32, 32, 0.1, 0)
        key_b = context_cache_key(0, "neighborhood", 3, [1, 2], [5],
                                  32, 32, 0.1, 0)
        assert key_a == key_b
        assert hash(key_a) == hash(key_b)

    @pytest.mark.parametrize("field, value", [
        ("epoch", 1),
        ("sampler", "random"),
        ("user", 4),
        ("items", (1, 3)),
        ("supports", (6,)),
        ("n", 16),
        ("m", 16),
        ("reveal", 0.2),
        ("seed", 9),
    ])
    def test_every_field_discriminates(self, field, value):
        base = dict(epoch=0, sampler="neighborhood", user=3,
                    items=(1, 2), supports=(5,), n=32, m=32, reveal=0.1, seed=0)
        changed = {**base, field: value}

        def make(d):
            return context_cache_key(d["epoch"], d["sampler"], d["user"],
                                     d["items"], d["supports"], d["n"], d["m"],
                                     d["reveal"], d["seed"])

        assert make(base) != make(changed)


class TestContextCache:
    def test_get_put_roundtrip(self):
        cache = ContextCache(max_entries=4)
        assert cache.get(("k",)) is None
        cache.put(("k",), "value")
        assert cache.get(("k",)) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ContextCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))          # refresh a; b is now LRU
        cache.put(("c",), 3)
        assert ("a",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_ttl_expires_entries(self):
        clock = FakeClock()
        cache = ContextCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put(("k",), "value")
        clock.now = 5.0
        assert cache.get(("k",)) == "value"
        clock.now = 20.0
        assert cache.get(("k",)) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_invalidate_clears_everything(self):
        cache = ContextCache(max_entries=4)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_hit_rate(self):
        cache = ContextCache(max_entries=4)
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("nope",))
        assert cache.stats.hit_rate == 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ContextCache(max_entries=0)
        with pytest.raises(ValueError):
            ContextCache(ttl_seconds=0.0)


class TestEntityInvalidation:
    def test_evicts_only_intersecting_tags(self):
        cache = ContextCache(max_entries=8)
        cache.put(("a",), 1, users=[1, 2], items=[10])
        cache.put(("b",), 2, users=[3], items=[11, 12])
        cache.put(("c",), 3, users=[4], items=[13])
        evicted, spared = cache.invalidate_entities(users=[2], items=[12])
        assert (evicted, spared) == (2, 1)
        assert ("a",) not in cache and ("b",) not in cache
        assert cache.get(("c",)) == 3
        assert cache.stats.partial_invalidations == 1
        assert cache.stats.entries_evicted == 2
        assert cache.stats.entries_spared == 1
        assert cache.stats.invalidation_precision == pytest.approx(1 / 3)

    def test_untagged_entries_fall_in_every_sweep(self):
        cache = ContextCache(max_entries=8)
        cache.put(("untagged",), 1)
        cache.put(("tagged",), 2, users=[5], items=[])
        evicted, spared = cache.invalidate_entities(users=[99], items=[])
        assert (evicted, spared) == (1, 1)
        assert ("untagged",) not in cache
        assert ("tagged",) in cache

    def test_precision_none_until_first_sweep(self):
        cache = ContextCache(max_entries=4)
        assert cache.stats.invalidation_precision is None
        cache.invalidate_entities(users=[1], items=[])  # empty cache
        assert cache.stats.invalidation_precision is None

    def test_full_invalidate_drops_tags_too(self):
        cache = ContextCache(max_entries=4)
        cache.put(("a",), 1, users=[1], items=[2])
        cache.invalidate()
        assert not cache._tags

    def test_lru_eviction_pops_tag(self):
        cache = ContextCache(max_entries=1)
        cache.put(("a",), 1, users=[1], items=[])
        cache.put(("b",), 2, users=[2], items=[])
        assert list(cache._tags) == [("b",)]

    def test_put_guard_drops_stale_entry(self):
        cache = ContextCache(max_entries=4)
        accepted = cache.put(("stale",), 1, users=[1], items=[2],
                             generation=0,
                             guard=lambda users, items, gen: True)
        assert not accepted
        assert ("stale",) not in cache
        assert cache.stats.stale_puts == 1

    def test_put_guard_passes_fresh_entry(self):
        cache = ContextCache(max_entries=4)
        seen = {}

        def guard(users, items, generation):
            seen["args"] = (tuple(users), tuple(items), generation)
            return False

        assert cache.put(("fresh",), 1, users=[1], items=[2],
                         generation=7, guard=guard)
        assert cache.get(("fresh",)) == 1
        assert seen["args"] == ((1,), (2,), 7)


class TestReverseIndex:
    """The per-entity reverse index that makes sweeps O(touched)."""

    def test_reput_retags_old_entities_no_longer_evict(self):
        cache = ContextCache(max_entries=8)
        cache.put(("k",), 1, users=[1], items=[])
        # Same key re-put under a different tag: the old index entry must
        # be unlinked, or a sweep on user 1 would still evict it.
        cache.put(("k",), 2, users=[2], items=[])
        evicted, spared = cache.invalidate_entities(users=[1], items=[])
        assert (evicted, spared) == (0, 1)
        assert cache.get(("k",)) == 2
        evicted, spared = cache.invalidate_entities(users=[2], items=[])
        assert (evicted, spared) == (1, 0)
        assert ("k",) not in cache

    def test_reput_from_tagged_to_untagged_falls_in_every_sweep(self):
        cache = ContextCache(max_entries=8)
        cache.put(("k",), 1, users=[1], items=[])
        cache.put(("k",), 2)
        evicted, _ = cache.invalidate_entities(users=[99], items=[])
        assert evicted == 1 and ("k",) not in cache

    def test_index_is_empty_after_all_paths_remove_a_key(self):
        clock = FakeClock()
        cache = ContextCache(max_entries=2, ttl_seconds=5.0, clock=clock)
        cache.put(("ttl",), 1, users=[1], items=[10])
        clock.now += 6.0
        assert cache.get(("ttl",)) is None  # TTL expiry unlinks
        cache.put(("a",), 1, users=[2], items=[])
        cache.put(("b",), 2, users=[3], items=[])
        cache.put(("c",), 3, users=[4], items=[])  # LRU eviction unlinks
        cache.invalidate_entities(users=[3, 4], items=[])  # sweep unlinks
        cache.invalidate()  # full clear
        assert not cache._user_index and not cache._item_index
        assert not cache._untagged and not cache._tags

    def test_sweep_touches_only_changed_entities_key_sets(self):
        cache = ContextCache(max_entries=64)
        for key in range(32):
            cache.put((key,), key, users=[key], items=[1000 + key])
        evicted, spared = cache.invalidate_entities(users=[5], items=[1007])
        assert (evicted, spared) == (2, 30)
        assert (5,) not in cache and (7,) not in cache


class TestFrontierCacheKey:
    def test_equal_inputs_equal_keys(self):
        a = frontier_cache_key(1, "neighborhood", 3, [4, 5], [6], 8, 8, 0, 1, 2)
        b = frontier_cache_key(1, "neighborhood", 3, (4, 5), (6,), 8, 8, 0, 1, 2)
        assert a == b and hash(a) == hash(b)

    @pytest.mark.parametrize("field, value", [
        ("graph_epoch", 2), ("sampler_name", "random"), ("user", 9),
        ("query_items", (4,)), ("support_items", (6, 7)),
        ("context_users", 9), ("context_items", 9), ("seed", 1),
        ("sample_index", 3), ("chunk_start", 5),
    ])
    def test_every_field_discriminates(self, field, value):
        base = dict(graph_epoch=1, sampler_name="neighborhood", user=3,
                    query_items=(4, 5), support_items=(6,), context_users=8,
                    context_items=8, seed=0, sample_index=1, chunk_start=2)
        changed = dict(base, **{field: value})
        assert frontier_cache_key(**base) != frontier_cache_key(**changed)

    def test_reveal_fraction_is_not_a_key_input(self):
        # Frontiers precede the reveal draw; the cached rng state replays
        # it, so the key deliberately has no reveal_fraction parameter.
        import inspect
        assert "reveal_fraction" not in inspect.signature(
            frontier_cache_key).parameters


class TestFrontierBinding:
    @staticmethod
    def _binding(cache, **kwargs):
        return FrontierBinding(cache, lambda start: ("chunk", start), **kwargs)

    def test_store_then_load_roundtrip_with_hooks(self):
        cache = FrontierCache(max_entries=8)
        events = []
        binding = self._binding(cache, on_hit=lambda: events.append("hit"),
                                on_miss=lambda: events.append("miss"))
        users = np.array([1, 2])
        items = np.array([3])
        assert binding.load(0) is None
        binding.store(0, users, items, {"state": 42})
        got_users, got_items, rng_state = binding.load(0)
        assert np.array_equal(got_users, users)
        assert np.array_equal(got_items, items)
        assert rng_state == {"state": 42}
        assert events == ["miss", "hit"]
        assert binding.load(5) is None  # other chunks unaffected

    def test_store_tags_sampled_entities(self):
        cache = FrontierCache(max_entries=8)
        binding = self._binding(cache)
        binding.store(0, np.array([1, 2]), np.array([30]), "state")
        evicted, _ = cache.invalidate_entities(users=[], items=[30])
        assert evicted == 1 and binding.load(0) is None

    def test_guard_drops_stale_frontier(self):
        cache = FrontierCache(max_entries=8)
        seen = {}

        def guard(users, items, generation):
            seen["generation"] = generation
            return True  # entities changed since the pinned generation

        binding = self._binding(cache, generation=4, guard=guard)
        binding.store(0, np.array([1]), np.array([2]), "state")
        assert seen["generation"] == 4
        assert binding.load(0) is None
        assert cache.stats.stale_puts == 1
