"""ContextCache LRU/TTL behaviour, cache-key sensitivity, and the
entity-tagged fine-grained invalidation path (tags, sweeps, put guard)."""

import numpy as np
import pytest

from repro.serve import ContextCache, context_cache_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestContextCacheKey:
    def test_equal_inputs_equal_keys(self):
        key_a = context_cache_key(0, "neighborhood", 3, np.array([1, 2]),
                                  np.array([5]), 32, 32, 0.1, 0)
        key_b = context_cache_key(0, "neighborhood", 3, [1, 2], [5],
                                  32, 32, 0.1, 0)
        assert key_a == key_b
        assert hash(key_a) == hash(key_b)

    @pytest.mark.parametrize("field, value", [
        ("epoch", 1),
        ("sampler", "random"),
        ("user", 4),
        ("items", (1, 3)),
        ("supports", (6,)),
        ("n", 16),
        ("m", 16),
        ("reveal", 0.2),
        ("seed", 9),
    ])
    def test_every_field_discriminates(self, field, value):
        base = dict(epoch=0, sampler="neighborhood", user=3,
                    items=(1, 2), supports=(5,), n=32, m=32, reveal=0.1, seed=0)
        changed = {**base, field: value}

        def make(d):
            return context_cache_key(d["epoch"], d["sampler"], d["user"],
                                     d["items"], d["supports"], d["n"], d["m"],
                                     d["reveal"], d["seed"])

        assert make(base) != make(changed)


class TestContextCache:
    def test_get_put_roundtrip(self):
        cache = ContextCache(max_entries=4)
        assert cache.get(("k",)) is None
        cache.put(("k",), "value")
        assert cache.get(("k",)) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ContextCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))          # refresh a; b is now LRU
        cache.put(("c",), 3)
        assert ("a",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_ttl_expires_entries(self):
        clock = FakeClock()
        cache = ContextCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put(("k",), "value")
        clock.now = 5.0
        assert cache.get(("k",)) == "value"
        clock.now = 20.0
        assert cache.get(("k",)) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_invalidate_clears_everything(self):
        cache = ContextCache(max_entries=4)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_hit_rate(self):
        cache = ContextCache(max_entries=4)
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("nope",))
        assert cache.stats.hit_rate == 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ContextCache(max_entries=0)
        with pytest.raises(ValueError):
            ContextCache(ttl_seconds=0.0)


class TestEntityInvalidation:
    def test_evicts_only_intersecting_tags(self):
        cache = ContextCache(max_entries=8)
        cache.put(("a",), 1, users=[1, 2], items=[10])
        cache.put(("b",), 2, users=[3], items=[11, 12])
        cache.put(("c",), 3, users=[4], items=[13])
        evicted, spared = cache.invalidate_entities(users=[2], items=[12])
        assert (evicted, spared) == (2, 1)
        assert ("a",) not in cache and ("b",) not in cache
        assert cache.get(("c",)) == 3
        assert cache.stats.partial_invalidations == 1
        assert cache.stats.entries_evicted == 2
        assert cache.stats.entries_spared == 1
        assert cache.stats.invalidation_precision == pytest.approx(1 / 3)

    def test_untagged_entries_fall_in_every_sweep(self):
        cache = ContextCache(max_entries=8)
        cache.put(("untagged",), 1)
        cache.put(("tagged",), 2, users=[5], items=[])
        evicted, spared = cache.invalidate_entities(users=[99], items=[])
        assert (evicted, spared) == (1, 1)
        assert ("untagged",) not in cache
        assert ("tagged",) in cache

    def test_precision_none_until_first_sweep(self):
        cache = ContextCache(max_entries=4)
        assert cache.stats.invalidation_precision is None
        cache.invalidate_entities(users=[1], items=[])  # empty cache
        assert cache.stats.invalidation_precision is None

    def test_full_invalidate_drops_tags_too(self):
        cache = ContextCache(max_entries=4)
        cache.put(("a",), 1, users=[1], items=[2])
        cache.invalidate()
        assert not cache._tags

    def test_lru_eviction_pops_tag(self):
        cache = ContextCache(max_entries=1)
        cache.put(("a",), 1, users=[1], items=[])
        cache.put(("b",), 2, users=[2], items=[])
        assert list(cache._tags) == [("b",)]

    def test_put_guard_drops_stale_entry(self):
        cache = ContextCache(max_entries=4)
        accepted = cache.put(("stale",), 1, users=[1], items=[2],
                             generation=0,
                             guard=lambda users, items, gen: True)
        assert not accepted
        assert ("stale",) not in cache
        assert cache.stats.stale_puts == 1

    def test_put_guard_passes_fresh_entry(self):
        cache = ContextCache(max_entries=4)
        seen = {}

        def guard(users, items, generation):
            seen["args"] = (tuple(users), tuple(items), generation)
            return False

        assert cache.put(("fresh",), 1, users=[1], items=[2],
                         generation=7, guard=guard)
        assert cache.get(("fresh",)) == 1
        assert seen["args"] == ((1,), (2,), 7)
