"""ContextCache LRU/TTL behaviour and cache-key sensitivity."""

import numpy as np
import pytest

from repro.serve import ContextCache, context_cache_key


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


class TestContextCacheKey:
    def test_equal_inputs_equal_keys(self):
        key_a = context_cache_key(0, "neighborhood", 3, np.array([1, 2]),
                                  np.array([5]), 32, 32, 0.1, 0)
        key_b = context_cache_key(0, "neighborhood", 3, [1, 2], [5],
                                  32, 32, 0.1, 0)
        assert key_a == key_b
        assert hash(key_a) == hash(key_b)

    @pytest.mark.parametrize("field, value", [
        ("generation", 1),
        ("sampler", "random"),
        ("user", 4),
        ("items", (1, 3)),
        ("supports", (6,)),
        ("n", 16),
        ("m", 16),
        ("reveal", 0.2),
        ("seed", 9),
    ])
    def test_every_field_discriminates(self, field, value):
        base = dict(generation=0, sampler="neighborhood", user=3,
                    items=(1, 2), supports=(5,), n=32, m=32, reveal=0.1, seed=0)
        changed = {**base, field: value}

        def make(d):
            return context_cache_key(d["generation"], d["sampler"], d["user"],
                                     d["items"], d["supports"], d["n"], d["m"],
                                     d["reveal"], d["seed"])

        assert make(base) != make(changed)


class TestContextCache:
    def test_get_put_roundtrip(self):
        cache = ContextCache(max_entries=4)
        assert cache.get(("k",)) is None
        cache.put(("k",), "value")
        assert cache.get(("k",)) == "value"
        assert cache.stats.hits == 1
        assert cache.stats.misses == 1

    def test_lru_evicts_least_recently_used(self):
        cache = ContextCache(max_entries=2)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.get(("a",))          # refresh a; b is now LRU
        cache.put(("c",), 3)
        assert ("a",) in cache
        assert ("b",) not in cache
        assert cache.stats.evictions == 1

    def test_ttl_expires_entries(self):
        clock = FakeClock()
        cache = ContextCache(max_entries=4, ttl_seconds=10.0, clock=clock)
        cache.put(("k",), "value")
        clock.now = 5.0
        assert cache.get(("k",)) == "value"
        clock.now = 20.0
        assert cache.get(("k",)) is None
        assert cache.stats.expirations == 1
        assert len(cache) == 0

    def test_invalidate_clears_everything(self):
        cache = ContextCache(max_entries=4)
        cache.put(("a",), 1)
        cache.put(("b",), 2)
        cache.invalidate()
        assert len(cache) == 0
        assert cache.stats.invalidations == 1

    def test_hit_rate(self):
        cache = ContextCache(max_entries=4)
        cache.put(("k",), 1)
        cache.get(("k",))
        cache.get(("nope",))
        assert cache.stats.hit_rate == 0.5

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            ContextCache(max_entries=0)
        with pytest.raises(ValueError):
            ContextCache(ttl_seconds=0.0)
