"""MicroBatcher coalescing, deadlines, and close semantics."""

import numpy as np
import pytest

from repro.serve import MicroBatcher, PredictRequest, ServiceClosedError, group_requests


def make_request(user=1, items=(2, 3), supports=(7,)):
    return PredictRequest(user=user,
                          item_ids=np.array(items, dtype=np.int64),
                          support_items=np.array(supports, dtype=np.int64))


class TestGroupRequests:
    def test_identical_requests_coalesce(self):
        a, b = make_request(), make_request()
        groups = group_requests([a, b])
        assert len(groups) == 1
        assert groups[0][1] == [a, b]

    def test_different_items_stay_separate(self):
        a = make_request(items=(2, 3))
        b = make_request(items=(3, 2))  # order matters: different request
        groups = group_requests([a, b])
        assert len(groups) == 2

    def test_first_seen_order_preserved(self):
        a = make_request(user=5)
        b = make_request(user=1)
        groups = group_requests([a, b, make_request(user=5)])
        assert [g[1][0].user for g in groups] == [5, 1]


class TestMicroBatcher:
    def test_batch_respects_max_size(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=1.0)
        for _ in range(3):
            batcher.submit(make_request())
        assert len(batcher.next_batch(0.1)) == 2
        assert len(batcher.next_batch(0.1)) == 1
        assert batcher.depth == 0

    def test_empty_queue_returns_empty_batch(self):
        batcher = MicroBatcher()
        assert batcher.next_batch(0.01) == []

    def test_zero_wait_ships_first_request_alone(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.0)
        batcher.submit(make_request())
        batcher.submit(make_request())
        assert len(batcher.next_batch(0.1)) == 1

    def test_deadline_via_fake_clock(self):
        clock_value = [0.0]
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.01,
                               clock=lambda: clock_value[0])
        batcher.submit(make_request())
        batcher.submit(make_request())
        clock_value[0] = 1.0  # first get succeeds, then the deadline is past
        batch = batcher.next_batch(0.1)
        assert len(batch) >= 1

    def test_close_then_drained_raises(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.0)
        batcher.submit(make_request())
        batcher.close()
        assert len(batcher.next_batch(0.1)) == 1  # drains the queued request
        with pytest.raises(ServiceClosedError):
            batcher.next_batch(0.1)

    def test_drain_returns_pending(self):
        batcher = MicroBatcher()
        request = make_request()
        batcher.submit(request)
        batcher.close()
        assert batcher.drain() == [request]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_seconds=-1.0)
