"""MicroBatcher coalescing, deadlines, bucketing, and close semantics."""

import time

import numpy as np
import pytest

from repro.serve import MicroBatcher, PredictRequest, ServiceClosedError, group_requests


def make_request(user=1, items=(2, 3), supports=(7,), budgets=(None, None)):
    return PredictRequest(user=user,
                          item_ids=np.array(items, dtype=np.int64),
                          support_items=np.array(supports, dtype=np.int64),
                          context_users=budgets[0], context_items=budgets[1])


def budget_bucket(request):
    return (request.context_users, request.context_items)


class TestGroupRequests:
    def test_identical_requests_coalesce(self):
        a, b = make_request(), make_request()
        groups = group_requests([a, b])
        assert len(groups) == 1
        assert groups[0][1] == [a, b]

    def test_different_items_stay_separate(self):
        a = make_request(items=(2, 3))
        b = make_request(items=(3, 2))  # order matters: different request
        groups = group_requests([a, b])
        assert len(groups) == 2

    def test_first_seen_order_preserved(self):
        a = make_request(user=5)
        b = make_request(user=1)
        groups = group_requests([a, b, make_request(user=5)])
        assert [g[1][0].user for g in groups] == [5, 1]


class TestMicroBatcher:
    def test_batch_respects_max_size(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=1.0)
        for _ in range(3):
            batcher.submit(make_request())
        assert len(batcher.next_batch(0.1)) == 2
        assert len(batcher.next_batch(0.1)) == 1
        assert batcher.depth == 0

    def test_empty_queue_returns_empty_batch(self):
        batcher = MicroBatcher()
        assert batcher.next_batch(0.01) == []

    def test_zero_wait_ships_first_request_alone(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.0)
        batcher.submit(make_request())
        batcher.submit(make_request())
        assert len(batcher.next_batch(0.1)) == 1

    def test_deadline_via_fake_clock(self):
        clock_value = [0.0]
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.01,
                               clock=lambda: clock_value[0])
        batcher.submit(make_request())
        batcher.submit(make_request())
        clock_value[0] = 1.0  # first get succeeds, then the deadline is past
        batch = batcher.next_batch(0.1)
        assert len(batch) >= 1

    def test_close_then_drained_raises(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.0)
        batcher.submit(make_request())
        batcher.close()
        assert len(batcher.next_batch(0.1)) == 1  # drains the queued request
        with pytest.raises(ServiceClosedError):
            batcher.next_batch(0.1)

    def test_drain_returns_pending(self):
        batcher = MicroBatcher()
        request = make_request()
        batcher.submit(request)
        batcher.close()
        assert batcher.drain() == [request]

    def test_rejects_bad_config(self):
        with pytest.raises(ValueError):
            MicroBatcher(max_batch_size=0)
        with pytest.raises(ValueError):
            MicroBatcher(max_wait_seconds=-1.0)

    def test_budget_overrides_break_coalescing(self):
        a = make_request(budgets=(16, 16))
        b = make_request(budgets=(None, None))
        assert len(group_requests([a, b])) == 2  # different contexts


class FakeClock:
    def __init__(self, now=100.0):
        self.now = now

    def __call__(self):
        return self.now

    def advance(self, seconds):
        self.now += seconds


class TestClockStamps:
    """All request timestamps come from the batcher's one injectable clock,
    so stamps and deadline flushes agree — the mixed perf_counter/monotonic
    clocks bug made latency histograms lie under a fake clock."""

    def test_submit_stamps_enqueued_at_from_batcher_clock(self):
        clock = FakeClock(now=500.0)
        batcher = MicroBatcher(clock=clock)
        request = make_request()
        assert request.enqueued_at != 500.0  # default stamp, pre-submit
        batcher.submit(request)
        assert request.enqueued_at == 500.0

    def test_dequeue_and_batch_form_stamps(self):
        clock = FakeClock(now=10.0)
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.0,
                               clock=clock)
        request = make_request()
        batcher.submit(request)
        clock.advance(3.0)
        (got,) = batcher.next_batch(0.1)
        assert got is request
        assert got.enqueued_at == 10.0
        assert got.dequeued_at == 13.0
        assert got.batch_formed_at == 13.0

    def test_queue_wait_measurable_under_fake_clock(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.05,
                               clock=clock)
        early = make_request(user=1)
        batcher.submit(early)
        clock.advance(5.0)
        late = make_request(user=2)
        batcher.submit(late)
        batch = batcher.next_batch(0.1)
        waits = {r.user: r.dequeued_at - r.enqueued_at for r in batch}
        assert waits[1] == 5.0
        assert waits[2] == 0.0

    def test_every_batch_member_shares_batch_formed_at(self):
        batcher = MicroBatcher(max_batch_size=4, max_wait_seconds=0.2)
        for user in range(3):
            batcher.submit(make_request(user=user))
        batch = batcher.next_batch(0.1)
        assert len(batch) == 3
        formed = {r.batch_formed_at for r in batch}
        assert len(formed) == 1
        for r in batch:
            assert r.enqueued_at <= r.dequeued_at <= r.batch_formed_at

    def test_parked_request_is_restamped_on_final_pop(self):
        clock = FakeClock()
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.0,
                               clock=clock, bucket_key=budget_bucket)
        a = make_request(budgets=(8, 8))
        b = make_request(budgets=(16, 16))
        batcher.submit(a)
        batcher.submit(b)
        first = batcher.next_batch(0.1)
        assert [r.context_users for r in first] == [8]
        clock.advance(2.0)
        second = batcher.next_batch(0.1)
        assert second == [b]
        # The park time counts as queue wait: dequeued at the final pop.
        assert b.dequeued_at == clock.now
        assert b.dequeued_at - b.enqueued_at == 2.0


class TestBucketedBatcher:
    def test_batches_are_bucket_homogeneous(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.01,
                               bucket_key=budget_bucket)
        small = [make_request(user=u, budgets=(16, 16)) for u in range(2)]
        large = [make_request(user=u, budgets=(32, 32)) for u in range(2)]
        for request in (small[0], large[0], small[1], large[1]):
            batcher.submit(request)
        first = batcher.next_batch(0.1)
        second = batcher.next_batch(0.1)
        assert [r.user for r in first] == [0, 1]
        assert {budget_bucket(r) for r in first} == {(16, 16)}
        assert {budget_bucket(r) for r in second} == {(32, 32)}
        assert batcher.depth == 0

    def test_parked_requests_lead_the_next_batch(self):
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.01,
                               bucket_key=budget_bucket)
        batcher.submit(make_request(user=0, budgets=(16, 16)))
        batcher.submit(make_request(user=1, budgets=(32, 32)))
        batcher.next_batch(0.1)  # ships bucket (16, 16), parks user 1
        assert batcher.depth == 1
        batcher.submit(make_request(user=2, budgets=(32, 32)))
        batch = batcher.next_batch(0.1)
        assert [r.user for r in batch] == [1, 2]

    def test_deadline_flushes_partial_bucket_with_bounded_latency(self):
        """A lone request in its bucket ships after one wait window — it is
        never held hostage waiting for bucket-mates."""
        batcher = MicroBatcher(max_batch_size=8, max_wait_seconds=0.02,
                               bucket_key=budget_bucket)
        batcher.submit(make_request(budgets=(16, 16)))
        start = time.perf_counter()
        batch = batcher.next_batch(0.5)
        elapsed = time.perf_counter() - start
        assert len(batch) == 1
        assert elapsed < 0.25  # one wait window + slack, not the full timeout

    def test_depth_and_drain_include_parked_requests(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.01,
                               bucket_key=budget_bucket)
        keep = make_request(user=0, budgets=(16, 16))
        parked = make_request(user=1, budgets=(32, 32))
        batcher.submit(keep)
        batcher.submit(parked)
        assert batcher.next_batch(0.1) == [keep]
        assert batcher.depth == 1
        batcher.close()
        assert batcher.drain() == [parked]
        assert batcher.depth == 0

    def test_parked_request_survives_close(self):
        batcher = MicroBatcher(max_batch_size=2, max_wait_seconds=0.01,
                               bucket_key=budget_bucket)
        batcher.submit(make_request(user=0, budgets=(16, 16)))
        batcher.submit(make_request(user=1, budgets=(32, 32)))
        batcher.next_batch(0.1)  # parks user 1
        batcher.close()
        batch = batcher.next_batch(0.1)  # drained queue, parked remains
        assert [r.user for r in batch] == [1]
        with pytest.raises(ServiceClosedError):
            batcher.next_batch(0.1)
