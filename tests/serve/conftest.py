"""Serving-layer fixtures: a small model, tasks, and a service factory."""

import pytest

from repro.core import HIRE, HIREConfig
from repro.eval.tasks import build_eval_tasks


@pytest.fixture(scope="session")
def serve_model(ml_dataset):
    """Untrained-but-deterministic HIRE (weights seeded; serving tests only
    care that scores are reproducible, not that they are good)."""
    return HIRE(ml_dataset, HIREConfig(num_blocks=2, num_heads=2, attr_dim=8))


@pytest.fixture(scope="session")
def serve_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=2, seed=1, max_tasks=6)
