"""BoundedQueue backpressure and WorkerPool lifecycle."""

import threading
import time

import pytest

from repro.serve import BoundedQueue, QueueFullError, ServiceClosedError, WorkerPool


class TestBoundedQueue:
    def test_fifo_order(self):
        queue = BoundedQueue(4)
        for value in range(3):
            queue.put(value)
        assert [queue.get(0.1) for _ in range(3)] == [0, 1, 2]

    def test_put_never_blocks_sheds_load(self):
        queue = BoundedQueue(2)
        queue.put("a")
        queue.put("b")
        start = time.perf_counter()
        with pytest.raises(QueueFullError):
            queue.put("c")
        assert time.perf_counter() - start < 0.5  # shed, not blocked
        assert len(queue) == 2

    def test_get_times_out_with_none(self):
        queue = BoundedQueue(2)
        assert queue.get(0.01) is None

    def test_put_after_close_raises(self):
        queue = BoundedQueue(2)
        queue.close()
        with pytest.raises(ServiceClosedError):
            queue.put("x")

    def test_get_drains_then_raises_after_close(self):
        queue = BoundedQueue(4)
        queue.put("a")
        pending = queue.close()
        assert pending == ["a"]
        assert queue.get(0.1) == "a"  # still drainable
        with pytest.raises(ServiceClosedError):
            queue.get(0.1)

    def test_close_wakes_blocked_getter(self):
        queue = BoundedQueue(2)
        errors = []

        def getter():
            try:
                queue.get(5.0)
            except ServiceClosedError as error:
                errors.append(error)

        thread = threading.Thread(target=getter)
        thread.start()
        time.sleep(0.05)
        queue.close()
        thread.join(2.0)
        assert not thread.is_alive()

    def test_drain_empties_queue(self):
        queue = BoundedQueue(4)
        for value in range(3):
            queue.put(value)
        assert queue.drain() == [0, 1, 2]
        assert len(queue) == 0

    def test_rejects_nonpositive_maxsize(self):
        with pytest.raises(ValueError):
            BoundedQueue(0)


class TestWorkerPool:
    def test_runs_loop_until_false(self):
        calls = []

        def loop(stop):
            calls.append(1)
            return False if len(calls) >= 3 else None

        pool = WorkerPool(loop, num_workers=1)
        pool.start()
        pool.join(2.0)
        assert pool.alive_count() == 0
        assert len(calls) == 3

    def test_close_signals_stop(self):
        started = threading.Event()

        def loop(stop):
            started.set()
            stop.wait(0.01)

        pool = WorkerPool(loop, num_workers=2)
        pool.start()
        assert started.wait(2.0)
        pool.close(2.0)
        assert pool.alive_count() == 0
        assert pool.stopping

    def test_join_does_not_signal_stop(self):
        def loop(stop):
            return False

        pool = WorkerPool(loop, num_workers=1)
        pool.start()
        pool.join(2.0)
        assert not pool.stopping

    def test_rejects_nonpositive_workers(self):
        with pytest.raises(ValueError):
            WorkerPool(lambda stop: False, num_workers=0)
