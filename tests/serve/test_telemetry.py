"""The serve-tier telemetry plane: traces, windows, SLO health, export.

Everything here rides the same acceptance property as the rest of the
serve tests: telemetry is passive, so scores never change — plus the
plane's own contracts: stage timings that add up, health() that breaches
under an injected fake clock, and an exporter that drains on close.
"""

import threading
import time

import numpy as np
import pytest

from repro import obs
from repro.core import HIREPredictor
from repro.obs import SLORule, read_run
from repro.serve import PredictionService, QueueFullError, ServiceConfig


class FakeClock:
    """Monotonic fake: starts at a real offset so real-clock defaults in
    unrelated components stay sane."""

    def __init__(self, now=1000.0):
        self.now = now
        self._lock = threading.Lock()

    def __call__(self):
        with self._lock:
            return self.now

    def advance(self, seconds):
        with self._lock:
            self.now += seconds


def make_service(model, split, tasks, clock=None, **overrides):
    config = ServiceConfig(**overrides)
    kwargs = {} if clock is None else {"clock": clock}
    return PredictionService.from_split(model, split, tasks, config=config,
                                        **kwargs)


@pytest.fixture(scope="module")
def sequential_scores(serve_model, ml_split, serve_tasks):
    predictor = HIREPredictor(serve_model, ml_split, serve_tasks, seed=0,
                              per_task_rng=True)
    return [predictor.predict_task(task) for task in serve_tasks]


class TestTracingIsPassive:
    def test_traced_scores_equal_untraced_and_sequential(
            self, serve_model, ml_split, serve_tasks, sequential_scores,
            tmp_path):
        with make_service(serve_model, ml_split, serve_tasks,
                          trace_enabled=False) as service:
            untraced = [service.predict(t.user, t.query_items,
                                        t.support_items)
                        for t in serve_tasks]
        with make_service(serve_model, ml_split, serve_tasks,
                          trace_enabled=True,
                          trace_sink=str(tmp_path / "traces.jsonl"),
                          export_path=str(tmp_path / "telemetry.jsonl"),
                          export_interval_seconds=0.05) as service:
            traced = [service.predict(t.user, t.query_items, t.support_items)
                      for t in serve_tasks]
        for expected, a, b in zip(sequential_scores, untraced, traced):
            assert np.array_equal(expected, a)
            assert np.array_equal(expected, b)


class TestStageAttribution:
    def test_every_completed_request_is_traced(self, serve_model, ml_split,
                                               serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks,
                          max_batch_size=4) as service:
            futures = [service.submit(t.user, t.query_items, t.support_items)
                       for t in serve_tasks]
            for future in futures:
                future.result(60)
            assert service.tracer.completed == len(serve_tasks)
            totals = service.tracer.stage_totals()
            assert totals["total"]["count"] == len(serve_tasks)
            for trace in service.tracer.recent():
                stages = trace["stages"]
                assert all(v >= 0.0 for v in stages.values())
                # Stage times cannot exceed end-to-end latency (respond
                # overlaps the tail, so compare the pipeline stages).
                pipeline = (stages["enqueue"] + stages["batch_form"]
                            + stages["assemble"] + stages["pack"]
                            + stages["forward"])
                assert pipeline <= trace["total_seconds"] + 1e-6

    def test_stage_windows_populated(self, serve_model, ml_split,
                                     serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
            snapshot = service.metrics.snapshot()
            for stage in obs.TRACE_STAGES:
                snap = snapshot[f"serve.stage.{stage}_seconds"]
                assert snap["type"] == "windowed_histogram"
                assert snap["count"] == 1
            assert snapshot["serve.window.latency_seconds"]["count"] == 1

    def test_trace_disabled_leaves_no_trace_state(self, serve_model,
                                                  ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks,
                          trace_enabled=False) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
            assert service.tracer is None
            snapshot = service.metrics.snapshot()
            assert not any(name.startswith("serve.stage.")
                           for name in snapshot)
            assert "trace" not in service.stats()

    def test_stats_and_report_surface_traces(self, serve_model, ml_split,
                                             serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
            stats = service.stats()
            assert stats["trace"]["completed"] == 1
            assert stats["trace"]["stage_totals"]["forward"]["count"] == 1
            report = service.report()
            assert "forward" in report
            assert "health: ok" in report

    def test_packed_path_span_attribution(self, serve_model, ml_split,
                                          serve_tasks):
        """Mixed context budgets force the packed path; its work must show
        up under serve/forward/serve/pack in the span tree."""
        budgets = [(20, 26), (24, 30), (18, 28)]  # one (24, 32) bucket
        with make_service(serve_model, ml_split, serve_tasks,
                          max_batch_size=len(budgets),
                          max_wait_seconds=0.25) as service:
            obs.reset_spans()
            with obs.profiling():
                task = serve_tasks[0]
                futures = [service.submit(task.user, task.query_items,
                                          task.support_items,
                                          context_users=n, context_items=m)
                           for n, m in budgets]
                for future in futures:
                    future.result(60)
            totals = obs.span_totals()
        assert totals["serve/assemble"].count >= 1
        assert totals["serve/forward"].count >= 1
        pack = totals["serve/forward/serve/pack"]
        assert pack.count >= 1
        assert pack.total_seconds <= totals["serve/forward"].total_seconds
        # The trace agrees: the pack stage is non-zero on the packed path.
        assert service.tracer.stage_totals()["pack"]["total_seconds"] > 0


class TestHealth:
    def test_idle_service_is_ok_with_no_data(self, serve_model, ml_split,
                                             serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            health = service.health()
            assert health["state"] == "ok"
            states = {s["name"]: s["state"] for s in health["slos"]}
            assert states["latency_p99"] == "no_data"
            assert health["workers_alive"] == 1
            assert not health["closed"]

    def test_fake_clock_latency_breaches_p99_rule(
            self, serve_model, ml_split, serve_tasks, monkeypatch):
        """The acceptance scenario: a request held 5 fake seconds behind a
        gate violates a 100 ms p99 SLO and health() reports the breach."""
        clock = FakeClock()
        rules = (SLORule(name="latency_p99", probe="latency_p99_seconds",
                         objective="max", threshold=0.1),)
        service = make_service(serve_model, ml_split, serve_tasks,
                               clock=clock, slo_rules=rules)
        try:
            gate = threading.Event()
            original = service._process_batch

            def gated(batch):
                gate.wait(30)
                original(batch)

            monkeypatch.setattr(service, "_process_batch", gated)
            task = serve_tasks[0]
            future = service.submit(task.user, task.query_items,
                                    task.support_items)
            clock.advance(5.0)  # the request ages behind the gate
            gate.set()
            future.result(60)
            health = service.health()
            assert health["state"] == "breach"
            latency = {s["name"]: s for s in health["slos"]}["latency_p99"]
            assert latency["state"] == "breach"
            assert latency["short_value"] >= 5.0
            assert "breach" in service.report()
        finally:
            service.close()

    def test_shed_rate_probe_counts_rejections(self, serve_model, ml_split,
                                               serve_tasks, monkeypatch):
        service = make_service(serve_model, ml_split, serve_tasks,
                               queue_size=1, max_batch_size=1)
        try:
            gate = threading.Event()
            original = service._process_batch

            def gated(batch):
                gate.wait(30)
                original(batch)

            monkeypatch.setattr(service, "_process_batch", gated)
            task = serve_tasks[0]
            futures, rejected = [], 0
            for _ in range(12):
                try:
                    futures.append(service.submit(task.user, task.query_items,
                                                  task.support_items))
                except QueueFullError:
                    rejected += 1
            assert rejected > 0
            health = service.health()
            shed = {s["name"]: s for s in health["slos"]}["shed_rate"]
            expected = rejected / (rejected + len(futures))
            assert shed["short_value"] == pytest.approx(expected)
            assert shed["state"] == "breach"
            gate.set()
            for future in futures:
                future.result(60)
        finally:
            service.close()

    def test_health_in_stats(self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            stats = service.stats()
            assert stats["health"]["state"] == "ok"
            assert "windows" in stats["health"]


class TestServiceExporter:
    def test_exporter_drains_on_close(self, serve_model, ml_split,
                                      serve_tasks, tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with make_service(serve_model, ml_split, serve_tasks,
                          export_path=str(path),
                          export_interval_seconds=3600.0) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
        # Interval far in the future: the only export is the drain on
        # close, and it must already hold the request's telemetry.
        records = read_run(path)
        exports = [r for r in records if r["type"] == "export"]
        assert len(exports) == 1
        final = exports[-1]
        assert final["metrics"]["serve.completed_total"]["value"] == 1.0
        assert final["health"]["state"] in ("ok", "warn", "breach")
        assert records[-1]["type"] == "summary"

    def test_periodic_export_ticks(self, serve_model, ml_split, serve_tasks,
                                   tmp_path):
        path = tmp_path / "telemetry.jsonl"
        with make_service(serve_model, ml_split, serve_tasks,
                          export_path=str(path),
                          export_interval_seconds=0.02) as service:
            deadline = time.monotonic() + 5.0
            while (service.exporter.num_exports < 2
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert service.exporter.num_exports >= 2

    def test_no_export_path_no_exporter(self, serve_model, ml_split,
                                        serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            assert service.exporter is None


class TestTraceSinkFromService:
    def test_sink_holds_every_completed_trace(self, serve_model, ml_split,
                                              serve_tasks, tmp_path):
        path = tmp_path / "traces.jsonl"
        with make_service(serve_model, ml_split, serve_tasks,
                          trace_sink=str(path)) as service:
            futures = [service.submit(t.user, t.query_items, t.support_items)
                       for t in serve_tasks]
            for future in futures:
                future.result(60)
        traces = [r for r in read_run(path) if r["type"] == "trace"]
        assert len(traces) == len(serve_tasks)
        assert all(set(t["stages"]) == set(obs.TRACE_STAGES) for t in traces)


class TestConfigValidation:
    def test_window_bounds(self):
        with pytest.raises(ValueError):
            ServiceConfig(window_seconds=0.0)
        with pytest.raises(ValueError):
            ServiceConfig(short_window_seconds=120.0, window_seconds=60.0)
        with pytest.raises(ValueError):
            ServiceConfig(trace_buffer=0)
        with pytest.raises(ValueError):
            ServiceConfig(export_interval_seconds=0.0)
