"""Online mutations under load: delta dedupe, rating-log tee, and hot swaps
or graph updates that land mid-flight without losing a single future."""

import threading

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor
from repro.eval.tasks import build_eval_tasks
from repro.online import RatingLog
from repro.serve import (
    ModelRegistry,
    PredictionService,
    RequestError,
    ServiceConfig,
)


def make_service(models, split, tasks, rating_log=None, **overrides):
    return PredictionService.from_split(models, split, tasks,
                                        config=ServiceConfig(**overrides),
                                        rating_log=rating_log)


def references(model, split, tasks):
    predictor = HIREPredictor(model, split, tasks, seed=0, per_task_rng=True)
    return [predictor.predict_task(task) for task in tasks]


@pytest.fixture(scope="module")
def other_serve_model(ml_dataset):
    return HIRE(ml_dataset, HIREConfig(num_blocks=2, num_heads=2, attr_dim=8,
                                       seed=7))


class TestDeltaDedupe:
    def test_batch_keeps_most_recent_per_pair(self, serve_model, ml_split,
                                              serve_tasks):
        log = RatingLog()
        task = serve_tasks[0]
        user, item = task.user, int(task.query_items[0])
        with make_service(serve_model, ml_split, serve_tasks,
                          rating_log=log) as service:
            applied = service.update_ratings([[user, item, 2.0],
                                              [user, item, 5.0]])
            assert applied == 1
            # The tee records exactly what was applied: the LAST value.
            assert np.array_equal(log.since(0), [[user, item, 5.0]])
            with pytest.raises(RequestError, match="already rated"):
                service.submit(user, [item])

    def test_restating_current_values_is_a_noop(self, serve_model, ml_split,
                                                serve_tasks):
        log = RatingLog()
        task = serve_tasks[0]
        user, item = task.user, int(task.query_items[0])
        warm = ml_split.train_ratings()[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          rating_log=log) as service:
            assert service.update_ratings([[user, item, 4.0]]) == 1
            assert service.graph_generation == 1
            # Same value again, plus a warm pair restating its training
            # rating: nothing changes, so nothing is rebuilt or teed.
            assert service.update_ratings([[user, item, 4.0], warm]) == 0
            assert service.graph_generation == 1
            assert len(log) == 1

    def test_mixed_batch_applies_only_the_changes(self, serve_model,
                                                  ml_split, serve_tasks):
        task = serve_tasks[0]
        user = task.user
        first, second = (int(i) for i in task.query_items[:2])
        with make_service(serve_model, ml_split, serve_tasks) as service:
            service.update_ratings([[user, first, 3.0]])
            applied = service.update_ratings([[user, first, 3.0],
                                              [user, second, 2.0],
                                              [user, second, 4.0]])
            assert applied == 1
            assert service.graph_generation == 2


class TestMidFlightSwap:
    def test_responses_match_one_of_the_two_models(
            self, ml_dataset, serve_model, other_serve_model, ml_split,
            serve_tasks):
        """Hot-swapping the registry while requests are in flight: every
        future resolves, and every response is bit-identical to the old or
        the new model's sequential reference — never a blend."""
        ref_old = references(serve_model, ml_split, serve_tasks)
        ref_new = references(other_serve_model, ml_split, serve_tasks)
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_serve_model, activate=False)

        with make_service(registry, ml_split, serve_tasks, num_workers=2,
                          max_batch_size=4, queue_size=256) as service:
            futures = []
            for round_index in range(20):
                for task_index, task in enumerate(serve_tasks):
                    futures.append((task_index, service.submit(
                        task.user, task.query_items, task.support_items)))
                if round_index == 10:
                    registry.activate("v2")
            for task_index, future in futures:
                scores = future.result(60)
                assert (np.array_equal(scores, ref_old[task_index])
                        or np.array_equal(scores, ref_new[task_index]))
            # The swap is visible once the queue drains.
            task = serve_tasks[0]
            assert np.array_equal(
                service.predict(task.user, task.query_items,
                                task.support_items),
                ref_new[0])

    def test_in_flight_requests_survive_rating_their_pairs(
            self, serve_model, ml_split, serve_tasks):
        """Rating a queried pair mid-flight must not fail the already
        admitted futures — they execute against their admission-time graph
        snapshot (bit-identical to the pre-update reference); only NEW
        submits on that pair are refused."""
        reference = references(serve_model, ml_split, serve_tasks)
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          num_workers=2) as service:
            futures = [(i, service.submit(t.user, t.query_items,
                                          t.support_items))
                       for i, t in enumerate(serve_tasks) for _ in range(3)]
            assert service.update_ratings(
                [[task.user, int(task.query_items[0]), 5.0]]) == 1
            for task_index, future in futures:
                assert np.array_equal(future.result(60),
                                      reference[task_index])
            with pytest.raises(RequestError, match="already rated"):
                service.submit(task.user, [int(task.query_items[0])])


class TestConcurrentUpdatesAndSubmits:
    def test_no_future_lost_under_interleaved_graph_updates(
            self, serve_model, ml_split, serve_tasks):
        """A writer thread streams rating deltas (graph rebuilds, generation
        bumps) while the main thread keeps submitting: every future resolves
        with the right shape and no generation mismatch surfaces as an
        error."""
        update_tasks = build_eval_tasks(ml_split, "user", min_query=2,
                                        seed=3, max_tasks=4)
        serve_pairs = {(t.user, int(i))
                       for t in serve_tasks for i in t.query_items}
        update_pairs = [(t.user, int(i)) for t in update_tasks
                        for i in t.query_items
                        if (t.user, int(i)) not in serve_pairs]
        assert update_pairs, "fixture tasks unexpectedly overlap completely"

        applied_total = []
        with make_service(serve_model, ml_split, serve_tasks, num_workers=2,
                          max_batch_size=4, queue_size=512) as service:
            def writer():
                # 99.0 can never equal an existing rating, so every delta
                # is a real change regardless of the pair's prior state.
                for user, item in update_pairs:
                    applied_total.append(
                        service.update_ratings([[user, item, 99.0]]))

            thread = threading.Thread(target=writer)
            futures = []
            thread.start()
            try:
                for _ in range(10):
                    for task in serve_tasks:
                        futures.append((task, service.submit(
                            task.user, task.query_items, task.support_items)))
            finally:
                thread.join()
            for task, future in futures:
                scores = future.result(60)
                assert scores.shape == (len(task.query_items),)
                assert np.isfinite(scores).all()
        unique_pairs = len(set(update_pairs))
        assert sum(applied_total) == unique_pairs
        assert service.graph_generation == unique_pairs
