"""Workload synthesis/persistence/replay, including mixed-shape budgets."""

import numpy as np

from repro.serve import (
    PredictionService,
    ServiceConfig,
    load_workload,
    replay_workload,
    save_workload,
    synthesize_workload,
)


class TestMixedShapeSynthesis:
    def test_default_stream_has_no_overrides(self, serve_tasks):
        requests = synthesize_workload(serve_tasks, 10, seed=0)
        assert all(r.context_users is None and r.context_items is None
                   for r in requests)

    def test_budgets_are_drawn_from_the_pool(self, serve_tasks):
        budgets = [(16, 16), (20, 26), (32, 32)]
        requests = synthesize_workload(serve_tasks, 40, seed=0,
                                       context_budgets=budgets)
        seen = {(r.context_users, r.context_items) for r in requests}
        assert seen <= set(budgets)
        assert len(seen) > 1  # actually mixed

    def test_synthesis_is_deterministic(self, serve_tasks):
        budgets = [(16, 16), (32, 32)]
        a = synthesize_workload(serve_tasks, 20, seed=3,
                                context_budgets=budgets)
        b = synthesize_workload(serve_tasks, 20, seed=3,
                                context_budgets=budgets)
        assert a == b


class TestPersistence:
    def test_jsonl_round_trip_preserves_budgets(self, serve_tasks, tmp_path):
        requests = synthesize_workload(
            serve_tasks, 15, seed=1,
            context_budgets=[(16, 16), (20, 26), (None, None)])
        path = save_workload(tmp_path / "traffic.jsonl", requests)
        assert load_workload(path) == requests


class TestReplay:
    def test_mixed_shape_replay_serves_every_request(self, serve_model,
                                                     ml_split, serve_tasks):
        requests = synthesize_workload(
            serve_tasks, 8, seed=2, context_budgets=[(20, 26), (24, 30)])
        config = ServiceConfig(max_batch_size=8, num_workers=1)
        with PredictionService.from_split(serve_model, ml_split, serve_tasks,
                                          config=config) as service:
            scores = replay_workload(service, requests)
        assert len(scores) == len(requests)
        for request, vector in zip(requests, scores):
            assert vector.shape == (len(request.item_ids),)
            assert np.isfinite(vector).all()

    def test_rate_paces_submission_open_loop(self, serve_model, ml_split,
                                             serve_tasks):
        """``rate`` spaces arrivals on a fixed schedule: replaying n
        requests at r req/s cannot finish before (n - 1) / r seconds."""
        import time

        requests = synthesize_workload(serve_tasks, 6, seed=0)
        config = ServiceConfig(max_batch_size=8, num_workers=1)
        with PredictionService.from_split(serve_model, ml_split, serve_tasks,
                                          config=config) as service:
            started = time.perf_counter()
            scores = replay_workload(service, requests, rate=50.0)
            elapsed = time.perf_counter() - started
        assert len(scores) == len(requests)
        assert elapsed >= (len(requests) - 1) / 50.0
