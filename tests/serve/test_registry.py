"""ModelRegistry: checkpoint round-trips, named versions, hot swap."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig
from repro.serve import ModelRegistry, UnknownModelError


@pytest.fixture
def other_model(ml_dataset):
    return HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=8,
                                       seed=5))


class TestRegistration:
    def test_first_added_becomes_active(self, ml_dataset, serve_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        name, model = registry.active()
        assert name == "v1"
        assert model is serve_model

    def test_register_from_checkpoint_reproduces_scores(
            self, ml_dataset, serve_model, ml_graph, tmp_path):
        path = serve_model.save(tmp_path / "model")
        registry = ModelRegistry(ml_dataset)
        version = registry.register("ckpt", path)
        assert version.config == serve_model.config
        assert version.path == path

        users = np.arange(6)
        items = np.arange(8)
        rng = np.random.default_rng(0)
        from repro.core.context import build_context
        context = build_context(ml_graph, users, items, rng)
        expected = serve_model.predict(context)
        got = registry.get("ckpt").predict(context)
        assert np.array_equal(expected, got)

    def test_register_rejects_configless_checkpoint(self, ml_dataset,
                                                    serve_model, tmp_path):
        from repro.nn.serialization import save_module
        path = save_module(tmp_path / "bare", serve_model)
        registry = ModelRegistry(ml_dataset)
        with pytest.raises(ValueError, match="config"):
            registry.register("bare", path)

    def test_duplicate_name_rejected(self, ml_dataset, serve_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        with pytest.raises(ValueError, match="already registered"):
            registry.add("v1", serve_model)

    def test_unregister(self, ml_dataset, serve_model, other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_model)
        registry.unregister("v2")
        assert "v2" not in registry
        with pytest.raises(UnknownModelError):
            registry.unregister("v2")

    def test_cannot_unregister_active(self, ml_dataset, serve_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        with pytest.raises(ValueError, match="active"):
            registry.unregister("v1")

    def test_unregister_active_with_fallback_promotes_most_recent(
            self, ml_dataset, serve_model, other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_model, activate=False)
        registry.add("v3", other_model, activate=False)
        registry.unregister("v1", fallback=True)
        assert "v1" not in registry
        name, model = registry.active()
        assert name == "v3"
        assert model is other_model

    def test_fallback_on_sole_version_still_raises(self, ml_dataset,
                                                   serve_model):
        """A registry must never be left headless, even with fallback."""
        registry = ModelRegistry(ml_dataset)
        registry.add("only", serve_model)
        with pytest.raises(ValueError, match="no other version"):
            registry.unregister("only", fallback=True)
        assert registry.active()[0] == "only"

    def test_fallback_is_inert_for_inactive_versions(self, ml_dataset,
                                                     serve_model,
                                                     other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_model, activate=False)
        registry.unregister("v2", fallback=True)
        assert registry.active()[0] == "v1"


class TestHotSwap:
    def test_activate_swaps_serving_model(self, ml_dataset, serve_model,
                                          other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_model)
        assert registry.active_name == "v1"
        registry.activate("v2")
        assert registry.active()[1] is other_model

    def test_add_with_activate_flag(self, ml_dataset, serve_model, other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other_model, activate=True)
        assert registry.active_name == "v2"

    def test_activate_unknown_raises(self, ml_dataset):
        registry = ModelRegistry(ml_dataset)
        with pytest.raises(UnknownModelError):
            registry.activate("ghost")

    def test_empty_registry_has_no_active(self, ml_dataset):
        registry = ModelRegistry(ml_dataset)
        with pytest.raises(UnknownModelError):
            registry.active()

    def test_names_and_len(self, ml_dataset, serve_model, other_model):
        registry = ModelRegistry(ml_dataset)
        registry.add("b", serve_model)
        registry.add("a", other_model)
        assert registry.names() == ["a", "b"]
        assert len(registry) == 2
