"""PredictionService: bit-identity with the offline predictor, shutdown
safety, backpressure, validation, and graph updates."""

import threading

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor
from repro.serve import (
    ModelRegistry,
    PredictionService,
    QueueFullError,
    RequestError,
    ServiceClosedError,
    ServiceConfig,
)


@pytest.fixture(scope="module")
def sequential_scores(serve_model, ml_split, serve_tasks):
    """Reference scores from the offline predictor in per-task-RNG mode."""
    predictor = HIREPredictor(serve_model, ml_split, serve_tasks, seed=0,
                              per_task_rng=True)
    return [predictor.predict_task(task) for task in serve_tasks]


def make_service(model, split, tasks, **overrides):
    config = ServiceConfig(**overrides)
    return PredictionService.from_split(model, split, tasks, config=config)


class TestBitIdentity:
    def test_batched_multiworker_cached_equals_sequential(
            self, serve_model, ml_split, serve_tasks, sequential_scores):
        """The acceptance property: batching, three workers, and the context
        cache change nothing about the scores — bit for bit."""
        with make_service(serve_model, ml_split, serve_tasks,
                          num_workers=3, max_batch_size=4) as service:
            futures = [service.submit(t.user, t.query_items, t.support_items)
                       for t in serve_tasks]
            first = [f.result(60) for f in futures]
            # Again: now served from the context cache.
            futures = [service.submit(t.user, t.query_items, t.support_items)
                       for t in serve_tasks]
            second = [f.result(60) for f in futures]
            assert service.stats()["cache"]["hits"] > 0
        for expected, a, b in zip(sequential_scores, first, second):
            assert np.array_equal(expected, a)
            assert np.array_equal(expected, b)

    def test_cache_off_equals_sequential(self, serve_model, ml_split,
                                         serve_tasks, sequential_scores):
        with make_service(serve_model, ml_split, serve_tasks,
                          cache_enabled=False) as service:
            got = [service.predict(t.user, t.query_items, t.support_items)
                   for t in serve_tasks]
        for expected, scores in zip(sequential_scores, got):
            assert np.array_equal(expected, scores)

    def test_multi_sample_averaging_matches_predictor(
            self, serve_model, ml_split, serve_tasks):
        predictor = HIREPredictor(serve_model, ml_split, serve_tasks, seed=0,
                                  per_task_rng=True, num_context_samples=2)
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          num_context_samples=2) as service:
            scores = service.predict(task.user, task.query_items,
                                     task.support_items)
        assert np.array_equal(predictor.predict_task(task), scores)

    def test_registry_backed_service(self, ml_dataset, serve_model, ml_split,
                                     serve_tasks, sequential_scores):
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        task = serve_tasks[0]
        with make_service(registry, ml_split, serve_tasks) as service:
            assert np.array_equal(
                sequential_scores[0],
                service.predict(task.user, task.query_items, task.support_items))

    def test_hot_swap_changes_scores(self, ml_dataset, serve_model, ml_split,
                                     serve_tasks, sequential_scores):
        other = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=8, seed=5))
        other_predictor = HIREPredictor(other, ml_split, serve_tasks, seed=0,
                                        per_task_rng=True)
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other)
        task = serve_tasks[0]
        with make_service(registry, ml_split, serve_tasks) as service:
            before = service.predict(task.user, task.query_items,
                                     task.support_items)
            registry.activate("v2")
            # Context cache carries over (model-independent), scores change.
            after = service.predict(task.user, task.query_items,
                                    task.support_items)
        assert np.array_equal(before, sequential_scores[0])
        assert np.array_equal(after, other_predictor.predict_task(task))

    def test_coalesced_requests_get_independent_arrays(
            self, serve_model, ml_split, serve_tasks):
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          max_batch_size=4, max_wait_seconds=0.05) as service:
            futures = [service.submit(task.user, task.query_items,
                                      task.support_items) for _ in range(3)]
            results = [f.result(60) for f in futures]
        results[0][:] = -1.0
        assert np.array_equal(results[1], results[2])
        assert not np.array_equal(results[0], results[1])


class TestShutdown:
    def test_drain_resolves_every_future(self, serve_model, ml_split,
                                         serve_tasks):
        service = make_service(serve_model, ml_split, serve_tasks,
                               num_workers=2, queue_size=64)
        futures = []
        for _ in range(4):
            for task in serve_tasks:
                futures.append(service.submit(task.user, task.query_items,
                                              task.support_items))
        service.close(drain=True)
        results = [f.result(60) for f in futures]
        assert len(results) == len(futures)
        assert all(isinstance(r, np.ndarray) for r in results)
        snapshot = service.metrics.snapshot()
        completed = snapshot["serve.completed_total"]["value"]
        assert completed == len(futures)  # nothing lost, nothing doubled

    def test_no_drain_fails_queued_futures(self, serve_model, ml_split,
                                           serve_tasks, monkeypatch):
        service = make_service(serve_model, ml_split, serve_tasks,
                               num_workers=1, queue_size=32, max_batch_size=1)
        gate = threading.Event()
        original = service._process_batch

        def gated(batch):
            gate.wait(30)
            original(batch)

        monkeypatch.setattr(service, "_process_batch", gated)
        futures = [service.submit(t.user, t.query_items, t.support_items)
                   for t in serve_tasks]
        service._closed = True  # stop intake without waiting on the gate
        service._batcher.close()
        leftovers = service._batcher.drain()
        error = ServiceClosedError("service closed before execution")
        for request in leftovers:
            request.future.set_exception(error)
        gate.set()
        service._pool.join(30)
        outcomes = []
        for future in futures:
            try:
                outcomes.append(future.result(60))
            except ServiceClosedError:
                outcomes.append("shed")
        assert len(outcomes) == len(futures)  # every future resolved once
        assert "shed" in outcomes

    def test_submit_after_close_raises(self, serve_model, ml_split, serve_tasks):
        service = make_service(serve_model, ml_split, serve_tasks)
        service.close()
        task = serve_tasks[0]
        with pytest.raises(ServiceClosedError):
            service.submit(task.user, task.query_items)

    def test_close_is_idempotent(self, serve_model, ml_split, serve_tasks):
        service = make_service(serve_model, ml_split, serve_tasks)
        service.close()
        service.close()
        assert service.closed


class TestBackpressure:
    def test_queue_full_sheds_load(self, serve_model, ml_split, serve_tasks,
                                   monkeypatch):
        service = make_service(serve_model, ml_split, serve_tasks,
                               num_workers=1, queue_size=2, max_batch_size=1)
        gate = threading.Event()
        original = service._process_batch

        def gated(batch):
            gate.wait(30)
            original(batch)

        monkeypatch.setattr(service, "_process_batch", gated)
        task = serve_tasks[0]
        accepted = []
        with pytest.raises(QueueFullError):
            for _ in range(20):
                accepted.append(service.submit(task.user, task.query_items,
                                               task.support_items))
        rejected = service.metrics.snapshot()["serve.rejected_total"]["value"]
        assert rejected >= 1
        gate.set()
        for future in accepted:  # shed requests never block accepted ones
            assert isinstance(future.result(60), np.ndarray)
        service.close()


class TestValidation:
    @pytest.fixture(scope="class")
    def service(self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            yield service

    def test_empty_items(self, service):
        with pytest.raises(RequestError, match="at least one item"):
            service.submit(0, [])

    def test_user_out_of_range(self, service):
        with pytest.raises(RequestError, match="user"):
            service.submit(10_000, [1, 2])

    def test_item_out_of_range(self, service):
        with pytest.raises(RequestError, match="item"):
            service.submit(0, [10_000])

    def test_already_rated_pair(self, service, ml_split):
        user = int(ml_split.train_ratings()[0, 0])
        item = int(ml_split.train_ratings()[0, 1])
        with pytest.raises(RequestError, match="already rated"):
            service.submit(user, [item])


class TestGraphUpdates:
    def test_update_bumps_generation_and_invalidates_cache(
            self, serve_model, ml_split, serve_tasks):
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks) as service:
            service.predict(task.user, task.query_items, task.support_items)
            assert len(service.cache) > 0
            target_item = int(task.query_items[0])
            applied = service.update_ratings(
                np.array([[task.user, target_item, 4.0]]))
            assert applied == 1
            assert service.graph_generation == 1
            assert len(service.cache) == 0
            # The new rating is visible: that pair can no longer be queried.
            with pytest.raises(RequestError, match="already rated"):
                service.submit(task.user, [target_item])
            # Other queries still work against the rebuilt graph.
            remaining = np.array([i for i in task.query_items
                                  if int(i) != target_item])
            scores = service.predict(task.user, remaining, task.support_items)
            assert scores.shape == remaining.shape


class TestObservability:
    def test_metrics_and_report(self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
            service.predict(task.user, task.query_items, task.support_items)
            snapshot = service.metrics.snapshot()
            assert snapshot["serve.requests_total"]["value"] == 2
            assert snapshot["serve.completed_total"]["value"] == 2
            assert snapshot["serve.latency_seconds"]["count"] == 2
            assert snapshot["serve.latency_seconds"]["p99"] > 0
            report = service.report()
        assert "serve.latency_seconds" in report
        assert "hit rate" in report

    def test_stats_snapshot(self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            stats = service.stats()
        assert stats["queue_depth"] == 0
        assert stats["graph_generation"] == 0
        assert "cache" in stats


class TestSharedContexts:
    def test_share_contexts_is_now_exact(self, serve_model, ml_split,
                                         serve_tasks, sequential_scores):
        """``share_contexts`` aliases the exact packed path: scores are
        bit-identical to sequential prediction (the historical approximate
        jointly-sampled mode is retired)."""
        with make_service(serve_model, ml_split, serve_tasks,
                          share_contexts=True, max_batch_size=8,
                          num_workers=1, max_wait_seconds=0.25,
                          cache_enabled=False) as service:
            assert service.config.pack_contexts  # forced on by the alias
            futures = [service.submit(t.user, t.query_items, t.support_items)
                       for t in serve_tasks]
            got = [f.result(60) for f in futures]
        for expected, scores in zip(sequential_scores, got):
            assert np.array_equal(expected, scores)


class TestPackedServing:
    BUDGETS = [(20, 26), (24, 30), (18, 28)]  # all bucket to (24, 32)

    def reference_scores(self, serve_model, ml_split, serve_tasks):
        refs = []
        for task, (n, m) in zip(serve_tasks, self.BUDGETS):
            predictor = HIREPredictor(serve_model, ml_split, serve_tasks,
                                      seed=0, per_task_rng=True,
                                      context_users=n, context_items=m)
            refs.append(predictor.predict_task(task))
        return refs

    def test_mixed_budgets_pack_and_stay_bitwise_identical(
            self, serve_model, ml_split, serve_tasks):
        """Three different context budgets land in one (24, 32) bucket, run
        as one padded stacked forward, and every real row still matches the
        offline predictor with that budget — bit for bit."""
        refs = self.reference_scores(serve_model, ml_split, serve_tasks)
        with make_service(serve_model, ml_split, serve_tasks,
                          max_batch_size=8, num_workers=1,
                          max_wait_seconds=0.25) as service:
            futures = [
                service.submit(task.user, task.query_items, task.support_items,
                               context_users=n, context_items=m)
                for task, (n, m) in zip(serve_tasks, self.BUDGETS)]
            got = [f.result(60) for f in futures]
            snapshot = service.metrics.snapshot()
        assert snapshot["serve.packed_contexts_total"]["value"] > 0
        assert "serve.pack_pad_waste" in snapshot
        assert snapshot["serve.pack_bucket_occupancy"]["count"] > 0
        for expected, scores in zip(refs, got):
            assert np.array_equal(expected, scores)

    def test_pack_disabled_still_exact(self, serve_model, ml_split,
                                       serve_tasks):
        refs = self.reference_scores(serve_model, ml_split, serve_tasks)
        with make_service(serve_model, ml_split, serve_tasks,
                          pack_contexts=False) as service:
            got = [
                service.submit(task.user, task.query_items,
                               task.support_items,
                               context_users=n, context_items=m).result(60)
                for task, (n, m) in zip(serve_tasks, self.BUDGETS)]
            snapshot = service.metrics.snapshot()
        assert "serve.packed_contexts_total" not in snapshot
        for expected, scores in zip(refs, got):
            assert np.array_equal(expected, scores)

    def test_budget_override_validation(self, serve_model, ml_split,
                                        serve_tasks):
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks) as service:
            with pytest.raises(RequestError, match="context_users"):
                service.submit(task.user, task.query_items,
                               context_users=1)
            with pytest.raises(RequestError, match="context_items"):
                service.submit(task.user, task.query_items,
                               context_items=0)

    def test_bucket_dims_policy(self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks,
                          pack_bucket=8, pack_max_waste=1.0) as service:
            assert service._bucket_dims(20, 26) == (24, 32)
            assert service._bucket_dims(24, 32) == (24, 32)
            # Single-token axes never pad (decoder GEMM bitwise hazard).
            assert service._bucket_dims(1, 26) == (1, 26)
            assert service._bucket_dims(26, 1) == (26, 1)
            # Waste cap: padding 2x2 -> 8x8 would inflate 15x; stays exact.
            assert service._bucket_dims(2, 2) == (2, 2)


class TestEmbedStoreServing:
    def test_store_warms_and_reports_stats(self, serve_model, ml_split,
                                           serve_tasks, sequential_scores):
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          cache_enabled=False) as service:
            first = service.predict(task.user, task.query_items,
                                    task.support_items)
            stats = service.stats()["embed_store"]
            assert stats["misses"] > 0
            second = service.predict(task.user, task.query_items,
                                     task.support_items)
            warmed = service.stats()["embed_store"]
            assert warmed["hits"] > stats["hits"]
        assert np.array_equal(first, sequential_scores[0])
        assert np.array_equal(second, sequential_scores[0])

    def test_update_ratings_invalidates_touched_rows_only(
            self, serve_model, ml_split, serve_tasks):
        task = serve_tasks[0]
        item = int(task.query_items[0])
        with make_service(serve_model, ml_split, serve_tasks) as service:
            service.predict(task.user, task.query_items, task.support_items)
            store = service._embed_store
            assert store is not None
            service.update_ratings(np.array([[task.user, item, 4.0]]))
            # The store survives an ordinary delta; only the touched
            # entities' rows are retired.
            assert service._embed_store is store
            assert not store._user_valid[task.user]
            assert not store._item_valid[item]

    def test_hot_swap_rebuilds_the_store(self, ml_dataset, serve_model,
                                         ml_split, serve_tasks,
                                         sequential_scores):
        other = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=8, seed=5))
        other_predictor = HIREPredictor(other, ml_split, serve_tasks, seed=0,
                                        per_task_rng=True)
        registry = ModelRegistry(ml_dataset)
        registry.add("v1", serve_model)
        registry.add("v2", other)
        task = serve_tasks[0]
        with make_service(registry, ml_split, serve_tasks) as service:
            before = service.predict(task.user, task.query_items,
                                     task.support_items)
            stale = service._embed_store
            registry.activate("v2")  # generation bump invalidates the store
            after = service.predict(task.user, task.query_items,
                                    task.support_items)
            assert service._embed_store is not stale
        assert np.array_equal(before, sequential_scores[0])
        assert np.array_equal(after, other_predictor.predict_task(task))

    def test_store_disabled_is_exact_too(self, serve_model, ml_split,
                                         serve_tasks, sequential_scores):
        task = serve_tasks[0]
        with make_service(serve_model, ml_split, serve_tasks,
                          embed_store_enabled=False) as service:
            scores = service.predict(task.user, task.query_items,
                                     task.support_items)
            assert "embed_store" not in service.stats()
        assert np.array_equal(scores, sequential_scores[0])


class TestAdaptiveBudgets:
    LADDER = ((0, 12, 12), (2, 8, 8), (4, 4, 4))

    @pytest.mark.parametrize("ladder, match", [
        ((), "needs a budget_ladder"),
        (((1, 12, 12),), "threshold 0"),
        (((0, 12, 12), (2, 8, 8), (2, 6, 6)), "strictly increasing"),
        (((0, 8, 8), (2, 12, 12)), "non-increasing"),
        (((0, 8, 8), (2, 8, 1)), ">= 2"),
    ])
    def test_ladder_validation(self, ladder, match):
        with pytest.raises(ValueError, match=match):
            ServiceConfig(adaptive_budgets=True, budget_ladder=ladder)

    def test_ladder_without_adaptive_flag_is_inert(self, serve_model,
                                                   ml_split, serve_tasks,
                                                   sequential_scores):
        # A configured ladder only applies when adaptive_budgets is on.
        with make_service(serve_model, ml_split, serve_tasks,
                          budget_ladder=self.LADDER) as service:
            request = service.submit_request(
                serve_tasks[0].user, serve_tasks[0].query_items,
                serve_tasks[0].support_items)
            assert request.context_users is None
            assert np.array_equal(request.future.result(60),
                                  sequential_scores[0])

    def test_rung_selection_depth_mapping(self, serve_model, ml_split,
                                          serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks,
                          adaptive_budgets=True,
                          budget_ladder=self.LADDER) as service:
            assert service._ladder_budgets(0) == (0, (12, 12))
            assert service._ladder_budgets(1) == (0, (12, 12))
            assert service._ladder_budgets(2) == (1, (8, 8))
            assert service._ladder_budgets(3) == (1, (8, 8))
            assert service._ladder_budgets(4) == (2, (4, 4))
            assert service._ladder_budgets(100) == (2, (4, 4))

    def test_deep_queue_degrades_bit_identically(self, serve_model, ml_split,
                                                 serve_tasks, monkeypatch):
        """Requests admitted while the queue is deep get smaller budgets,
        carry them on the returned request, and their scores equal the
        sequential predictor run at exactly those (n, m)."""
        service = make_service(serve_model, ml_split, serve_tasks,
                               num_workers=1, max_batch_size=1,
                               queue_size=16, cache_enabled=False,
                               adaptive_budgets=True,
                               budget_ladder=self.LADDER)
        gate = threading.Event()
        original = service._process_batch

        def gated(batch):
            gate.wait(30)
            original(batch)

        monkeypatch.setattr(service, "_process_batch", gated)
        requests = [service.submit_request(t.user, t.query_items,
                                           t.support_items)
                    for t in serve_tasks]
        gate.set()
        budgets = [(r.context_users, r.context_items) for r in requests]
        # The ladder applied to every request, and the growing queue pushed
        # later admissions onto smaller rungs.
        assert all(n is not None and m is not None for n, m in budgets)
        assert len(set(budgets)) >= 2
        assert min(budgets) < (self.LADDER[0][1], self.LADDER[0][2])
        scores = [r.future.result(60) for r in requests]
        snapshot = service.metrics.snapshot()
        service.close()
        assert snapshot["serve.assemble.degraded_total"]["value"] >= 1
        assert "serve.assemble.budget_rung" in snapshot
        for task, (n, m), got in zip(serve_tasks, budgets, scores):
            reference = HIREPredictor(serve_model, ml_split, serve_tasks,
                                      seed=0, per_task_rng=True,
                                      context_users=n, context_items=m)
            assert np.array_equal(reference.predict_task(task), got)

    def test_explicit_override_bypasses_ladder(self, serve_model, ml_split,
                                               serve_tasks, monkeypatch):
        service = make_service(serve_model, ml_split, serve_tasks,
                               num_workers=1, max_batch_size=1,
                               queue_size=16, adaptive_budgets=True,
                               budget_ladder=self.LADDER)
        gate = threading.Event()
        original = service._process_batch

        def gated(batch):
            gate.wait(30)
            original(batch)

        monkeypatch.setattr(service, "_process_batch", gated)
        # Deepen the queue past every threshold, then ask for an explicit
        # quality point: the caller's budgets must survive untouched.
        fillers = [service.submit_request(t.user, t.query_items,
                                          t.support_items)
                   for t in serve_tasks[:5]]
        request = service.submit_request(
            serve_tasks[5].user, serve_tasks[5].query_items,
            serve_tasks[5].support_items, context_users=20, context_items=20)
        gate.set()
        assert (request.context_users, request.context_items) == (20, 20)
        for pending in fillers + [request]:
            pending.future.result(60)
        service.close()


class TestFrontierCacheService:
    def test_repeat_traffic_hits_frontiers_with_context_cache_off(
            self, serve_model, ml_split, serve_tasks, sequential_scores):
        with make_service(serve_model, ml_split, serve_tasks,
                          cache_enabled=False) as service:
            first = [service.predict(t.user, t.query_items, t.support_items)
                     for t in serve_tasks]
            second = [service.predict(t.user, t.query_items, t.support_items)
                      for t in serve_tasks]
            snapshot = service.metrics.snapshot()
            frontier = service.stats()["frontier_cache"]
        # Round two re-sampled nothing: every chunk's frontier was warm.
        assert frontier["hits"] >= len(serve_tasks)
        assert snapshot["serve.frontier.hits_total"]["value"] == frontier["hits"]
        assert snapshot["serve.frontier.misses_total"]["value"] == frontier["misses"]
        for expected, a, b in zip(sequential_scores, first, second):
            assert np.array_equal(expected, a)
            assert np.array_equal(expected, b)

    def test_update_ratings_evicts_touched_frontiers_only(
            self, serve_model, ml_split, serve_tasks):
        task, other = serve_tasks[0], serve_tasks[1]
        with make_service(serve_model, ml_split, serve_tasks,
                          cache_enabled=False) as service:
            service.predict(task.user, task.query_items, task.support_items)
            service.predict(other.user, other.query_items,
                            other.support_items)
            populated = len(service.frontier_cache)
            assert populated > 0
            # Re-rate one of the target user's support items (an existing
            # pair, so the pools don't grow and the sweep is fine-grained).
            item = int(task.support_items[0])
            applied = service.update_ratings(
                np.array([[task.user, item, 1.0]]))
            if not applied:  # it already was 1.0 — any other value works
                applied = service.update_ratings(
                    np.array([[task.user, item, 2.0]]))
            assert applied == 1
            evicted = service.metrics.snapshot()[
                "serve.frontier.invalidation_evicted_total"]["value"]
            assert evicted >= 1
            # Frontiers that never read the touched entities survive.
            assert len(service.frontier_cache) < populated

    def test_stats_and_report_cover_the_frontier_cache(
            self, serve_model, ml_split, serve_tasks):
        with make_service(serve_model, ml_split, serve_tasks) as service:
            task = serve_tasks[0]
            service.predict(task.user, task.query_items, task.support_items)
            stats = service.stats()
            report = service.report()
        assert "frontier_cache" in stats
        assert stats["frontier_cache"]["entries"] >= 1
        assert "frontier cache" in report

    def test_disabled_frontier_cache_is_exact(self, serve_model, ml_split,
                                              serve_tasks, sequential_scores):
        with make_service(serve_model, ml_split, serve_tasks,
                          cache_enabled=False,
                          frontier_cache_enabled=False) as service:
            assert service.frontier_cache is None
            got = [service.predict(t.user, t.query_items, t.support_items)
                   for t in serve_tasks]
            assert "frontier_cache" not in service.stats()
        for expected, scores in zip(sequential_scores, got):
            assert np.array_equal(expected, scores)
