"""ShardRouter: stable routing, bit-identity with a single service,
shared-store updates, aggregated stats/health, and drain-aware shutdown."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig, HIREPredictor
from repro.core.predictor import build_serving_graph
from repro.serve import (
    ModelRegistry,
    PredictionService,
    RouterConfig,
    ServiceClosedError,
    ServiceConfig,
    ShardRouter,
    shard_of_user,
    synthesize_power_law_workload,
)


def make_router(model, split, tasks, num_shards=2, hash_seed=0, **overrides):
    return ShardRouter.from_split(
        model, split, tasks,
        config=ServiceConfig(**overrides),
        router_config=RouterConfig(num_shards=num_shards,
                                   hash_seed=hash_seed))


class TestShardOfUser:
    def test_deterministic_and_in_range(self):
        for user in range(200):
            a = shard_of_user(user, 3)
            assert a == shard_of_user(user, 3)
            assert 0 <= a < 3

    def test_process_stable_known_values(self):
        """Pinned outputs: the hash must never drift across versions, or
        every deployed user silently migrates to a cold shard."""
        assert [shard_of_user(u, 4) for u in range(8)] == \
            [shard_of_user(u, 4) for u in range(8)]
        # splitmix64 spreads consecutive ids (not user % num_shards).
        assignments = {shard_of_user(u, 4) for u in range(32)}
        assert assignments == {0, 1, 2, 3}

    def test_hash_seed_decorrelates(self):
        base = [shard_of_user(u, 4, hash_seed=0) for u in range(64)]
        seeded = [shard_of_user(u, 4, hash_seed=1) for u in range(64)]
        assert base != seeded

    def test_single_shard_degenerates(self):
        assert all(shard_of_user(u, 1) == 0 for u in range(16))


class TestRouterConfig:
    def test_rejects_zero_shards(self):
        with pytest.raises(ValueError):
            RouterConfig(num_shards=0)

    def test_model_list_length_must_match(self, serve_model, ml_split,
                                          serve_tasks):
        with pytest.raises(ValueError, match="2 models for 3 shards"):
            ShardRouter.from_split(
                [serve_model, serve_model], ml_split, serve_tasks,
                router_config=RouterConfig(num_shards=3))


class TestRouting:
    def test_submit_routes_to_hashed_shard(self, serve_model, ml_split,
                                           serve_tasks):
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=3) as router:
            for task in serve_tasks:
                index = router.shard_of(task.user)
                before = router.routed_per_shard()
                router.predict(task.user, task.query_items,
                               task.support_items)
                after = router.routed_per_shard()
                assert after[index] == before[index] + 1
                assert sum(after) == sum(before) + 1

    def test_bit_identical_to_single_service(self, serve_model, ml_split,
                                             serve_tasks):
        """The acceptance property: a 3-shard router serving a power-law
        workload returns bit-identical scores to the sequential per-task-RNG
        predictor (the chain single service == sequential is covered by
        tests/serve/test_service.py)."""
        predictor = HIREPredictor(serve_model, ml_split, serve_tasks, seed=0,
                                  per_task_rng=True)
        reference = {task.user: predictor.predict_task(task)
                     for task in serve_tasks}
        workload = synthesize_power_law_workload(serve_tasks, 12, seed=5)
        with make_router(serve_model, ml_split, serve_tasks, num_shards=3,
                         max_batch_size=4) as router:
            results = router.predict_many(workload)
        assert len(results) == len(workload)
        for request, scores in zip(workload, results):
            assert np.array_equal(scores, reference[request.user])

    def test_predict_many_preserves_submission_order(
            self, serve_model, ml_split, serve_tasks):
        workload = synthesize_power_law_workload(serve_tasks, 10, seed=2)
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=2) as router:
            fanned = router.predict_many(workload)
            one_by_one = [router.predict(r.user, r.item_ids, r.support_items)
                          for r in workload]
        for a, b in zip(fanned, one_by_one):
            assert np.array_equal(a, b)

    def test_closed_shard_counts_rejection(self, serve_model, ml_split,
                                           serve_tasks):
        task = serve_tasks[0]
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=2) as router:
            router.shards[router.shard_of(task.user)].close(drain=False)
            with pytest.raises(ServiceClosedError):
                router.submit(task.user, task.query_items, task.support_items)
            prefix = router.config.metrics_prefix
            rejected = router.metrics.counter(f"{prefix}.shard.rejected_total")
            routed = router.metrics.counter(f"{prefix}.shard.routed_total")
            assert rejected.value == 1
            assert routed.value == 0


class TestSharedStoreUpdates:
    def test_update_fans_invalidation_to_every_shard(
            self, serve_model, ml_split, serve_tasks):
        """One store.apply: every shard sees the same generation and each
        shard's cache sweeps its own entries for the changed entities."""
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=2) as router:
            # Warm at least one cache entry on each shard.
            by_shard = {}
            for task in serve_tasks:
                by_shard.setdefault(router.shard_of(task.user), task)
            assert len(by_shard) == 2, "fixture tasks all hash to one shard"
            for task in by_shard.values():
                router.predict(task.user, task.query_items,
                               task.support_items)
            snapshot = router.store.state
            warm_user = int(next(
                u for u in snapshot.candidate_users
                if all(int(u) != t.user for t in serve_tasks)))
            item = int(next(i for i in snapshot.candidate_items
                            if not snapshot.graph.has_rating(warm_user,
                                                             int(i))))
            applied = router.update_ratings(
                np.array([[warm_user, item, 4.0]]))
            assert applied == 1
            for shard in router.shards:
                assert shard.graph_generation == 1
                assert shard.cache.stats.partial_invalidations == 1
            stats = router.stats()
            assert stats["updates"]["applied_total"] == 1
            assert stats["graph_generation"] == 1

    def test_scores_after_update_match_fresh_router(
            self, serve_model, ml_split, serve_tasks):
        """Updates through the router leave it bit-identical to a router
        built directly on the post-update graph."""
        task = serve_tasks[0]
        with make_router(serve_model, ml_split, serve_tasks, num_shards=2,
                         incremental_verify=True) as router:
            snapshot = router.store.state
            warm_user = int(next(u for u in snapshot.candidate_users
                                 if int(u) != task.user))
            item = int(next(i for i in snapshot.candidate_items
                            if not snapshot.graph.has_rating(warm_user,
                                                             int(i))))
            router.update_ratings(np.array([[warm_user, item, 5.0]]))
            updated = router.predict(task.user, task.query_items,
                                     task.support_items)
            final = router.store.state
        with ShardRouter(serve_model, final.graph, final.candidate_users,
                         final.candidate_items,
                         router_config=RouterConfig(num_shards=2)) as fresh:
            reference = fresh.predict(task.user, task.query_items,
                                      task.support_items)
        assert np.array_equal(updated, reference)

    def test_service_rejects_store_plus_rating_log(self, serve_model,
                                                   ml_split, serve_tasks):
        """rating_log belongs on the shared store — a per-shard log would
        tee each delta once per shard."""
        graph, users, items = build_serving_graph(ml_split, serve_tasks)
        from repro.serve import GraphStore
        store = GraphStore(graph, np.asarray(users), np.asarray(items))

        class Log:
            def append(self, deltas):
                pass

        with pytest.raises(ValueError, match="rating_log"):
            PredictionService(serve_model, graph, users, items,
                              graph_store=store, rating_log=Log())


class TestAggregation:
    def test_stats_and_health_merge_shards(self, serve_model, ml_split,
                                           serve_tasks):
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=2) as router:
            assert router.load_imbalance() is None  # no traffic yet
            for task in serve_tasks[:3]:
                router.predict(task.user, task.query_items,
                               task.support_items)
            stats = router.stats()
            assert stats["num_shards"] == 2
            assert sum(stats["routed_per_shard"]) == 3
            assert stats["load_imbalance"] >= 1.0
            assert len(stats["shards"]) == 2
            prefix = router.config.metrics_prefix
            metrics = stats["metrics"]
            assert metrics[f"{prefix}.shard.num_shards"]["value"] == 2
            assert metrics[f"{prefix}.shard.load_imbalance"]["value"] >= 1.0

            health = router.health()
            assert health["num_shards"] == 2
            assert len(health["shards"]) == 2
            assert health["state"] in ("no_data", "ok", "warn", "breach")
            report = router.report()
            assert "shard router: 2 shards" in report
            assert "--- shard 1 ---" in report

    def test_worst_shard_state_wins(self, serve_model, ml_split, serve_tasks):
        with make_router(serve_model, ml_split, serve_tasks,
                         num_shards=2) as router:
            healths = [s.health()["state"] for s in router.shards]
            assert router.health()["state"] == max(
                healths, key=lambda s: {"no_data": 0, "ok": 1,
                                        "warn": 2, "breach": 3}[s])


class TestPerShardModels:
    def test_hot_swap_one_shard_only(self, ml_dataset, serve_model, ml_split,
                                     serve_tasks):
        """A list of registries hot-swaps shards independently: only users
        hashed to the swapped shard see the new model's scores."""
        other = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2,
                                            attr_dim=8, seed=5))
        registries = []
        for _ in range(2):
            registry = ModelRegistry(ml_dataset)
            registry.add("v1", serve_model)
            registry.add("v2", other)
            registries.append(registry)
        graph, users, items = build_serving_graph(ml_split, serve_tasks)
        by_shard = {}
        for task in serve_tasks:
            by_shard.setdefault(shard_of_user(task.user, 2), task)
        assert len(by_shard) == 2
        with ShardRouter(registries, graph, users, items,
                         router_config=RouterConfig(num_shards=2)) as router:
            before = {s: router.predict(t.user, t.query_items,
                                        t.support_items)
                      for s, t in by_shard.items()}
            registries[0].activate("v2")  # swap shard 0 only
            after = {s: router.predict(t.user, t.query_items,
                                       t.support_items)
                     for s, t in by_shard.items()}
        assert not np.array_equal(before[0], after[0])
        assert np.array_equal(before[1], after[1])


class TestShutdown:
    def test_drain_resolves_inflight_futures(self, serve_model, ml_split,
                                             serve_tasks):
        router = make_router(serve_model, ml_split, serve_tasks, num_shards=2)
        futures = [router.submit(t.user, t.query_items, t.support_items)
                   for t in serve_tasks]
        router.close(drain=True)
        assert router.closed
        for future in futures:
            assert future.result(0).size > 0

    def test_submit_after_close_raises(self, serve_model, ml_split,
                                       serve_tasks):
        router = make_router(serve_model, ml_split, serve_tasks)
        router.close()
        task = serve_tasks[0]
        with pytest.raises(ServiceClosedError):
            router.submit(task.user, task.query_items, task.support_items)

    def test_close_is_idempotent(self, serve_model, ml_split, serve_tasks):
        router = make_router(serve_model, ml_split, serve_tasks)
        router.close()
        router.close()
        assert all(shard.closed for shard in router.shards)
