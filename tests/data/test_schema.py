"""RatingDataset container: validation and accessors."""

import numpy as np
import pytest

from repro.data import RatingDataset


def make_dataset(**overrides):
    defaults = dict(
        name="tiny",
        num_users=3,
        num_items=2,
        user_attributes=np.array([[0], [1], [0]]),
        item_attributes=np.array([[0], [1]]),
        user_attribute_cards=(2,),
        item_attribute_cards=(2,),
        ratings=np.array([[0, 0, 3.0], [1, 1, 5.0], [2, 0, 1.0]]),
        rating_range=(1.0, 5.0),
    )
    defaults.update(overrides)
    return RatingDataset(**defaults)


class TestValidation:
    def test_valid_roundtrip(self):
        ds = make_dataset()
        assert ds.num_ratings == 3
        assert ds.num_user_attributes == 1
        assert ds.num_item_attributes == 1

    def test_user_attribute_row_mismatch(self):
        with pytest.raises(ValueError, match="user_attributes"):
            make_dataset(user_attributes=np.array([[0], [1]]))

    def test_item_attribute_row_mismatch(self):
        with pytest.raises(ValueError, match="item_attributes"):
            make_dataset(item_attributes=np.array([[0]]))

    def test_cardinality_exceeded(self):
        with pytest.raises(ValueError, match="cardinality"):
            make_dataset(user_attributes=np.array([[0], [5], [0]]))

    def test_cards_length_mismatch(self):
        with pytest.raises(ValueError, match="cards"):
            make_dataset(user_attribute_cards=(2, 3))

    def test_rating_shape(self):
        with pytest.raises(ValueError, match="ratings"):
            make_dataset(ratings=np.array([[0, 0]]))

    def test_unknown_user_in_ratings(self):
        with pytest.raises(ValueError, match="unknown user"):
            make_dataset(ratings=np.array([[9, 0, 3.0]]))

    def test_unknown_item_in_ratings(self):
        with pytest.raises(ValueError, match="unknown item"):
            make_dataset(ratings=np.array([[0, 9, 3.0]]))

    def test_rating_out_of_range(self):
        with pytest.raises(ValueError, match="rating_range"):
            make_dataset(ratings=np.array([[0, 0, 7.0]]))

    def test_default_attribute_names(self):
        ds = make_dataset()
        assert ds.user_attribute_names == ("user_attr_0",)
        assert ds.item_attribute_names == ("item_attr_0",)


class TestAccessors:
    def test_rating_columns(self):
        ds = make_dataset()
        np.testing.assert_array_equal(ds.rating_users(), [0, 1, 2])
        np.testing.assert_array_equal(ds.rating_items(), [0, 1, 0])
        np.testing.assert_allclose(ds.rating_values(), [3.0, 5.0, 1.0])

    def test_density(self):
        ds = make_dataset()
        assert ds.density == pytest.approx(3 / 6)

    def test_subset_ratings(self):
        ds = make_dataset()
        subset = ds.subset_ratings(np.array([True, False, True]))
        assert subset.shape == (2, 3)
        np.testing.assert_allclose(subset[:, 2], [3.0, 1.0])

    def test_profile_matches_table2_fields(self):
        profile = make_dataset().profile()
        for key in ("name", "num_users", "num_items", "num_ratings",
                    "user_attributes", "item_attributes", "rating_range",
                    "density", "has_social"):
            assert key in profile
        assert profile["has_social"] is False
