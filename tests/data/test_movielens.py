"""Real MovieLens-1M loader, exercised against a fabricated ml-1m dump."""

import numpy as np
import pytest

from repro.data import load_movielens_1m


@pytest.fixture
def ml1m_dir(tmp_path):
    (tmp_path / "users.dat").write_text(
        "1::F::1::10::48067\n"
        "2::M::56::16::70072\n"
        "3::M::25::15::55117\n",
        encoding="latin-1",
    )
    (tmp_path / "movies.dat").write_text(
        "1::Toy Story (1995)::Animation|Children's|Comedy\n"
        "2::Jumanji (1995)::Adventure|Children's|Fantasy\n"
        "3::Old Film::Drama\n",
        encoding="latin-1",
    )
    (tmp_path / "ratings.dat").write_text(
        "1::1::5::978300760\n"
        "1::2::3::978302109\n"
        "2::3::4::978301968\n"
        "3::1::4::978300275\n",
        encoding="latin-1",
    )
    return tmp_path


class TestLoader:
    def test_loads_counts(self, ml1m_dir):
        ds = load_movielens_1m(ml1m_dir)
        assert ds.num_users == 3
        assert ds.num_items == 3
        assert ds.num_ratings == 4
        assert ds.rating_range == (1.0, 5.0)

    def test_user_attributes(self, ml1m_dir):
        ds = load_movielens_1m(ml1m_dir)
        # user 1: F, age bucket 1 -> code 0, occupation 10, zip '4'
        assert ds.user_attributes[0, 0] == 0   # age code
        assert ds.user_attributes[0, 1] == 10  # occupation
        assert ds.user_attributes[0, 2] == 1   # female
        assert ds.user_attributes[0, 3] == 4   # zip region
        # user 2: M, age 56 -> last bucket
        assert ds.user_attributes[1, 0] == 6
        assert ds.user_attributes[1, 2] == 0

    def test_item_attributes(self, ml1m_dir):
        ds = load_movielens_1m(ml1m_dir)
        # Toy Story (1995): era (1995-1910)//10 = 8, genre Animation -> 2
        assert ds.item_attributes[0, 0] == 8
        assert ds.item_attributes[0, 1] == 2
        # Old Film without a parseable year falls back to 1990s era.
        assert ds.item_attributes[2, 0] == 8

    def test_rating_reindexing(self, ml1m_dir):
        ds = load_movielens_1m(ml1m_dir)
        # Original ids are 1-based; loader reindexes to 0-based positions.
        assert ds.rating_users().min() == 0
        assert ds.rating_items().max() <= 2

    def test_max_users_subsampling(self, ml1m_dir):
        ds = load_movielens_1m(ml1m_dir, max_users=2)
        assert ds.num_users == 2
        # Ratings referring to dropped users are filtered out.
        assert (ds.rating_users() < 2).all()

    def test_missing_file_raises(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_movielens_1m(tmp_path)
