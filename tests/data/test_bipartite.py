"""RatingGraph adjacency correctness (including against brute force)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import RatingGraph


@pytest.fixture
def tiny_graph():
    ratings = np.array([
        [0, 0, 5.0],
        [0, 1, 3.0],
        [1, 1, 4.0],
        [2, 2, 1.0],
    ])
    return RatingGraph(ratings, num_users=4, num_items=3)


class TestAdjacency:
    def test_items_of_user(self, tiny_graph):
        np.testing.assert_array_equal(tiny_graph.items_of_user(0), [0, 1])
        np.testing.assert_array_equal(tiny_graph.items_of_user(1), [1])
        assert tiny_graph.items_of_user(3).size == 0

    def test_users_of_item(self, tiny_graph):
        np.testing.assert_array_equal(tiny_graph.users_of_item(1), [0, 1])
        assert tiny_graph.users_of_item(0).size == 1

    def test_degrees(self, tiny_graph):
        assert tiny_graph.user_degree(0) == 2
        assert tiny_graph.user_degree(3) == 0
        assert tiny_graph.item_degree(1) == 2

    def test_rating_lookup(self, tiny_graph):
        assert tiny_graph.rating(0, 1) == 3.0
        assert tiny_graph.rating(1, 0) is None
        assert tiny_graph.has_rating(2, 2)
        assert not tiny_graph.has_rating(3, 0)

    def test_num_edges(self, tiny_graph):
        assert tiny_graph.num_edges == 4

    def test_empty_graph(self):
        graph = RatingGraph(np.empty((0, 3)), num_users=3, num_items=2)
        assert graph.num_edges == 0
        assert graph.items_of_user(0).size == 0

    def test_duplicate_ratings_deduplicated_in_adjacency(self):
        ratings = np.array([[0, 0, 5.0], [0, 0, 3.0]])
        graph = RatingGraph(ratings, num_users=1, num_items=1)
        assert graph.user_degree(0) == 1


class TestRatingMatrix:
    def test_submatrix_values(self, tiny_graph):
        values, observed = tiny_graph.rating_matrix(np.array([0, 1]), np.array([1, 2]))
        np.testing.assert_allclose(values, [[3.0, 0.0], [4.0, 0.0]])
        np.testing.assert_array_equal(observed, [[True, False], [True, False]])

    def test_submatrix_empty_user(self, tiny_graph):
        values, observed = tiny_graph.rating_matrix(np.array([3]), np.array([0, 1, 2]))
        assert not observed.any()
        assert (values == 0).all()


@settings(max_examples=25, deadline=None)
@given(
    num_users=st.integers(1, 10),
    num_items=st.integers(1, 10),
    num_ratings=st.integers(0, 40),
    seed=st.integers(0, 10_000),
)
def test_property_adjacency_matches_bruteforce(num_users, num_items, num_ratings, seed):
    rng = np.random.default_rng(seed)
    users = rng.integers(0, num_users, size=num_ratings)
    items = rng.integers(0, num_items, size=num_ratings)
    values = rng.integers(1, 6, size=num_ratings).astype(float)
    triples = np.stack([users, items, values], axis=1).astype(float)
    graph = RatingGraph(triples, num_users, num_items)

    for user in range(num_users):
        expected = np.unique(items[users == user])
        np.testing.assert_array_equal(graph.items_of_user(user), expected)
    for item in range(num_items):
        expected = np.unique(users[items == item])
        np.testing.assert_array_equal(graph.users_of_item(item), expected)
    # rating() returns the last write for duplicated pairs.
    for u, i, v in triples:
        assert graph.rating(int(u), int(i)) is not None
