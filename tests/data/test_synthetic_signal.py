"""Signal-structure knobs of the synthetic generator: the entity biases and
cluster/individual taste scales DESIGN.md §7 documents."""

import numpy as np
import pytest

from repro.data.synthetic import AttributeSpec, SyntheticConfig, generate


def make(seed=0, **overrides):
    config = SyntheticConfig(
        name="knobs",
        num_users=120,
        num_items=80,
        user_attrs=[AttributeSpec("a", 6, 0.8)],
        item_attrs=[AttributeSpec("g", 8, 0.8)],
        ratings_per_user=25.0,
        seed=seed,
        **overrides,
    )
    return generate(config)


def item_mean_variance(ds) -> float:
    """Variance of per-item mean ratings — rises with item-level effects."""
    items = ds.rating_items()
    values = ds.rating_values()
    means = [values[items == i].mean() for i in np.unique(items)
             if (items == i).sum() >= 5]
    return float(np.var(means))


class TestItemBias:
    def test_bias_creates_item_level_spread(self):
        low = make(item_bias_std=0.0, item_individual_scale=0.0)
        high = make(item_bias_std=2.0, item_individual_scale=0.0)
        assert item_mean_variance(high) > item_mean_variance(low)

    def test_user_bias_creates_user_level_spread(self):
        def user_mean_variance(ds):
            users = ds.rating_users()
            values = ds.rating_values()
            means = [values[users == u].mean() for u in np.unique(users)
                     if (users == u).sum() >= 5]
            return float(np.var(means))

        low = make(user_bias_std=0.0)
        high = make(user_bias_std=2.0)
        assert user_mean_variance(high) > user_mean_variance(low)


class TestClusterScales:
    def test_cluster_dominated_items_follow_attributes(self):
        """With item taste fully cluster-driven, same-attribute items have
        more similar mean ratings than with individual-driven taste."""

        def attr_explained_fraction(ds):
            items = ds.rating_items()
            values = ds.rating_values()
            genre = ds.item_attributes[:, 0]
            overall = values.var()
            residual = 0.0
            total = 0
            for g in np.unique(genre):
                members = np.flatnonzero(genre == g)
                mask = np.isin(items, members)
                if mask.sum() >= 5:
                    residual += values[mask].var() * mask.sum()
                    total += mask.sum()
            if total == 0 or overall == 0:
                return 0.0
            return 1.0 - (residual / total) / overall

        clustered = make(item_cluster_scale=1.5, item_individual_scale=0.0,
                         item_bias_std=0.0)
        individual = make(item_cluster_scale=0.0, item_individual_scale=1.5,
                          item_bias_std=0.0)
        assert attr_explained_fraction(clustered) > attr_explained_fraction(individual)

    def test_scales_zero_yield_pure_bias_model(self):
        ds = make(user_cluster_scale=0.0, user_individual_scale=0.0,
                  item_cluster_scale=0.0, item_individual_scale=0.0,
                  user_bias_std=1.0, item_bias_std=1.0)
        assert ds.num_ratings > 0
        # Ratings still span the scale through the bias terms.
        assert ds.rating_values().std() > 0.3


class TestDefaults:
    def test_defaults_user_individual_dominated(self):
        config = SyntheticConfig(name="d", num_users=10, num_items=10)
        assert config.user_individual_scale > config.user_cluster_scale
        assert config.item_cluster_scale > 0
        assert config.item_individual_scale > 0
