"""Dataset persistence and the real Douban / Bookcrossing loaders."""

import numpy as np
import pytest

from repro.data import (
    douban_like,
    load_bookcrossing,
    load_dataset,
    load_douban,
    movielens_like,
    save_dataset,
)


class TestDatasetIO:
    def test_roundtrip_movielens(self, tmp_path):
        ds = movielens_like(num_users=25, num_items=20, seed=3)
        path = tmp_path / "ml.npz"
        save_dataset(path, ds)
        loaded = load_dataset(path)
        assert loaded.name == ds.name
        np.testing.assert_array_equal(loaded.ratings, ds.ratings)
        np.testing.assert_array_equal(loaded.user_attributes, ds.user_attributes)
        assert loaded.user_attribute_names == ds.user_attribute_names
        assert loaded.rating_range == ds.rating_range
        assert loaded.social_edges is None

    def test_roundtrip_with_social(self, tmp_path):
        ds = douban_like(num_users=20, num_items=15, seed=3)
        path = tmp_path / "db.npz"
        save_dataset(path, ds)
        loaded = load_dataset(path)
        np.testing.assert_array_equal(loaded.social_edges, ds.social_edges)

    def test_metadata_preserved(self, tmp_path):
        ds = movielens_like(num_users=10, num_items=10, seed=0)
        path = tmp_path / "x.npz"
        save_dataset(path, ds)
        assert load_dataset(path).metadata["seed"] == 0


class TestDoubanLoader:
    @pytest.fixture
    def douban_files(self, tmp_path):
        (tmp_path / "ratings.txt").write_text(
            "u1 m1 4\nu1 m2 5\nu2 m1 3\nu3 m2 1\nu3 m3 2\n")
        (tmp_path / "social.txt").write_text("u1 u2\nu2 u3\nu1 u1\nu9 u1\n")
        return tmp_path

    def test_reindexing(self, douban_files):
        ds = load_douban(douban_files / "ratings.txt",
                         douban_files / "social.txt")
        assert ds.num_users == 3 and ds.num_items == 3
        assert ds.num_ratings == 5
        assert ds.user_attribute_names == ("user_id",)

    def test_social_edges_filtered(self, douban_files):
        ds = load_douban(douban_files / "ratings.txt",
                         douban_files / "social.txt")
        # self-loop and unknown-user edges dropped
        assert len(ds.social_edges) == 2
        assert (ds.social_edges[:, 0] != ds.social_edges[:, 1]).all()

    def test_without_social(self, douban_files):
        ds = load_douban(douban_files / "ratings.txt")
        assert ds.social_edges is None

    def test_clipping(self, tmp_path):
        (tmp_path / "r.txt").write_text("u1 m1 0\nu1 m2 9\n")
        ds = load_douban(tmp_path / "r.txt")
        assert ds.rating_values().min() == 1.0
        assert ds.rating_values().max() == 5.0

    def test_empty_rejected(self, tmp_path):
        (tmp_path / "r.txt").write_text("\n")
        with pytest.raises(ValueError):
            load_douban(tmp_path / "r.txt")


class TestBookcrossingLoader:
    @pytest.fixture
    def bx_dir(self, tmp_path):
        (tmp_path / "BX-Users.csv").write_text(
            '"User-ID";"Location";"Age"\n'
            '"1";"somewhere";"34"\n'
            '"2";"elsewhere";"NULL"\n'
            '"3";"place";"150"\n',
            encoding="latin-1",
        )
        (tmp_path / "BX-Books.csv").write_text(
            '"ISBN";"Title";"Author";"Year-Of-Publication";"Publisher"\n'
            '"0001";"Book A";"X";"1995";"P"\n'
            '"0002";"Book B";"Y";"0";"P"\n',
            encoding="latin-1",
        )
        (tmp_path / "BX-Book-Ratings.csv").write_text(
            '"User-ID";"ISBN";"Book-Rating"\n'
            '"1";"0001";"8"\n'
            '"1";"0002";"0"\n'
            '"2";"0001";"5"\n'
            '"9";"0001";"7"\n',
            encoding="latin-1",
        )
        return tmp_path

    def test_counts_and_scale(self, bx_dir):
        ds = load_bookcrossing(bx_dir)
        assert ds.num_users == 3 and ds.num_items == 2
        # implicit zero and unknown-user rows dropped
        assert ds.num_ratings == 2
        assert ds.rating_range == (1.0, 10.0)

    def test_age_buckets(self, bx_dir):
        ds = load_bookcrossing(bx_dir)
        assert ds.user_attributes[0, 0] > 0      # age 34 -> a real bucket
        assert ds.user_attributes[1, 0] == 0     # NULL -> unknown
        assert ds.user_attributes[2, 0] == 0     # 150 -> out of range

    def test_year_eras(self, bx_dir):
        ds = load_bookcrossing(bx_dir)
        assert 0 <= ds.item_attributes[0, 0] < 20
        assert ds.item_attributes[1, 0] == 10    # year 0 -> mid-scale default

    def test_missing_file(self, tmp_path):
        with pytest.raises(FileNotFoundError):
            load_bookcrossing(tmp_path)

    def test_pipeline_compatible(self, bx_dir):
        """The loaded dataset drives the standard pipeline end to end."""
        from repro.data import RatingGraph

        ds = load_bookcrossing(bx_dir)
        graph = RatingGraph(ds.ratings, ds.num_users, ds.num_items)
        assert graph.num_edges == ds.num_ratings
