"""HIN construction and metapath sampling."""

import numpy as np
import pytest

from repro.data import build_hin, douban_like, metapath_neighbors, node_id


class TestBuildHIN:
    def test_node_types_present(self, ml_dataset):
        hin = build_hin(ml_dataset)
        types = {data["ntype"] for _, data in hin.nodes(data=True)}
        assert "user" in types and "item" in types
        assert any(t.startswith("user_attr_") for t in types)
        assert any(t.startswith("item_attr_") for t in types)

    def test_rating_edges_carry_values(self, ml_dataset):
        hin = build_hin(ml_dataset)
        user, item, value = ml_dataset.ratings[0]
        edge = hin.edges[node_id("user", int(user)), node_id("item", int(item))]
        assert edge["etype"] == "rates"
        assert edge["rating"] == pytest.approx(value)

    def test_id_attributes_skipped(self, douban_dataset):
        """Douban's ID pseudo-attributes must not create attribute nodes."""
        hin = build_hin(douban_dataset)
        types = {data["ntype"] for _, data in hin.nodes(data=True)}
        assert types == {"user", "item"}

    def test_restricted_ratings(self, ml_dataset, ml_split):
        hin = build_hin(ml_dataset, ratings=ml_split.train_ratings())
        rating_edges = [e for e in hin.edges(data=True) if e[2].get("etype") == "rates"]
        assert len(rating_edges) <= len(ml_split.train_ratings())

    def test_every_user_linked_to_attr_nodes(self, ml_dataset):
        hin = build_hin(ml_dataset)
        user_node = node_id("user", 0)
        neighbor_types = {hin.nodes[n]["ntype"] for n in hin.neighbors(user_node)}
        assert any(t.startswith("user_attr_") for t in neighbor_types)


class TestMetapaths:
    def test_user_item_path(self, ml_dataset):
        hin = build_hin(ml_dataset)
        rng = np.random.default_rng(0)
        user = int(ml_dataset.ratings[0][0])
        ends = metapath_neighbors(hin, node_id("user", user), ["item"], rng)
        assert ends
        assert all(n[0] == "item" for n in ends)

    def test_uiu_path_returns_users(self, ml_dataset):
        hin = build_hin(ml_dataset)
        rng = np.random.default_rng(1)
        user = int(ml_dataset.ratings[0][0])
        ends = metapath_neighbors(hin, node_id("user", user), ["item", "user"], rng)
        assert all(n[0] == "user" for n in ends)

    def test_attr_wildcard(self, ml_dataset):
        hin = build_hin(ml_dataset)
        rng = np.random.default_rng(2)
        ends = metapath_neighbors(hin, node_id("user", 0), ["attr"], rng)
        assert ends
        assert all(hin.nodes[n]["ntype"].startswith("user_attr_") for n in ends)

    def test_max_neighbors_bounds_frontier(self, ml_dataset):
        hin = build_hin(ml_dataset)
        rng = np.random.default_rng(3)
        ends = metapath_neighbors(hin, node_id("user", 0), ["item", "user"],
                                  rng, max_neighbors=3)
        assert len(ends) <= 3

    def test_dead_end_returns_empty(self, ml_dataset):
        hin = build_hin(ml_dataset, ratings=np.empty((0, 3)))
        rng = np.random.default_rng(4)
        assert metapath_neighbors(hin, node_id("user", 0), ["item"], rng) == []
