"""Cold-start splits: disjointness, quadrant selection, scenario routing."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    SCENARIOS,
    ColdStartSplit,
    Scenario,
    make_cold_start_split,
    movielens_like,
)


class TestPartition:
    def test_users_and_items_disjoint(self, ml_split):
        assert np.intersect1d(ml_split.train_users, ml_split.test_users).size == 0
        assert np.intersect1d(ml_split.train_items, ml_split.test_items).size == 0

    def test_partition_covers_everything(self, ml_split):
        ds = ml_split.dataset
        users = np.union1d(ml_split.train_users, ml_split.test_users)
        items = np.union1d(ml_split.train_items, ml_split.test_items)
        np.testing.assert_array_equal(users, np.arange(ds.num_users))
        np.testing.assert_array_equal(items, np.arange(ds.num_items))

    def test_fraction_respected(self, ml_dataset):
        split = make_cold_start_split(ml_dataset, 0.25, 0.5, seed=0)
        assert len(split.test_users) == round(0.25 * ml_dataset.num_users)
        assert len(split.test_items) == round(0.5 * ml_dataset.num_items)

    def test_overlap_rejected(self, ml_dataset):
        with pytest.raises(ValueError, match="overlap"):
            ColdStartSplit(
                dataset=ml_dataset,
                train_users=np.array([0, 1]),
                test_users=np.array([1, 2]),
                train_items=np.array([0]),
                test_items=np.array([1]),
            )

    def test_invalid_fraction(self, ml_dataset):
        for bad in (0.0, 1.0, -0.2, 1.5):
            with pytest.raises(ValueError):
                make_cold_start_split(ml_dataset, bad, 0.2)


class TestQuadrants:
    def test_train_ratings_are_warm_warm(self, ml_split):
        train = ml_split.train_ratings()
        assert np.isin(train[:, 0], ml_split.train_users).all()
        assert np.isin(train[:, 1], ml_split.train_items).all()

    def test_user_scenario_quadrant(self, ml_split):
        rows = ml_split.eval_ratings(Scenario.USER)
        assert np.isin(rows[:, 0], ml_split.test_users).all()
        assert np.isin(rows[:, 1], ml_split.train_items).all()

    def test_item_scenario_quadrant(self, ml_split):
        rows = ml_split.eval_ratings(Scenario.ITEM)
        assert np.isin(rows[:, 0], ml_split.train_users).all()
        assert np.isin(rows[:, 1], ml_split.test_items).all()

    def test_both_scenario_quadrant(self, ml_split):
        rows = ml_split.eval_ratings(Scenario.BOTH)
        assert np.isin(rows[:, 0], ml_split.test_users).all()
        assert np.isin(rows[:, 1], ml_split.test_items).all()

    def test_quadrants_partition_all_ratings(self, ml_split):
        total = sum(len(ml_split.eval_ratings(s)) for s in SCENARIOS)
        total += len(ml_split.train_ratings())
        assert total == ml_split.dataset.num_ratings

    def test_unknown_scenario(self, ml_split):
        with pytest.raises(ValueError):
            ml_split.eval_ratings("warm")
        with pytest.raises(ValueError):
            ml_split.cold_entities("warm")

    def test_cold_entities(self, ml_split):
        users, items = ml_split.cold_entities(Scenario.USER)
        np.testing.assert_array_equal(users, ml_split.test_users)
        assert items.size == 0
        users, items = ml_split.cold_entities(Scenario.BOTH)
        assert users.size and items.size

    def test_is_cold_helpers(self, ml_split):
        assert ml_split.is_cold_user(int(ml_split.test_users[0]))
        assert not ml_split.is_cold_user(int(ml_split.train_users[0]))
        assert ml_split.is_cold_item(int(ml_split.test_items[0]))
        assert not ml_split.is_cold_item(int(ml_split.train_items[0]))

    def test_summary(self, ml_split):
        summary = ml_split.summary()
        assert summary["train_users"] == len(ml_split.train_users)
        assert set(summary["eval_ratings"]) == set(SCENARIOS)


@settings(max_examples=15, deadline=None)
@given(
    user_fraction=st.floats(0.1, 0.9),
    item_fraction=st.floats(0.1, 0.9),
    seed=st.integers(0, 500),
)
def test_property_split_partitions_ratings(user_fraction, item_fraction, seed):
    """For any fractions, every rating lands in exactly one quadrant and no
    cold entity appears in the training quadrant."""
    ds = movielens_like(num_users=30, num_items=25, seed=seed, ratings_per_user=6.0)
    split = make_cold_start_split(ds, user_fraction, item_fraction, seed=seed)
    train = split.train_ratings()
    for scenario in SCENARIOS:
        rows = split.eval_ratings(scenario)
        if scenario in (Scenario.USER, Scenario.BOTH) and rows.size:
            assert not np.isin(rows[:, 0], split.train_users).any()
    total = len(train) + sum(len(split.eval_ratings(s)) for s in SCENARIOS)
    assert total == ds.num_ratings
