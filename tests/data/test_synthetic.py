"""Synthetic generators: determinism, Table II profiles, and the presence of
learnable signal (attribute correlation, collaborative structure)."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.data import (
    AttributeSpec,
    SyntheticConfig,
    bookcrossing_like,
    dataset_by_name,
    douban_like,
    generate,
    movielens_like,
)


class TestDeterminism:
    def test_same_seed_same_dataset(self):
        a = movielens_like(num_users=40, num_items=30, seed=5)
        b = movielens_like(num_users=40, num_items=30, seed=5)
        np.testing.assert_array_equal(a.ratings, b.ratings)
        np.testing.assert_array_equal(a.user_attributes, b.user_attributes)

    def test_different_seed_differs(self):
        a = movielens_like(num_users=40, num_items=30, seed=5)
        b = movielens_like(num_users=40, num_items=30, seed=6)
        assert not np.array_equal(a.ratings, b.ratings)


class TestProfiles:
    def test_movielens_profile(self):
        ds = movielens_like(num_users=50, num_items=40, seed=0)
        assert ds.user_attribute_names == ("age", "occupation", "gender", "zip_region")
        assert ds.item_attribute_names == ("rate", "genre", "director", "actor")
        assert ds.rating_range == (1.0, 5.0)
        assert ds.social_edges is None

    def test_bookcrossing_profile(self):
        ds = bookcrossing_like(num_users=50, num_items=40, seed=0)
        assert ds.user_attribute_names == ("age",)
        assert ds.item_attribute_names == ("publication_year",)
        assert ds.rating_range == (1.0, 10.0)

    def test_douban_profile_uses_id_attributes(self):
        ds = douban_like(num_users=40, num_items=50, seed=0)
        assert ds.user_attribute_names == ("user_id",)
        assert ds.user_attribute_cards == (40,)
        np.testing.assert_array_equal(ds.user_attributes[:, 0], np.arange(40))
        assert ds.social_edges is not None
        assert len(ds.social_edges) > 0

    def test_dataset_by_name(self):
        assert dataset_by_name("movielens", num_users=30, num_items=20).name == "movielens-like"
        with pytest.raises(KeyError):
            dataset_by_name("netflix")

    def test_ratings_within_range_and_integer(self):
        for ds in (movielens_like(num_users=30, num_items=25, seed=1),
                   bookcrossing_like(num_users=30, num_items=25, seed=1)):
            values = ds.rating_values()
            low, high = ds.rating_range
            assert values.min() >= low and values.max() <= high
            np.testing.assert_allclose(values, np.rint(values))


class TestSignal:
    def test_attribute_signal_exists(self):
        """Users sharing a genre-determining cluster rate more similarly
        than random pairs — attributes must carry preference signal."""
        ds = movielens_like(num_users=120, num_items=80, seed=3)
        values = ds.rating_values()
        # Variance of ratings within an item should be below global variance
        # (collaborative structure: items have consistent quality/taste).
        items = ds.rating_items()
        per_item_var = []
        for item in np.unique(items):
            vals = values[items == item]
            if len(vals) >= 5:
                per_item_var.append(vals.var())
        assert np.mean(per_item_var) < values.var()

    def test_popularity_skew(self):
        ds = movielens_like(num_users=150, num_items=100, seed=2)
        counts = np.bincount(ds.rating_items(), minlength=100)
        # Top-decile items collect well above their uniform share.
        top = np.sort(counts)[-10:].sum()
        assert top > 1.5 * counts.sum() * 10 / 100

    def test_social_homophily(self):
        ds = douban_like(num_users=100, num_items=50, seed=4)
        clusters = None  # cluster labels are internal; test degree structure
        edges = ds.social_edges
        assert (edges[:, 0] != edges[:, 1]).all()
        # undirected edges stored once, sorted
        assert (edges[:, 0] < edges[:, 1]).all()


class TestConfigValidation:
    def test_too_few_entities(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_users=1, num_items=10)

    def test_bad_rating_range(self):
        with pytest.raises(ValueError):
            SyntheticConfig(name="x", num_users=10, num_items=10,
                            rating_range=(5.0, 1.0))

    def test_bad_attribute_cardinality(self):
        config = SyntheticConfig(
            name="x", num_users=10, num_items=10,
            user_attrs=[AttributeSpec("bad", 0)],
        )
        with pytest.raises(ValueError):
            generate(config)


@settings(max_examples=10, deadline=None)
@given(
    num_users=st.integers(5, 40),
    num_items=st.integers(5, 40),
    seed=st.integers(0, 1000),
)
def test_property_generated_dataset_is_valid(num_users, num_items, seed):
    """Any configuration yields a schema-valid dataset (validation in
    RatingDataset.__post_init__ would raise otherwise)."""
    ds = movielens_like(num_users=num_users, num_items=num_items, seed=seed,
                        ratings_per_user=5.0)
    assert ds.num_ratings >= num_users  # every user rates >= 1 item
    assert ds.rating_users().max() < num_users
    assert ds.rating_items().max() < num_items
