"""Ranking metrics: hand-computed examples and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import (
    average_precision_at_k,
    ndcg_at_k,
    precision_at_k,
    rank_metrics,
    relevance_threshold,
)


class TestThreshold:
    def test_five_point_scale(self):
        assert relevance_threshold((1.0, 5.0)) == pytest.approx(4.0)

    def test_ten_point_scale(self):
        # ratings 8, 9, 10 are relevant
        assert relevance_threshold((1.0, 10.0)) == pytest.approx(7.75)


class TestPrecision:
    def test_perfect_ranking(self):
        predicted = np.array([5.0, 4.5, 4.0, 1.0, 1.0])
        actual = np.array([5.0, 4.0, 4.0, 1.0, 2.0])
        assert precision_at_k(predicted, actual, 3, 4.0) == pytest.approx(1.0)

    def test_worst_ranking(self):
        predicted = np.array([1.0, 2.0, 3.0, 4.0])
        actual = np.array([5.0, 5.0, 1.0, 1.0])
        assert precision_at_k(predicted, actual, 2, 4.0) == pytest.approx(0.0)

    def test_partial(self):
        predicted = np.array([5.0, 4.0, 3.0, 2.0])
        actual = np.array([5.0, 1.0, 4.0, 1.0])
        assert precision_at_k(predicted, actual, 2, 4.0) == pytest.approx(0.5)

    def test_short_list_truncates(self):
        predicted = np.array([3.0, 1.0])
        actual = np.array([5.0, 5.0])
        assert precision_at_k(predicted, actual, 10, 4.0) == pytest.approx(1.0)

    def test_validation(self):
        with pytest.raises(ValueError):
            precision_at_k(np.array([]), np.array([]), 5, 4.0)
        with pytest.raises(ValueError):
            precision_at_k(np.ones(3), np.ones(3), 0, 4.0)
        with pytest.raises(ValueError):
            precision_at_k(np.ones(3), np.ones(2), 5, 4.0)


class TestNDCG:
    def test_ideal_ranking_is_one(self):
        actual = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        assert ndcg_at_k(actual.copy(), actual, 5) == pytest.approx(1.0)

    def test_hand_computed(self):
        # Predicted order ranks items with actual [2, 5]; top-2 list = [2, 5].
        predicted = np.array([10.0, 1.0])
        actual = np.array([2.0, 5.0])
        dcg = 2.0 / np.log2(2) + 5.0 / np.log2(3)
        idcg = 5.0 / np.log2(2) + 2.0 / np.log2(3)
        assert ndcg_at_k(predicted, actual, 2) == pytest.approx(dcg / idcg)

    def test_all_zero_gains(self):
        assert ndcg_at_k(np.array([1.0, 2.0]), np.zeros(2), 2) == 0.0

    def test_reversed_worse_than_ideal(self):
        actual = np.array([5.0, 4.0, 1.0])
        worst = ndcg_at_k(-actual, actual, 3)
        assert 0 < worst < 1.0


class TestMAP:
    def test_all_relevant_first(self):
        predicted = np.array([9.0, 8.0, 1.0, 0.5])
        actual = np.array([5.0, 5.0, 1.0, 1.0])
        assert average_precision_at_k(predicted, actual, 4, 4.0) == pytest.approx(1.0)

    def test_hand_computed(self):
        # top-3 by prediction has relevance pattern [1, 0, 1]; 2 relevant total
        predicted = np.array([9.0, 8.0, 7.0])
        actual = np.array([5.0, 1.0, 5.0])
        expected = (1.0 / 1 + 2.0 / 3) / 2
        assert average_precision_at_k(predicted, actual, 3, 4.0) == pytest.approx(expected)

    def test_no_relevant_is_zero(self):
        assert average_precision_at_k(np.ones(3), np.ones(3), 3, 4.0) == 0.0


class TestRankMetrics:
    def test_keys_and_agreement(self):
        predicted = np.array([5.0, 4.0, 3.0, 2.0, 1.0])
        actual = np.array([5.0, 4.0, 4.0, 1.0, 1.0])
        out = rank_metrics(predicted, actual, 3, (1.0, 5.0))
        assert set(out) == {"precision", "ndcg", "map"}
        assert out["precision"] == pytest.approx(
            precision_at_k(predicted, actual, 3, 4.0))


@settings(max_examples=50, deadline=None)
@given(
    size=st.integers(1, 20),
    k=st.integers(1, 10),
    seed=st.integers(0, 10_000),
)
def test_property_metrics_bounded(size, k, seed):
    rng = np.random.default_rng(seed)
    predicted = rng.normal(size=size)
    actual = rng.integers(1, 6, size=size).astype(float)
    out = rank_metrics(predicted, actual, k, (1.0, 5.0))
    for name, value in out.items():
        assert 0.0 <= value <= 1.0, name


@settings(max_examples=30, deadline=None)
@given(size=st.integers(2, 15), seed=st.integers(0, 10_000))
def test_property_oracle_ranking_maximises_metrics(size, seed):
    """Scoring by the true ratings is at least as good as any random score."""
    rng = np.random.default_rng(seed)
    actual = rng.integers(1, 6, size=size).astype(float)
    random_scores = rng.normal(size=size)
    k = min(5, size)
    oracle = rank_metrics(actual + 1e-9 * rng.random(size), actual, k, (1.0, 5.0))
    chance = rank_metrics(random_scores, actual, k, (1.0, 5.0))
    for name in ("precision", "ndcg", "map"):
        assert oracle[name] >= chance[name] - 1e-12


@settings(max_examples=30, deadline=None)
@given(size=st.integers(2, 15), k=st.integers(1, 8), seed=st.integers(0, 10_000))
def test_property_metrics_invariant_to_joint_shuffle(size, k, seed):
    """Metrics depend on the (prediction, actual) pairing, not item order."""
    rng = np.random.default_rng(seed)
    predicted = rng.normal(size=size)
    actual = rng.integers(1, 6, size=size).astype(float)
    perm = rng.permutation(size)
    a = rank_metrics(predicted, actual, k, (1.0, 5.0))
    b = rank_metrics(predicted[perm], actual[perm], k, (1.0, 5.0))
    for name in a:
        assert a[name] == pytest.approx(b[name])
