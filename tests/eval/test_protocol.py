"""Evaluation protocol: scoring loop, aggregation, repeated runs, timing."""

import numpy as np
import pytest

from repro.baselines.base import RatingModel
from repro.eval import (
    ScenarioResult,
    build_eval_tasks,
    evaluate_model,
    evaluate_repeated,
    measure_test_time,
)


class OracleModel(RatingModel):
    """Predicts the true rating — the metric ceiling."""

    name = "Oracle"

    def fit(self, split, tasks):
        self.fitted = True

    def predict_task(self, task):
        return task.query_ratings + 1e-9


class NoisyModel(RatingModel):
    """Random scores — the chance floor."""

    name = "Noisy"

    def __init__(self, seed=0):
        self.rng = np.random.default_rng(seed)

    def fit(self, split, tasks):
        pass

    def predict_task(self, task):
        return self.rng.random(len(task.query_items))


class BrokenModel(RatingModel):
    name = "Broken"

    def fit(self, split, tasks):
        pass

    def predict_task(self, task):
        return np.zeros(1)  # wrong length


class TestEvaluateModel:
    def test_oracle_dominates_noise(self, ml_split):
        oracle = evaluate_model(OracleModel(), ml_split, "user", ks=(5,), seed=0)
        noisy = evaluate_model(NoisyModel(), ml_split, "user", ks=(5,), seed=0)
        assert oracle.metrics[5]["ndcg"] > noisy.metrics[5]["ndcg"]
        assert oracle.metrics[5]["ndcg"] == pytest.approx(1.0)

    def test_result_fields(self, ml_split):
        result = evaluate_model(OracleModel(), ml_split, "user", ks=(5, 7), seed=0)
        assert isinstance(result, ScenarioResult)
        assert result.model_name == "Oracle"
        assert result.num_tasks > 0
        assert set(result.metrics) == {5, 7}
        assert result.fit_seconds >= 0
        assert result.predict_seconds > 0
        assert len(result.per_task[5]["ndcg"]) == result.num_tasks

    def test_row_accessor(self, ml_split):
        result = evaluate_model(OracleModel(), ml_split, "user", ks=(5,), seed=0)
        assert result.row(5) == result.metrics[5]

    def test_precomputed_tasks(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=3)
        result = evaluate_model(OracleModel(), ml_split, "user", ks=(5,), tasks=tasks)
        assert result.num_tasks == len(tasks)

    def test_skip_fit(self, ml_split):
        model = OracleModel()
        result = evaluate_model(model, ml_split, "user", ks=(5,), fit=False, seed=0)
        assert result.fit_seconds == 0.0
        assert not hasattr(model, "fitted")

    def test_wrong_score_shape_rejected(self, ml_split):
        with pytest.raises(ValueError, match="scores"):
            evaluate_model(BrokenModel(), ml_split, "user", ks=(5,), seed=0)

    def test_no_tasks_raises(self, ml_split):
        with pytest.raises(ValueError, match="no evaluation tasks"):
            evaluate_model(OracleModel(), ml_split, "user", ks=(5,),
                           min_query=10_000)


class TestEvaluateRepeated:
    def test_mean_std_format(self, ml_split):
        out = evaluate_repeated(lambda seed: NoisyModel(seed), ml_split, "user",
                                repeats=3, ks=(5,), max_tasks=4)
        mean, std = out[5]["ndcg"]
        assert 0 <= mean <= 1
        assert std >= 0

    def test_deterministic_model_zero_std_on_fixed_tasks(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=4)
        out = evaluate_repeated(lambda seed: OracleModel(), ml_split, "user",
                                repeats=2, ks=(5,), tasks=tasks)
        assert out[5]["precision"][1] == pytest.approx(0.0)

    def test_fresh_tasks_per_repeat_by_default(self, ml_split):
        """Without pinned tasks each repeat re-splits support/query, so even
        a deterministic model shows run-to-run variance (matching the
        paper's mean ± std protocol)."""
        out = evaluate_repeated(lambda seed: OracleModel(), ml_split, "user",
                                repeats=3, ks=(5,), max_tasks=4)
        assert out[5]["ndcg"][0] == pytest.approx(1.0)  # oracle NDCG exact


class TestTiming:
    def test_measures_positive_time(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=4)
        seconds = measure_test_time(OracleModel(), tasks)
        assert seconds > 0

    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            measure_test_time(OracleModel(), [])
