"""Extended metrics: recall@k, MRR@k, MAE, RMSE."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import mae, mrr_at_k, rating_metrics, recall_at_k, rmse


class TestRecall:
    def test_full_recall(self):
        predicted = np.array([9.0, 8.0, 1.0])
        actual = np.array([5.0, 5.0, 1.0])
        assert recall_at_k(predicted, actual, 2, 4.0) == pytest.approx(1.0)

    def test_partial_recall(self):
        predicted = np.array([9.0, 1.0, 8.0, 2.0])
        actual = np.array([5.0, 5.0, 1.0, 5.0])
        # top-2 by prediction: items 0 and 2 -> one of three relevant found
        assert recall_at_k(predicted, actual, 2, 4.0) == pytest.approx(1 / 3)

    def test_no_relevant(self):
        assert recall_at_k(np.ones(3), np.ones(3), 2, 4.0) == 0.0


class TestMRR:
    def test_first_position(self):
        predicted = np.array([9.0, 1.0])
        actual = np.array([5.0, 1.0])
        assert mrr_at_k(predicted, actual, 2, 4.0) == pytest.approx(1.0)

    def test_second_position(self):
        predicted = np.array([9.0, 8.0])
        actual = np.array([1.0, 5.0])
        assert mrr_at_k(predicted, actual, 2, 4.0) == pytest.approx(0.5)

    def test_not_in_top_k(self):
        predicted = np.array([9.0, 8.0, 1.0])
        actual = np.array([1.0, 1.0, 5.0])
        assert mrr_at_k(predicted, actual, 2, 4.0) == 0.0


class TestPointwise:
    def test_mae_value(self):
        assert mae(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(1.5)

    def test_rmse_value(self):
        assert rmse(np.array([1.0, 3.0]), np.array([2.0, 1.0])) == pytest.approx(
            np.sqrt(2.5))

    def test_perfect_prediction(self):
        x = np.array([1.0, 2.0, 3.0])
        assert mae(x, x) == 0.0
        assert rmse(x, x) == 0.0

    def test_validation(self):
        with pytest.raises(ValueError):
            mae(np.ones(2), np.ones(3))
        with pytest.raises(ValueError):
            rmse(np.array([]), np.array([]))

    def test_rating_metrics_keys(self):
        out = rating_metrics(np.ones(3), np.zeros(3))
        assert out == {"mae": 1.0, "rmse": 1.0}


@settings(max_examples=40, deadline=None)
@given(size=st.integers(1, 30), seed=st.integers(0, 10_000))
def test_property_rmse_dominates_mae(size, seed):
    """RMSE >= MAE always (Jensen), equality iff constant absolute error."""
    rng = np.random.default_rng(seed)
    predicted = rng.normal(size=size)
    actual = rng.normal(size=size)
    assert rmse(predicted, actual) >= mae(predicted, actual) - 1e-12


@settings(max_examples=30, deadline=None)
@given(size=st.integers(2, 20), k=st.integers(1, 10), seed=st.integers(0, 10_000))
def test_property_recall_monotone_in_k(size, k, seed):
    rng = np.random.default_rng(seed)
    predicted = rng.normal(size=size)
    actual = rng.integers(1, 6, size=size).astype(float)
    r_small = recall_at_k(predicted, actual, k, 4.0)
    r_large = recall_at_k(predicted, actual, k + 3, 4.0)
    assert r_large >= r_small - 1e-12
