"""measure_test_time: warmup pass, per-repeat samples, scalar compatibility."""

import pytest

from repro import obs
from repro.eval import TestTimeResult, build_eval_tasks, measure_test_time


class CountingModel:
    name = "Counting"

    def __init__(self):
        self.calls = 0

    def predict_task(self, task):
        self.calls += 1
        return task.query_ratings


@pytest.fixture
def tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=4)


class TestScalarCompatibility:
    def test_result_is_a_float_equal_to_best(self, tasks):
        result = measure_test_time(CountingModel(), tasks, repeats=3)
        assert isinstance(result, float)
        assert float(result) == min(result.samples)
        assert result == result.best

    def test_arithmetic_still_works(self, tasks):
        result = measure_test_time(CountingModel(), tasks)
        assert result + 0.0 >= 0.0
        assert result * 2 == pytest.approx(2 * float(result))


class TestSamples:
    def test_per_repeat_samples(self, tasks):
        result = measure_test_time(CountingModel(), tasks, repeats=4)
        assert result.repeats == 4
        assert len(result.samples) == 4
        assert all(s > 0 for s in result.samples)
        assert result.best == min(result.samples)
        assert result.mean == pytest.approx(sum(result.samples) / 4)
        assert result.best <= result.p50 <= max(result.samples)

    def test_result_requires_samples(self):
        with pytest.raises(ValueError):
            TestTimeResult(())


class TestWarmup:
    def test_warmup_runs_one_untimed_pass(self, tasks):
        model = CountingModel()
        measure_test_time(model, tasks, repeats=2)
        assert model.calls == 3 * len(tasks)  # 1 warmup + 2 timed

    def test_warmup_can_be_disabled(self, tasks):
        model = CountingModel()
        measure_test_time(model, tasks, repeats=2, warmup=False)
        assert model.calls == 2 * len(tasks)


class TestValidation:
    def test_empty_tasks_rejected(self):
        with pytest.raises(ValueError):
            measure_test_time(CountingModel(), [])

    def test_repeats_validated(self, tasks):
        with pytest.raises(ValueError):
            measure_test_time(CountingModel(), tasks, repeats=0)


class TestSpans:
    def test_passes_recorded_as_spans(self, tasks):
        obs.reset_spans()
        try:
            with obs.profiling(True):
                measure_test_time(CountingModel(), tasks, repeats=3)
            totals = obs.span_totals()
            assert totals["measure_test_time/repeat"].count == 3
            assert totals["measure_test_time/warmup"].count == 1
        finally:
            obs.reset_spans()
            obs.enable_profiling(False)
