"""Paired bootstrap significance tests."""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.eval import build_eval_tasks, evaluate_model
from repro.eval.significance import compare_results, paired_bootstrap


class TestPairedBootstrap:
    def test_clear_difference_is_significant(self):
        rng = np.random.default_rng(0)
        b = rng.normal(0.5, 0.05, size=40)
        a = b + 0.2  # constant, large advantage
        out = paired_bootstrap(a, b, seed=0)
        assert out["mean_diff"] == pytest.approx(0.2)
        assert out["p_value"] < 0.01
        assert out["prob_a_better"] > 0.99
        assert out["ci"][0] > 0

    def test_identical_samples_not_significant(self):
        values = np.random.default_rng(1).normal(size=30)
        out = paired_bootstrap(values, values.copy(), seed=0)
        assert out["mean_diff"] == 0.0
        assert out["prob_a_better"] <= 1.0

    def test_noise_not_significant(self):
        rng = np.random.default_rng(2)
        a = rng.normal(0.5, 0.1, size=25)
        b = rng.normal(0.5, 0.1, size=25)
        out = paired_bootstrap(a, b, seed=0)
        assert out["p_value"] > 0.01 or abs(out["mean_diff"]) < 0.1

    def test_validation(self):
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(3), np.ones(4))
        with pytest.raises(ValueError):
            paired_bootstrap(np.ones(1), np.ones(1))

    def test_deterministic_given_seed(self):
        rng = np.random.default_rng(3)
        a, b = rng.normal(size=20), rng.normal(size=20)
        out1 = paired_bootstrap(a, b, seed=9)
        out2 = paired_bootstrap(a, b, seed=9)
        assert out1 == out2


class TestCompareResults:
    def test_oracle_vs_random_significant(self, ml_split):
        from repro.baselines import RandomScorer
        from repro.baselines.base import RatingModel

        class Oracle(RatingModel):
            name = "Oracle"

            def fit(self, split, tasks):
                pass

            def predict_task(self, task):
                return task.query_ratings + 1e-9

        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=8)
        oracle = evaluate_model(Oracle(), ml_split, "user", ks=(5,), tasks=tasks)
        random = evaluate_model(RandomScorer(seed=0), ml_split, "user", ks=(5,),
                                tasks=tasks)
        out = compare_results(oracle, random, metric="ndcg", k=5, seed=0)
        assert out["model_a"] == "Oracle"
        assert out["mean_diff"] > 0
        assert out["prob_a_better"] > 0.95

    def test_mismatched_tasks_rejected(self, ml_split):
        from repro.baselines import RandomScorer

        t1 = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=4)
        t2 = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=6)
        a = evaluate_model(RandomScorer(seed=0), ml_split, "user", ks=(5,), tasks=t1)
        b = evaluate_model(RandomScorer(seed=1), ml_split, "user", ks=(5,), tasks=t2)
        with pytest.raises(ValueError, match="task counts"):
            compare_results(a, b)


@settings(max_examples=20, deadline=None)
@given(
    size=st.integers(2, 40),
    shift=st.floats(-0.5, 0.5),
    seed=st.integers(0, 10_000),
)
def test_property_mean_diff_matches_shift(size, shift, seed):
    rng = np.random.default_rng(seed)
    b = rng.normal(size=size)
    a = b + shift
    out = paired_bootstrap(a, b, num_resamples=200, seed=0)
    assert out["mean_diff"] == pytest.approx(shift, abs=1e-12)
    lo, hi = out["ci"]
    assert lo <= out["mean_diff"] <= hi
