"""Evaluation task construction: support/query splits per test user."""

import numpy as np
import pytest

from repro.eval import EvalTask, build_eval_tasks


class TestEvalTask:
    def test_valid(self):
        task = EvalTask(
            user=3,
            support=np.array([[3, 0, 4.0]]),
            query=np.array([[3, 1, 5.0], [3, 2, 1.0]]),
        )
        np.testing.assert_array_equal(task.query_items, [1, 2])
        np.testing.assert_array_equal(task.support_items, [0])
        np.testing.assert_allclose(task.query_ratings, [5.0, 1.0])

    def test_empty_query_rejected(self):
        with pytest.raises(ValueError):
            EvalTask(user=0, support=np.empty((0, 3)), query=np.empty((0, 3)))

    def test_foreign_user_rejected(self):
        with pytest.raises(ValueError):
            EvalTask(user=0, support=np.array([[1, 0, 3.0]]),
                     query=np.array([[0, 1, 4.0]]))

    def test_empty_support_allowed(self):
        task = EvalTask(user=0, support=np.empty((0, 3)),
                        query=np.array([[0, 1, 4.0]]))
        assert task.support_items.size == 0


class TestBuildTasks:
    def test_tasks_are_cold_users(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0)
        assert tasks
        for task in tasks:
            assert ml_split.is_cold_user(task.user)

    def test_support_query_disjoint(self, ml_split):
        for task in build_eval_tasks(ml_split, "user", min_query=5, seed=0):
            overlap = set(map(int, task.support_items)) & set(map(int, task.query_items))
            assert not overlap

    def test_support_fraction(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", support_fraction=0.1,
                                 min_query=5, seed=0)
        for task in tasks:
            total = len(task.support) + len(task.query)
            assert len(task.support) == max(1, round(0.1 * total))

    def test_min_query_respected(self, ml_split):
        for task in build_eval_tasks(ml_split, "user", min_query=8, seed=0):
            assert len(task.query) >= 8

    def test_max_tasks(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=3)
        assert len(tasks) <= 3

    def test_item_scenario_users_are_warm(self, ml_split):
        tasks = build_eval_tasks(ml_split, "item", min_query=3, seed=0)
        for task in tasks:
            assert not ml_split.is_cold_user(task.user)
            for item in task.query_items:
                assert ml_split.is_cold_item(int(item))

    def test_deterministic(self, ml_split):
        a = build_eval_tasks(ml_split, "user", min_query=5, seed=4)
        b = build_eval_tasks(ml_split, "user", min_query=5, seed=4)
        assert [t.user for t in a] == [t.user for t in b]
        for ta, tb in zip(a, b):
            np.testing.assert_array_equal(ta.query, tb.query)

    def test_invalid_fraction(self, ml_split):
        with pytest.raises(ValueError):
            build_eval_tasks(ml_split, "user", support_fraction=1.0)
