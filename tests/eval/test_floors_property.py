"""Cross-cutting protocol property: the oracle ceiling dominates every real
model, which dominates nothing less than the chance floor's neighbourhood.
Calibrates that the metric pipeline is wired correctly end to end."""

import numpy as np
import pytest

from repro.baselines import GlobalMeanScorer, ItemMeanScorer, RandomScorer
from repro.baselines.base import RatingModel
from repro.eval import build_eval_tasks, evaluate_model


class _Oracle(RatingModel):
    name = "Oracle"

    def fit(self, split, tasks):
        pass

    def predict_task(self, task):
        return task.query_ratings + 1e-9


class _AntiOracle(RatingModel):
    """Deliberately inverted ranking — the true floor of the metric range."""

    name = "AntiOracle"

    def fit(self, split, tasks):
        pass

    def predict_task(self, task):
        return -task.query_ratings


@pytest.mark.parametrize("scenario", ["user", "item"])
def test_metric_ordering_oracle_floors_anti(ml_split, scenario):
    tasks = build_eval_tasks(ml_split, scenario, min_query=5, seed=0, max_tasks=8)
    if not tasks:
        pytest.skip("no tasks")

    def ndcg(model):
        return evaluate_model(model, ml_split, scenario, ks=(5,),
                              tasks=tasks).metrics[5]["ndcg"]

    oracle = ndcg(_Oracle())
    anti = ndcg(_AntiOracle())
    chance = float(np.mean([ndcg(RandomScorer(seed=s)) for s in range(4)]))
    item_mean = ndcg(ItemMeanScorer())
    global_mean = ndcg(GlobalMeanScorer())

    assert oracle == pytest.approx(1.0)
    assert anti < chance           # inverted ranking is below chance
    assert oracle > item_mean - 1e-9
    assert oracle > global_mean - 1e-9
    # The informative floor is at least chance level on average.
    assert item_mean >= chance - 0.06


def test_floors_are_reported_consistently_across_k(ml_split):
    tasks = build_eval_tasks(ml_split, "user", min_query=9, seed=0, max_tasks=6)
    if not tasks:
        pytest.skip("no long-list tasks")
    result = evaluate_model(_Oracle(), ml_split, "user", ks=(5, 7), tasks=tasks)
    # Oracle NDCG is exactly 1 at every k.
    for k in (5, 7):
        assert result.metrics[k]["ndcg"] == pytest.approx(1.0)
    # Oracle precision can only drop (or stay) as k grows: deeper cuts
    # admit less-relevant items.
    assert result.metrics[7]["precision"] <= result.metrics[5]["precision"] + 1e-9
