"""Trivial reference scorers (metric floors)."""

import numpy as np
import pytest

from repro.baselines import (
    GlobalMeanScorer,
    ItemMeanScorer,
    RandomScorer,
    UserMeanScorer,
)
from repro.eval import build_eval_tasks, evaluate_model


@pytest.fixture(scope="module")
def tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=5)


class TestRandomScorer:
    def test_scores_shape(self, ml_split, tasks):
        model = RandomScorer(seed=0)
        model.fit(ml_split, tasks)
        assert model.predict_task(tasks[0]).shape == (len(tasks[0].query_items),)

    def test_different_tasks_different_scores(self, ml_split, tasks):
        model = RandomScorer(seed=0)
        a = model.predict_task(tasks[0])
        b = model.predict_task(tasks[0])
        assert not np.allclose(a, b)


class TestGlobalMean:
    def test_constant_prediction(self, ml_split, tasks):
        model = GlobalMeanScorer()
        model.fit(ml_split, tasks)
        scores = model.predict_task(tasks[0])
        assert np.unique(scores).size == 1
        low, high = ml_split.dataset.rating_range
        assert low <= scores[0] <= high

    def test_requires_fit(self, tasks):
        with pytest.raises(RuntimeError):
            GlobalMeanScorer().predict_task(tasks[0])


class TestItemMean:
    def test_matches_manual_mean(self, ml_split, tasks):
        from repro.baselines import combine_support_ratings

        model = ItemMeanScorer()
        model.fit(ml_split, tasks)
        triples = combine_support_ratings(ml_split, tasks)
        item = int(tasks[0].query_items[0])
        mask = triples[:, 1].astype(int) == item
        if mask.any():
            expected = triples[mask, 2].mean()
            assert model.predict_task(tasks[0])[0] == pytest.approx(expected)

    def test_unknown_item_gets_global_mean(self, ml_split, tasks):
        model = ItemMeanScorer()
        model.fit(ml_split, tasks)
        # An item id that definitely has no training rating.
        fake = type(tasks[0])(
            user=tasks[0].user,
            support=tasks[0].support,
            query=np.array([[tasks[0].user, ml_split.dataset.num_items - 1, 3.0]]),
        )
        score = model.predict_task(fake)
        # Either the item happens to be rated or we get the global mean.
        assert np.isfinite(score).all()

    def test_beats_random_on_user_cold_start(self, ml_split, tasks):
        """Warm-item quality is real signal: the item-mean floor should be
        at least the chance floor on average."""
        item_mean = evaluate_model(ItemMeanScorer(), ml_split, "user",
                                   ks=(5,), tasks=tasks)
        chance = []
        for rep in range(5):
            chance.append(evaluate_model(RandomScorer(seed=rep), ml_split, "user",
                                         ks=(5,), tasks=tasks).metrics[5]["ndcg"])
        assert item_mean.metrics[5]["ndcg"] >= np.mean(chance) - 0.05


class TestUserMean:
    def test_constant_per_task(self, ml_split, tasks):
        model = UserMeanScorer()
        model.fit(ml_split, tasks)
        scores = model.predict_task(tasks[0])
        assert np.unique(scores).size == 1

    def test_cold_user_mean_comes_from_support(self, ml_split, tasks):
        model = UserMeanScorer()
        model.fit(ml_split, tasks)
        task = tasks[0]
        assert model.predict_task(task)[0] == pytest.approx(task.support[:, 2].mean())
