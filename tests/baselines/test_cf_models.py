"""CF baselines (NeuMF, Wide&Deep, DeepFM, AFN): learning and prediction."""

import numpy as np
import pytest

from repro.baselines import AFN, DeepFM, NeuMF, WideDeep
from repro.eval import build_eval_tasks, evaluate_model

CF_CLASSES = [NeuMF, WideDeep, DeepFM, AFN]


@pytest.fixture(scope="module")
def user_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=5)


@pytest.mark.parametrize("cls", CF_CLASSES)
class TestCFCommon:
    def test_fit_and_predict(self, cls, ml_dataset, ml_split, user_tasks):
        model = cls(ml_dataset, steps=30, seed=0)
        model.fit(ml_split, user_tasks)
        scores = model.predict_task(user_tasks[0])
        assert scores.shape == (len(user_tasks[0].query_items),)
        assert np.isfinite(scores).all()

    def test_loss_decreases(self, cls, ml_dataset, ml_split, user_tasks):
        model = cls(ml_dataset, steps=250, seed=0)
        model.fit(ml_split, user_tasks)
        assert np.mean(model.loss_history[-20:]) < np.mean(model.loss_history[:20])

    def test_deterministic_given_seed(self, cls, ml_dataset, ml_split, user_tasks):
        a = cls(ml_dataset, steps=15, seed=3)
        a.fit(ml_split, user_tasks)
        b = cls(ml_dataset, steps=15, seed=3)
        b.fit(ml_split, user_tasks)
        np.testing.assert_allclose(a.predict_task(user_tasks[0]),
                                   b.predict_task(user_tasks[0]))

    def test_beats_chance_on_warm_fit(self, cls, ml_dataset, ml_split, user_tasks):
        """A trained CF model should rank better than random on average."""
        model = cls(ml_dataset, steps=400, seed=0)
        result = evaluate_model(model, ml_split, "user", ks=(5,), tasks=user_tasks)

        class Chance:
            name = "chance"

            def __init__(self):
                self.rng = np.random.default_rng(0)

            def fit(self, split, tasks):
                pass

            def predict_task(self, task):
                return self.rng.random(len(task.query_items))

        chance_vals = []
        for rep in range(5):
            chance = Chance()
            chance.rng = np.random.default_rng(rep)
            chance_vals.append(
                evaluate_model(chance, ml_split, "user", ks=(5,),
                               tasks=user_tasks).metrics[5]["ndcg"])
        assert result.metrics[5]["ndcg"] > np.mean(chance_vals) - 0.05


class TestArchitectureSpecifics:
    def test_neumf_has_gmf_and_mlp(self, ml_dataset, ml_split):
        model = NeuMF(ml_dataset, steps=2, seed=0)
        model.fit(ml_split, [])
        names = dict(model.network.named_parameters())
        assert any("user_proj" in n for n in names)
        assert any("mlp" in n for n in names)
        assert any("head" in n for n in names)

    def test_widedeep_has_wide_and_deep(self, ml_dataset, ml_split):
        model = WideDeep(ml_dataset, steps=2, seed=0)
        model.fit(ml_split, [])
        names = dict(model.network.named_parameters())
        assert any("wide_user" in n for n in names)
        assert any("deep" in n for n in names)

    def test_deepfm_second_order_identity(self, ml_dataset, ml_split):
        """The FM trick 0.5((Σv)² − Σv²) equals the explicit pairwise sum."""
        model = DeepFM(ml_dataset, steps=2, seed=0)
        model.fit(ml_split, [])
        net = model.network
        users, items = np.array([0, 1]), np.array([0, 1])
        fields = net.encoder.field_embeddings(users, items).data
        summed = fields.sum(axis=1)
        trick = 0.5 * ((summed * summed) - (fields * fields).sum(axis=1)).sum(-1)
        explicit = np.zeros(2)
        nf = fields.shape[1]
        for a in range(nf):
            for b in range(a + 1, nf):
                explicit += (fields[:, a] * fields[:, b]).sum(-1)
        np.testing.assert_allclose(trick, explicit, atol=1e-10)

    def test_afn_handles_negative_embeddings(self, ml_dataset, ml_split):
        """The abs+clip floor keeps log() finite for any embedding sign."""
        model = AFN(ml_dataset, steps=5, seed=0)
        model.fit(ml_split, [])
        assert np.isfinite(model.loss_history).all()

    def test_afn_log_neuron_count(self, ml_dataset, ml_split):
        model = AFN(ml_dataset, num_log_neurons=3, steps=2, seed=0)
        model.fit(ml_split, [])
        assert model.network.log_weights.shape[1] == 3
