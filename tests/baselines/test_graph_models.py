"""Graph-based baselines: GraphRec (social), GraphHINGE and MetaHIN (HIN)."""

import numpy as np
import pytest

from repro.baselines import GraphHINGE, GraphRec, MetaHIN
from repro.eval import build_eval_tasks


@pytest.fixture(scope="module")
def ml_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=3)


@pytest.fixture(scope="module")
def douban_tasks(douban_split):
    return build_eval_tasks(douban_split, "user", min_query=5, seed=0, max_tasks=3)


class TestGraphRec:
    def test_requires_social_graph(self, ml_dataset):
        with pytest.raises(ValueError, match="social"):
            GraphRec(ml_dataset)

    def test_fit_and_predict(self, douban_dataset, douban_split, douban_tasks):
        model = GraphRec(douban_dataset, steps=15, batch_size=8, seed=0)
        model.fit(douban_split, douban_tasks)
        scores = model.predict_task(douban_tasks[0])
        assert scores.shape == (len(douban_tasks[0].query_items),)
        assert np.isfinite(scores).all()

    def test_cold_user_uses_support_neighborhood(self, douban_dataset,
                                                 douban_split, douban_tasks):
        """Support ratings must be reachable in the aggregation graph."""
        model = GraphRec(douban_dataset, steps=5, batch_size=4, seed=0)
        model.fit(douban_split, douban_tasks)
        task = douban_tasks[0]
        rated = model.graph.items_of_user(task.user)
        assert set(map(int, task.support_items)) <= set(map(int, rated))

    def test_friends_index_symmetric(self, douban_dataset, douban_split,
                                     douban_tasks):
        model = GraphRec(douban_dataset, steps=2, batch_size=4, seed=0)
        model.fit(douban_split, douban_tasks)
        for a, b in douban_dataset.social_edges[:20]:
            assert int(b) in model.friends[int(a)]
            assert int(a) in model.friends[int(b)]

    def test_predict_before_fit(self, douban_dataset, douban_tasks):
        with pytest.raises(RuntimeError):
            GraphRec(douban_dataset).predict_task(douban_tasks[0])


class TestGraphHINGE:
    def test_fit_and_predict(self, ml_dataset, ml_split, ml_tasks):
        model = GraphHINGE(ml_dataset, steps=10, batch_size=8, seed=0)
        model.fit(ml_split, ml_tasks)
        scores = model.predict_task(ml_tasks[0])
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 5.0).all()

    def test_neighborhoods_typed(self, ml_dataset, ml_split, ml_tasks):
        from repro.data import node_id

        model = GraphHINGE(ml_dataset, steps=2, batch_size=4, seed=0)
        model.fit(ml_split, ml_tasks)
        user = int(ml_split.train_users[0])
        from repro.baselines.graphhinge import _USER_METAPATHS
        items, users = model._neighborhood(node_id("user", user), _USER_METAPATHS)
        # user metapaths end at items only
        assert users.size == 0
        if items.size:
            assert items.max() < ml_dataset.num_items

    def test_interaction_zero_when_isolated(self, ml_dataset, ml_split, ml_tasks):
        model = GraphHINGE(ml_dataset, steps=2, batch_size=4, seed=0)
        model.fit(ml_split, ml_tasks)
        # An unrated cold item with no attr overlap still yields a finite score.
        from repro import nn
        with nn.no_grad():
            inter = model._interaction(int(ml_split.train_users[0]),
                                       int(ml_split.test_items[0]))
        assert np.isfinite(inter.data).all()


class TestMetaHIN:
    def test_fit_and_predict(self, ml_dataset, ml_split, ml_tasks):
        model = MetaHIN(ml_dataset, episodes=15, seed=0)
        model.fit(ml_split, ml_tasks)
        scores = model.predict_task(ml_tasks[0])
        assert np.isfinite(scores).all()

    def test_semantic_context_nonzero_for_connected_items(self, ml_dataset,
                                                          ml_split, ml_tasks):
        model = MetaHIN(ml_dataset, episodes=5, seed=0)
        model.fit(ml_split, ml_tasks)
        support_items = ml_split.train_ratings()[:3, 1].astype(np.int64)
        from repro import nn
        with nn.no_grad():
            ctx = model._semantic_context(support_items)
        assert np.abs(ctx.data).sum() > 0

    def test_semantic_context_zero_without_support(self, ml_dataset, ml_split,
                                                   ml_tasks):
        model = MetaHIN(ml_dataset, episodes=5, seed=0)
        model.fit(ml_split, ml_tasks)
        from repro import nn
        with nn.no_grad():
            ctx = model._semantic_context(np.empty(0, dtype=np.int64))
        np.testing.assert_array_equal(ctx.data, 0)

    def test_adaptation_restores_parameters(self, ml_dataset, ml_split, ml_tasks):
        model = MetaHIN(ml_dataset, episodes=10, seed=0)
        model.fit(ml_split, ml_tasks)
        before = model.network.state_dict()
        model.predict_task(ml_tasks[0])
        after = model.network.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key], err_msg=key)
