"""Shared baseline infrastructure: PairEncoder, support folding, the
pairwise training loop."""

import numpy as np
import pytest

from repro.baselines import NeuMF, PairEncoder, combine_support_ratings
from repro.eval import build_eval_tasks


class TestPairEncoder:
    def test_dims(self, ml_dataset):
        enc = PairEncoder(ml_dataset, attr_dim=4, rng=np.random.default_rng(0))
        assert enc.user_dim == ml_dataset.num_user_attributes * 4
        assert enc.item_dim == ml_dataset.num_item_attributes * 4
        assert enc.num_user_fields == ml_dataset.num_user_attributes

    def test_encode_shapes(self, ml_dataset):
        enc = PairEncoder(ml_dataset, attr_dim=4, rng=np.random.default_rng(0))
        assert enc.encode_users(np.array([0, 1])).shape == (2, enc.user_dim)
        assert enc.encode_items(np.array([0])).shape == (1, enc.item_dim)

    def test_field_embeddings_shape(self, ml_dataset):
        enc = PairEncoder(ml_dataset, attr_dim=4, rng=np.random.default_rng(0))
        fields = enc.field_embeddings(np.array([0, 1]), np.array([2, 3]))
        expected_fields = enc.num_user_fields + enc.num_item_fields
        assert fields.shape == (2, expected_fields, 4)

    def test_same_user_same_encoding(self, ml_dataset):
        enc = PairEncoder(ml_dataset, attr_dim=4, rng=np.random.default_rng(0))
        out = enc.encode_users(np.array([5, 5])).data
        np.testing.assert_array_equal(out[0], out[1])


class TestCombineSupportRatings:
    def test_supports_appended(self, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0)
        combined = combine_support_ratings(ml_split, tasks)
        train = ml_split.train_ratings()
        support_total = sum(len(t.support) for t in tasks)
        assert len(combined) == len(train) + support_total

    def test_no_query_leakage(self, ml_split):
        """Query triples must never reach the training data."""
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0)
        combined = combine_support_ratings(ml_split, tasks)
        combined_pairs = {(int(u), int(i)) for u, i, _ in combined}
        for task in tasks:
            for item in task.query_items:
                assert (task.user, int(item)) not in combined_pairs

    def test_empty_tasks(self, ml_split):
        combined = combine_support_ratings(ml_split, [])
        assert len(combined) == len(ml_split.train_ratings())


class TestPairwiseLoop:
    def test_predict_before_fit_raises(self, ml_dataset, ml_split):
        model = NeuMF(ml_dataset, steps=2, seed=0)
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0)
        with pytest.raises(RuntimeError, match="fit"):
            model.predict_task(tasks[0])

    def test_fit_records_loss_history(self, ml_dataset, ml_split):
        model = NeuMF(ml_dataset, steps=10, seed=0)
        model.fit(ml_split, [])
        assert len(model.loss_history) == 10

    def test_training_reduces_loss(self, ml_dataset, ml_split):
        model = NeuMF(ml_dataset, steps=200, seed=0)
        model.fit(ml_split, [])
        first = np.mean(model.loss_history[:10])
        last = np.mean(model.loss_history[-10:])
        assert last < first

    def test_scores_in_rating_range(self, ml_dataset, ml_split):
        model = NeuMF(ml_dataset, steps=10, seed=0)
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0)
        model.fit(ml_split, tasks)
        scores = model.predict_task(tasks[0])
        assert (scores >= 0).all() and (scores <= 5.0).all()
