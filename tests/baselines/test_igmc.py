"""IGMC extension baseline: subgraph extraction and GNN behaviour."""

import numpy as np
import pytest

from repro.baselines import IGMC
from repro.eval import build_eval_tasks


@pytest.fixture(scope="module")
def fitted(ml_dataset, ml_split):
    tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=3)
    model = IGMC(ml_dataset, steps=8, batch_size=4, seed=0)
    model.fit(ml_split, tasks)
    return model, tasks


class TestSubgraph:
    def test_target_nodes_first(self, fitted, ml_split):
        model, _ = fitted
        row = ml_split.train_ratings()[0]
        roles, adjacency = model._subgraph(int(row[0]), int(row[1]),
                                           exclude_target_edge=False)
        assert roles[0] == 0  # target user label
        assert 1 in roles     # target item label present
        assert set(np.unique(roles)) <= {0, 1, 2, 3}

    def test_target_edge_excluded_in_training_mode(self, fitted, ml_split):
        model, _ = fitted
        row = ml_split.train_ratings()[0]
        user, item = int(row[0]), int(row[1])
        roles, adj_excl = model._subgraph(user, item, exclude_target_edge=True)
        _, adj_incl = model._subgraph(user, item, exclude_target_edge=False)
        target_item_pos = int(np.flatnonzero(roles == 1)[0])
        # The (target user, target item) cell is zero across all levels when
        # the label edge is excluded, and present otherwise.
        assert all(a[0, target_item_pos] == 0 for a in adj_excl)
        assert any(a[0, target_item_pos] > 0 for a in adj_incl)

    def test_adjacency_symmetric(self, fitted, ml_split):
        model, _ = fitted
        row = ml_split.train_ratings()[1]
        _, adjacency = model._subgraph(int(row[0]), int(row[1]),
                                       exclude_target_edge=False)
        for level in adjacency:
            np.testing.assert_allclose(level, level.T)

    def test_neighbor_budget_respected(self, fitted, ml_split):
        model, _ = fitted
        row = ml_split.train_ratings()[0]
        roles, _ = model._subgraph(int(row[0]), int(row[1]),
                                   exclude_target_edge=False)
        assert len(roles) <= 2 + 2 * model.max_neighbors


class TestModel:
    def test_fit_and_predict(self, fitted):
        model, tasks = fitted
        scores = model.predict_task(tasks[0])
        assert scores.shape == (len(tasks[0].query_items),)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 5.0).all()

    def test_loss_recorded(self, fitted):
        model, _ = fitted
        assert len(model.loss_history) == 8
        assert np.isfinite(model.loss_history).all()

    def test_inductive_on_cold_user(self, fitted, ml_split):
        """A cold user's score is computable: role labels are structural,
        no per-entity parameters exist."""
        model, tasks = fitted
        cold_user = int(ml_split.test_users[0])
        warm_item = int(ml_split.train_items[0])
        from repro import nn
        with nn.no_grad():
            score = model._score(cold_user, warm_item, exclude_target_edge=False)
        assert np.isfinite(score.item())

    def test_predict_before_fit(self, ml_dataset, ml_split):
        tasks = build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=1)
        with pytest.raises(RuntimeError):
            IGMC(ml_dataset).predict_task(tasks[0])

    def test_registry(self, ml_dataset):
        from repro.experiments import create_model

        model = create_model("IGMC", ml_dataset, seed=0, preset="fast")
        assert model.name == "IGMC"
