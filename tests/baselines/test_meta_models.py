"""Meta-learning baselines (MeLU, MAMO, TaNP): episodes, adaptation,
parameter restoration."""

import numpy as np
import pytest

from repro.baselines import MAMO, MeLU, TaNP, group_ratings_by_user
from repro.eval import build_eval_tasks

META_CLASSES = [MeLU, MAMO, TaNP]


@pytest.fixture(scope="module")
def user_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=5, seed=0, max_tasks=4)


class TestGrouping:
    def test_groups_by_user(self):
        triples = np.array([
            [0, 0, 3.0], [0, 1, 4.0],
            [1, 0, 2.0], [1, 2, 5.0],
            [2, 0, 1.0],  # only one rating -> dropped
        ])
        grouped = group_ratings_by_user(triples)
        assert set(grouped) == {0, 1}
        assert len(grouped[0]) == 2

    def test_empty(self):
        assert group_ratings_by_user(np.empty((0, 3))) == {}


@pytest.mark.parametrize("cls", META_CLASSES)
class TestMetaCommon:
    def test_fit_and_predict(self, cls, ml_dataset, ml_split, user_tasks):
        model = cls(ml_dataset, episodes=20, seed=0)
        model.fit(ml_split, user_tasks)
        scores = model.predict_task(user_tasks[0])
        assert scores.shape == (len(user_tasks[0].query_items),)
        assert np.isfinite(scores).all()
        assert (scores >= 0).all() and (scores <= 5.0).all()

    def test_predict_before_fit_raises(self, cls, ml_dataset, user_tasks):
        with pytest.raises(RuntimeError):
            cls(ml_dataset, episodes=5, seed=0).predict_task(user_tasks[0])

    def test_loss_history_length(self, cls, ml_dataset, ml_split, user_tasks):
        model = cls(ml_dataset, episodes=15, seed=0)
        model.fit(ml_split, user_tasks)
        assert len(model.loss_history) == 15

    def test_adaptation_restores_parameters(self, cls, ml_dataset, ml_split,
                                            user_tasks):
        """predict_task adapts then restores — repeated calls must agree."""
        model = cls(ml_dataset, episodes=10, seed=0)
        model.fit(ml_split, user_tasks)
        before = model.network.state_dict()
        a = model.predict_task(user_tasks[0])
        after = model.network.state_dict()
        for key in before:
            np.testing.assert_allclose(before[key], after[key], atol=1e-12,
                                       err_msg=key)
        b = model.predict_task(user_tasks[0])
        np.testing.assert_allclose(a, b)


class TestAdaptationEffects:
    def test_melu_adaptation_changes_predictions(self, ml_dataset, ml_split,
                                                 user_tasks):
        """Inner-loop adaptation on the support must move the scores."""
        model = MeLU(ml_dataset, episodes=30, inner_steps=3, inner_lr=0.1, seed=0)
        model.fit(ml_split, user_tasks)
        task = user_tasks[0]
        adapted = model.predict_task(task)
        unadapted = model.adapt_and_score(np.empty((0, 3)), task.user,
                                          task.query_items)
        assert not np.allclose(adapted, unadapted)

    def test_mamo_memory_personalizes(self, ml_dataset, ml_split, user_tasks):
        """Different users read different biases from the memory."""
        model = MAMO(ml_dataset, episodes=20, seed=0)
        model.fit(ml_split, user_tasks)
        from repro import nn
        with nn.no_grad():
            bias_a = model.network.personalized_bias(int(ml_split.train_users[0])).data
            bias_b = model.network.personalized_bias(int(ml_split.train_users[1])).data
        assert not np.allclose(bias_a, bias_b)

    def test_tanp_task_latent_depends_on_support(self, ml_dataset, ml_split,
                                                 user_tasks):
        model = TaNP(ml_dataset, episodes=20, seed=0)
        model.fit(ml_split, user_tasks)
        task = user_tasks[0]
        from repro import nn
        with nn.no_grad():
            z_full = model.network.encode_task(task.support, 5.0).data
            flipped = task.support.copy()
            flipped[:, 2] = 5.0 - flipped[:, 2] + 1.0
            z_flip = model.network.encode_task(flipped, 5.0).data
        assert not np.allclose(z_full, z_flip)

    def test_tanp_empty_support_fallback(self, ml_dataset, ml_split, user_tasks):
        model = TaNP(ml_dataset, episodes=10, seed=0)
        model.fit(ml_split, user_tasks)
        task = user_tasks[0]
        scores = model.adapt_and_score(np.empty((0, 3)), task.user, task.query_items)
        assert np.isfinite(scores).all()

    def test_episode_sampling_respects_limits(self, ml_dataset, ml_split):
        model = MeLU(ml_dataset, episodes=1, max_support=3, max_query=7, seed=0)
        model.fit(ml_split, [])
        grouped = group_ratings_by_user(ml_split.train_ratings())
        for _ in range(20):
            ep = model.sample_episode(grouped)
            assert 1 <= len(ep.support) <= 3
            assert 1 <= len(ep.query) <= 7
            # support and query are disjoint rows of one user
            assert (ep.support[:, 0] == ep.user).all()
            assert (ep.query[:, 0] == ep.user).all()
