"""PromotionGate: deterministic probes, accept/reject, live-window tasks."""

import numpy as np
import pytest

from repro.online import GateConfig, ProbeResult, PromotionGate, tasks_from_deltas


def probe(rmse):
    return ProbeResult(rmse=rmse, mae=rmse * 0.8, num_tasks=3, num_ratings=30)


class TestEvaluate:
    def test_probe_score_is_deterministic(self, gate, online_model):
        first = gate.evaluate(online_model)
        second = gate.evaluate(online_model)
        assert first.rmse == second.rmse
        assert first.mae == second.mae
        assert first.num_tasks == len(gate.probe_tasks)
        assert first.num_ratings == sum(len(t.query) for t in gate.probe_tasks)

    def test_empty_task_list_raises(self, gate, online_model):
        with pytest.raises(ValueError, match="empty task list"):
            gate.evaluate(online_model, tasks=[])

    def test_gate_requires_a_probe(self, ml_split):
        with pytest.raises(ValueError, match="at least one task"):
            PromotionGate(ml_split, [])


class TestDecide:
    def test_better_candidate_accepted(self, gate):
        decision = gate.decide(probe(0.9), probe(1.0))
        assert decision.accepted
        assert "<=" in decision.reason

    def test_equal_candidate_accepted_at_zero_margin(self, gate):
        assert gate.decide(probe(1.0), probe(1.0)).accepted

    def test_worse_candidate_rejected(self, gate):
        decision = gate.decide(probe(1.01), probe(1.0))
        assert not decision.accepted

    def test_accept_margin_gives_slack(self, ml_split, probe_tasks):
        gate = PromotionGate(ml_split, probe_tasks,
                             GateConfig(accept_margin=0.05))
        assert gate.decide(probe(1.04), probe(1.0)).accepted
        assert not gate.decide(probe(1.06), probe(1.0)).accepted

    def test_judge_rejects_a_deliberately_regressed_candidate(
            self, gate, trainer, online_model):
        """Scrambling every parameter with large noise must fail the gate."""
        wrecked = trainer.clone(online_model)
        rng = np.random.default_rng(0)
        for param in wrecked.parameters():
            param.data = param.data + rng.normal(0.0, 5.0, param.data.shape)
        decision = gate.judge(wrecked, online_model)
        assert not decision.accepted
        assert decision.candidate.rmse > decision.active.rmse


class TestRollbackThreshold:
    def test_regressed_beyond_margin(self, ml_split, probe_tasks):
        gate = PromotionGate(ml_split, probe_tasks,
                             GateConfig(rollback_margin=0.05))
        assert gate.regressed(probe(1.06), probe(1.0))
        assert not gate.regressed(probe(1.04), probe(1.0))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            GateConfig(accept_margin=-0.1)
        with pytest.raises(ValueError):
            GateConfig(rollback_margin=-0.1)


class TestLiveTasks:
    def test_groups_deltas_per_user(self, gate):
        graph = gate.graph
        users, items = [], []
        # Find two distinct unrated (user, item) pairs per user.
        for user in range(graph.num_users):
            free = [i for i in range(graph.num_items)
                    if not graph.has_rating(user, i)]
            if len(free) >= 2:
                users.append(user)
                items.append(free[:2])
            if len(users) == 2:
                break
        deltas = np.array([[users[0], items[0][0], 3.0],
                           [users[0], items[0][1], 4.0],
                           [users[1], items[1][0], 5.0]])
        tasks = gate.live_tasks(deltas)
        assert len(tasks) == 2
        by_user = {task.user: task for task in tasks}
        assert len(by_user[users[0]].query) == 2
        assert len(by_user[users[1]].query) == 1
        assert all(task.support.size == 0 for task in tasks)

    def test_observed_pairs_are_filtered(self, gate, ml_split):
        rated = ml_split.train_ratings()[0]
        assert tasks_from_deltas(np.array([rated]), gate.graph) == []

    def test_live_window_scores_both_models(self, gate, online_model,
                                            trainer):
        graph = gate.graph
        free = [(u, i) for u in range(5) for i in range(graph.num_items)
                if not graph.has_rating(u, i)][:4]
        deltas = np.array([[u, i, 4.0] for u, i in free])
        tasks = gate.live_tasks(deltas)
        assert tasks
        result = gate.evaluate(online_model, tasks)
        assert result.num_ratings == len(deltas)
        assert np.isfinite(result.rmse)
