"""IncrementalTrainer: cloning, view assembly, bit-exact reproducibility."""

import numpy as np
import pytest

from repro.online import (
    FineTuneConfig,
    IncrementalTrainer,
    derive_round_seed,
)


def assert_state_equal(a, b):
    assert a.keys() == b.keys()
    for name in a:
        assert np.array_equal(a[name], b[name]), name


class TestRoundSeed:
    def test_pure_function_of_inputs(self):
        assert derive_round_seed(0, 10) == derive_round_seed(0, 10)

    def test_varies_with_offset_and_seed(self):
        seeds = {derive_round_seed(0, 10), derive_round_seed(0, 11),
                 derive_round_seed(1, 10)}
        assert len(seeds) == 3


class TestClone:
    def test_clone_shares_nothing(self, trainer, online_model):
        clone = trainer.clone(online_model)
        assert_state_equal(clone.state_dict(), online_model.state_dict())
        first = next(iter(clone.parameters()))
        first.data = first.data + 1.0
        base_first = next(iter(online_model.parameters()))
        assert not np.array_equal(first.data, base_first.data)


class TestViewAssembly:
    def test_fresh_boost_oversamples_fresh_rows(self, ml_split, warm_deltas):
        trainer = IncrementalTrainer(ml_split, config=FineTuneConfig(
            steps=1, fresh_boost=3))
        view = trainer.build_view(warm_deltas)
        base = len(ml_split.train_ratings())
        assert len(view.ratings) == base + 3 * len(warm_deltas)

    def test_replay_off_trains_on_deltas_only(self, ml_split, warm_deltas):
        trainer = IncrementalTrainer(ml_split, config=FineTuneConfig(
            steps=1, replay=False, fresh_boost=1))
        view = trainer.build_view(warm_deltas)
        assert len(view.ratings) == len(warm_deltas)

    def test_new_entities_join_the_pools(self, ml_split):
        trainer = IncrementalTrainer(ml_split, config=FineTuneConfig(steps=1))
        new_user = int(ml_split.train_users.max()) + 1
        new_item = int(ml_split.train_items.max()) + 1
        view = trainer.build_view(np.array([[new_user, new_item, 4.0]]))
        assert new_user in view.train_users
        assert new_item in view.train_items

    def test_nothing_to_train_on_raises(self, ml_split):
        trainer = IncrementalTrainer(ml_split, config=FineTuneConfig(
            steps=1, replay=False))
        with pytest.raises(ValueError, match="nothing to fine-tune"):
            trainer.build_view(np.empty((0, 3)))

    def test_config_validation(self):
        with pytest.raises(ValueError):
            FineTuneConfig(steps=0)
        with pytest.raises(ValueError):
            FineTuneConfig(fresh_boost=0)


class TestFineTune:
    def test_round_changes_the_candidate_not_the_base(
            self, trainer, online_model, warm_deltas):
        before = online_model.state_dict()
        result = trainer.fine_tune(online_model, warm_deltas,
                                   len(warm_deltas))
        assert_state_equal(online_model.state_dict(), before)
        changed = any(
            not np.array_equal(value, before[name])
            for name, value in result.model.state_dict().items())
        assert changed
        assert result.steps == trainer.config.steps
        assert len(result.loss_history) == trainer.config.steps

    def test_bit_identical_across_worker_counts(
            self, ml_split, online_model, warm_deltas, fast_tune_config):
        """The acceptance property: a round is a pure function of
        (checkpoint, log offset, seed) at ANY prefetch worker count."""
        states = []
        for workers in (0, 2):
            config = FineTuneConfig(
                steps=fast_tune_config.steps,
                batch_size=fast_tune_config.batch_size,
                context_users=fast_tune_config.context_users,
                context_items=fast_tune_config.context_items,
                prefetch_workers=workers)
            trainer = IncrementalTrainer(ml_split, config=config)
            result = trainer.fine_tune(online_model, warm_deltas,
                                       len(warm_deltas))
            states.append(result.model.state_dict())
        assert_state_equal(states[0], states[1])

    def test_rerun_from_same_offset_is_bit_identical(
            self, trainer, online_model, warm_deltas):
        first = trainer.fine_tune(online_model, warm_deltas, len(warm_deltas))
        second = trainer.fine_tune(online_model, warm_deltas, len(warm_deltas))
        assert first.round_seed == second.round_seed
        assert_state_equal(first.model.state_dict(),
                           second.model.state_dict())

    def test_different_offsets_draw_different_rounds(
            self, trainer, online_model, warm_deltas):
        a = trainer.fine_tune(online_model, warm_deltas, 10)
        b = trainer.fine_tune(online_model, warm_deltas, 20)
        assert a.round_seed != b.round_seed
