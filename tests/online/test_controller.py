"""OnlineController: round flow, promotion, rejection, rollback, pruning,
background loop, staleness health."""

import time

import numpy as np
import pytest

from repro.online import (
    GateDecision,
    OnlineConfig,
    OnlineController,
    ProbeResult,
)
from repro.serve import ModelRegistry


def probe(rmse):
    return ProbeResult(rmse=rmse, mae=rmse, num_tasks=1, num_ratings=1)


class FakeGate:
    """Scripted gate: pops one RMSE per evaluate() call, in call order.

    Lets controller tests pin accept/reject/rollback outcomes without
    paying for real probe evaluations.
    """

    def __init__(self, scores, rollback_margin=0.05):
        self.scores = list(scores)
        self.rollback_margin = rollback_margin
        self.live = []

    def evaluate(self, model, tasks=None):
        return probe(self.scores.pop(0))

    def decide(self, candidate, active):
        accepted = candidate.rmse <= active.rmse
        return GateDecision(accepted=accepted, candidate=candidate,
                            active=active, margin=0.0, reason="scripted")

    def live_tasks(self, deltas):
        return self.live

    def regressed(self, promoted, previous):
        return promoted.rmse > previous.rmse * (1.0 + self.rollback_margin)


def make_controller(ml_dataset, trainer, online_model, gate, **config):
    registry = ModelRegistry(ml_dataset)
    registry.add("base", online_model)
    defaults = dict(min_new_ratings=2, min_rollback_ratings=100)
    defaults.update(config)
    controller = OnlineController(registry, trainer, gate,
                                  config=OnlineConfig(**defaults))
    return registry, controller


class TestRoundFlow:
    def test_skips_below_threshold(self, ml_dataset, trainer, online_model,
                                   warm_deltas):
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([]),
            min_new_ratings=20)
        controller.ingest(warm_deltas[:3])
        summary = controller.run_round()
        assert summary["status"] == "skipped"
        assert registry.active_name == "base"
        snapshot = controller.metrics.snapshot()
        assert snapshot["online.skipped_total"]["value"] == 1

    def test_force_overrides_threshold(self, ml_dataset, trainer,
                                       online_model, warm_deltas):
        _, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([1.0, 0.9]),
            min_new_ratings=50)
        controller.ingest(warm_deltas[:3])
        assert controller.run_round(force=True)["status"] == "promoted"

    def test_promotion_swaps_the_registry(self, ml_dataset, trainer,
                                          online_model, warm_deltas):
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([1.0, 0.9]))
        controller.ingest(warm_deltas)
        summary = controller.run_round()
        assert summary["status"] == "promoted"
        assert summary["version"] == "online-r0"
        assert registry.active_name == "online-r0"
        assert registry.version("online-r0").metadata["log_offset"] == len(
            warm_deltas)
        stats = controller.stats()
        assert stats["trained_offset"] == len(warm_deltas)
        assert stats["pending"] == 0
        assert stats["rollback_target"] == "base"
        snapshot = controller.metrics.snapshot()
        assert snapshot["online.promotions_total"]["value"] == 1
        assert snapshot["online.swap_seconds"]["count"] == 1

    def test_rejection_keeps_the_active_model(self, ml_dataset, trainer,
                                              online_model, warm_deltas):
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([1.0, 1.5]))
        controller.ingest(warm_deltas)
        summary = controller.run_round()
        assert summary["status"] == "rejected"
        assert registry.active_name == "base"
        # The deltas are still accounted for: a rejected round is
        # deterministic, so retrying it would only spin.
        assert controller.stats()["trained_offset"] == len(warm_deltas)
        snapshot = controller.metrics.snapshot()
        assert snapshot["online.rejections_total"]["value"] == 1

    def test_promoted_round_is_reproducible(self, ml_dataset, trainer,
                                            online_model, warm_deltas):
        """The summary's (round_seed, log_offset) fully determine the
        candidate: re-running the round offline yields the same model."""
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([1.0, 0.9]))
        controller.ingest(warm_deltas)
        summary = controller.run_round()
        rerun = trainer.fine_tune(online_model,
                                  controller.log.slice(0, summary["log_offset"]),
                                  summary["log_offset"])
        assert rerun.round_seed == summary["round_seed"]
        promoted = registry.get(summary["version"])
        for name, value in promoted.state_dict().items():
            assert np.array_equal(value, rerun.model.state_dict()[name])


class TestRollback:
    def test_live_window_regression_reverts_the_swap(
            self, ml_dataset, trainer, online_model, warm_deltas):
        gate = FakeGate([1.0, 0.9])
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, gate,
            min_rollback_ratings=4)
        controller.ingest(warm_deltas)
        assert controller.run_round()["status"] == "promoted"

        # Post-promotion live window: the promoted model scores 2.0, the
        # predecessor 1.0 — a regression beyond the 5% margin.
        gate.scores = [2.0, 1.0]
        gate.live = [object()]
        controller.ingest(warm_deltas[:4])
        summary = controller.run_round()
        assert summary["status"] == "rolled_back"
        assert registry.active_name == "base"
        assert controller.stats()["rollback_target"] is None
        snapshot = controller.metrics.snapshot()
        assert snapshot["online.rollbacks_total"]["value"] == 1

    def test_healthy_promotion_is_not_reverted(self, ml_dataset, trainer,
                                               online_model, warm_deltas):
        gate = FakeGate([1.0, 0.9])
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, gate,
            min_rollback_ratings=4, min_new_ratings=50)
        controller.ingest(warm_deltas)
        controller.run_round(force=True)

        gate.scores = [1.0, 1.0]  # promoted no worse than predecessor
        gate.live = [object()]
        controller.ingest(warm_deltas[:4])
        summary = controller.run_round()
        assert summary["status"] == "skipped"
        assert registry.active_name == "online-r0"

    def test_rollback_disabled_never_reverts(self, ml_dataset, trainer,
                                             online_model, warm_deltas):
        gate = FakeGate([1.0, 0.9])
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, gate,
            min_rollback_ratings=1, min_new_ratings=50,
            rollback_enabled=False)
        controller.ingest(warm_deltas)
        controller.run_round(force=True)
        gate.live = [object()]
        controller.ingest(warm_deltas[:4])
        assert controller.run_round()["status"] == "skipped"
        assert registry.active_name == "online-r0"


class TestPruning:
    def test_old_versions_pruned_but_rollback_target_kept(
            self, ml_dataset, trainer, online_model, warm_deltas):
        registry, controller = make_controller(
            ml_dataset, trainer, online_model,
            FakeGate([1.0, 0.9, 0.85, 0.8]), retain_versions=1)
        for _ in range(3):
            controller.ingest(warm_deltas)
            assert controller.run_round()["status"] == "promoted"
        assert registry.active_name == "online-r2"
        assert "online-r0" not in registry
        # The immediate predecessor stays registered: it is the rollback
        # target, pruning must never strand a revert.
        assert "online-r1" in registry
        assert "base" in registry


class TestBackgroundLoop:
    def test_background_round_promotes(self, ml_dataset, trainer,
                                       online_model, warm_deltas):
        registry, controller = make_controller(
            ml_dataset, trainer, online_model, FakeGate([1.0, 0.9]),
            poll_interval_seconds=0.01)
        with controller:
            controller.start()
            controller.ingest(warm_deltas)
            deadline = time.monotonic() + 30.0
            while (registry.active_name == "base"
                   and time.monotonic() < deadline):
                time.sleep(0.02)
        assert registry.active_name == "online-r0"
        assert controller.health()["closed"]

    def test_close_is_idempotent_and_start_after_close_raises(
            self, ml_dataset, trainer, online_model):
        _, controller = make_controller(ml_dataset, trainer, online_model,
                                        FakeGate([]))
        controller.start()
        controller.close()
        controller.close()
        with pytest.raises(RuntimeError, match="closed"):
            controller.start()


class TestHealth:
    def test_staleness_breaches_after_budget(self, ml_dataset, trainer,
                                             online_model, warm_deltas):
        now = [0.0]
        registry = ModelRegistry(ml_dataset)
        registry.add("base", online_model)
        controller = OnlineController(
            registry, trainer, FakeGate([1.0, 0.9]),
            config=OnlineConfig(min_new_ratings=2,
                                min_rollback_ratings=100,
                                max_staleness_seconds=10.0),
            clock=lambda: now[0])
        assert controller.health()["state"] == "ok"
        now[0] = 20.0
        health = controller.health()
        assert health["state"] == "breach"
        assert health["staleness_seconds"] == 20.0
        # A promotion absorbs the stream and resets the staleness clock.
        controller.ingest(warm_deltas)
        assert controller.run_round()["status"] == "promoted"
        assert controller.health()["state"] == "ok"
        snapshot = controller.metrics.snapshot()
        assert snapshot["online.staleness_seconds"]["value"] == 0.0
