"""RatingLog: offsets, slicing, persistence, thread safety."""

import threading

import numpy as np
import pytest

from repro.online import RatingLog


def triples(*rows):
    return np.array(rows, dtype=np.float64)


class TestOffsets:
    def test_append_returns_contiguous_offsets(self):
        log = RatingLog()
        assert log.append(triples([0, 1, 3.0], [2, 3, 4.0])) == (0, 2)
        assert log.append(triples([4, 5, 2.0])) == (2, 3)
        assert len(log) == 3

    def test_empty_append_is_a_noop(self):
        log = RatingLog()
        log.append(triples([0, 1, 3.0]))
        assert log.append(np.empty((0, 3))) == (1, 1)
        assert len(log) == 1
        assert log.stats()["batches"] == 1

    def test_slice_clamps_out_of_range(self):
        log = RatingLog()
        log.append(triples([0, 1, 3.0], [2, 3, 4.0]))
        assert log.slice(-5, 99).shape == (2, 3)
        assert log.slice(2).shape == (0, 3)
        assert log.slice(5, 2).shape == (0, 3)

    def test_since_reads_to_tail(self):
        log = RatingLog()
        log.append(triples([0, 1, 3.0], [2, 3, 4.0], [4, 5, 5.0]))
        tail = log.since(1)
        assert np.array_equal(tail, triples([2, 3, 4.0], [4, 5, 5.0]))

    def test_slice_returns_copies(self):
        log = RatingLog()
        log.append(triples([0, 1, 3.0]))
        view = log.since(0)
        view[0, 2] = 99.0
        assert log.since(0)[0, 2] == 3.0


class TestPersistence:
    def test_roundtrip(self, tmp_path):
        path = tmp_path / "log.jsonl"
        log = RatingLog(path=path)
        log.append(triples([0, 1, 3.0], [2, 3, 4.0]))
        log.append(triples([4, 5, 2.0]))
        loaded = RatingLog.load(path)
        assert len(loaded) == 3
        assert np.array_equal(loaded.since(0), log.since(0))
        assert loaded.stats()["persisted"]

    def test_resume_keeps_teeing(self, tmp_path):
        path = tmp_path / "log.jsonl"
        RatingLog(path=path).append(triples([0, 1, 3.0]))
        resumed = RatingLog.load(path)
        resumed.append(triples([2, 3, 4.0]))
        fresh = RatingLog.load(path, resume=False)
        assert len(fresh) == 2
        assert not fresh.stats()["persisted"]

    def test_load_missing_file_is_empty(self, tmp_path):
        log = RatingLog.load(tmp_path / "absent.jsonl")
        assert len(log) == 0


class TestThreadSafety:
    def test_concurrent_appends_interleave_without_loss(self):
        log = RatingLog()
        per_thread = 50

        def writer(tag):
            for index in range(per_thread):
                log.append(triples([tag, index, 3.0]))

        threads = [threading.Thread(target=writer, args=(tag,))
                   for tag in range(4)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()
        assert len(log) == 4 * per_thread
        everything = log.since(0)
        for tag in range(4):
            assert (everything[:, 0] == tag).sum() == per_thread
