"""Online-loop fixtures: a tiny model, a frozen probe, fast configs."""

import numpy as np
import pytest

from repro.core import HIRE, HIREConfig
from repro.eval.tasks import build_eval_tasks
from repro.online import FineTuneConfig, GateConfig, IncrementalTrainer, PromotionGate


@pytest.fixture(scope="session")
def online_model(ml_dataset):
    """Untrained-but-deterministic HIRE; the loop tests care about
    reproducibility and control flow, not accuracy."""
    model = HIRE(ml_dataset, HIREConfig(num_blocks=1, num_heads=2, attr_dim=8))
    model.eval()
    return model


@pytest.fixture(scope="session")
def probe_tasks(ml_split):
    return build_eval_tasks(ml_split, "user", min_query=2, seed=1, max_tasks=3)


@pytest.fixture
def fast_tune_config():
    return FineTuneConfig(steps=2, batch_size=2, context_users=12,
                          context_items=12)


@pytest.fixture
def trainer(ml_split, fast_tune_config):
    return IncrementalTrainer(ml_split, config=fast_tune_config)


@pytest.fixture
def gate(ml_split, probe_tasks):
    return PromotionGate(ml_split, probe_tasks,
                         GateConfig(context_users=12, context_items=12))


@pytest.fixture
def warm_deltas(ml_split):
    """Re-ratings of warm training pairs — the stream the loop consumes."""
    deltas = ml_split.train_ratings()[:10].copy()
    deltas[:, 2] = np.clip(deltas[:, 2] + 1.0, 1.0, 5.0)
    return deltas
