"""Fig. 9 case study: inspect the heterogeneous interactions HIRE learned.

Trains a model, captures the MBU / MBI / MBA attention weights of the last
HIM block for one prediction context, and renders them as ASCII heatmaps —
the qualitative evidence the paper uses to argue the learned interactions
are interpretable.

Run:  python examples/case_study_attention.py
"""

import numpy as np

from repro.experiments import render_attention_matrix, run_case_study


def main():
    print("training HIRE and capturing attention (this takes ~15s)...\n")
    out = run_case_study(scale="fast", seed=0, context_size=10)

    print("=== MBU: attention between users (for the seed item's column) ===")
    print(render_attention_matrix(out["attention"]["user"],
                                  [f"user {u}" for u in out["users"]]))
    strongest = np.unravel_index(
        np.argmax(out["attention"]["user"] - np.eye(len(out["users"]))),
        out["attention"]["user"].shape)
    print(f"-> user {out['users'][strongest[0]]} attends most to "
          f"user {out['users'][strongest[1]]}\n")

    print("=== MBI: attention between items (for the seed user's row) ===")
    print(render_attention_matrix(out["attention"]["item"],
                                  [f"item {i}" for i in out["items"]]))
    print()

    print("=== MBA: attention between attributes (seed user-item cell) ===")
    print(render_attention_matrix(out["attention"]["attr"],
                                  list(out["attribute_names"])))
    print()

    print("=== predictions on masked cells ===")
    for row, col in out["query_cells"][:10]:
        predicted = out["predictions"][row, col]
        actual = out["ground_truth"][row, col]
        print(f"user {out['users'][row]:>4d} x item {out['items'][col]:>4d}: "
              f"predicted {predicted:.2f}, actual {actual:.0f}")


if __name__ == "__main__":
    main()
