"""Social cold-start on a Douban-like workload.

The paper's Douban experiments (Table V) are the setting where explicit
side information matters most: users and items have *no attributes* (their
IDs are the only feature), so attribute-based CF collapses for cold
entities, GraphRec leans on the friendship graph, and HIRE leans on the
in-context ratings.  This example reproduces that comparison at laptop
scale and prints the metric floors for calibration.

Run:  python examples/social_cold_start_douban.py
"""

import numpy as np

from repro.baselines import GlobalMeanScorer, ItemMeanScorer, RandomScorer
from repro.data import douban_like, make_cold_start_split
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import create_model


def main():
    dataset = douban_like(num_users=150, num_items=100, seed=0, ratings_per_user=30.0)
    print(f"dataset: {dataset.profile()}")
    print(f"friendship edges: {len(dataset.social_edges)}\n")

    split = make_cold_start_split(dataset, 0.3, 0.3, seed=0)
    tasks = build_eval_tasks(split, "user", min_query=8, seed=0, max_tasks=10)
    print(f"user cold-start: {len(tasks)} cold users\n")

    print(f"{'model':<12s} {'P@5':>7s} {'NDCG@5':>7s} {'MAP@5':>7s}")
    print("-" * 38)
    for floor in (RandomScorer(seed=0), GlobalMeanScorer(), ItemMeanScorer()):
        result = evaluate_model(floor, split, "user", ks=(5,), tasks=tasks)
        m = result.metrics[5]
        print(f"{floor.name + ' *':<12s} {m['precision']:7.3f} {m['ndcg']:7.3f} "
              f"{m['map']:7.3f}")
    for name in ("DeepFM", "GraphRec", "MeLU", "TaNP", "HIRE"):
        model = create_model(name, dataset, seed=0, preset="fast")
        result = evaluate_model(model, split, "user", ks=(5,), tasks=tasks)
        m = result.metrics[5]
        print(f"{name:<12s} {m['precision']:7.3f} {m['ndcg']:7.3f} {m['map']:7.3f}"
              f"   (fit {result.fit_seconds:.0f}s)")
    print("\n* reference floors, not paper baselines")


if __name__ == "__main__":
    main()
