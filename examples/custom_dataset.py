"""Using HIRE on your own data: build a RatingDataset from raw records.

This example shows the adoption path for a downstream user: wrap existing
(user, item, rating) records and categorical attributes in a
:class:`~repro.data.RatingDataset`, then the whole pipeline — splits,
training, cold-start prediction — works unchanged.  Here the "raw records"
are a small in-memory books catalogue.

Run:  python examples/custom_dataset.py
"""

import numpy as np

from repro.data import RatingDataset, make_cold_start_split
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import HIREModel
from repro.core import HIREConfig, TrainerConfig


def build_bookshop_dataset(seed: int = 0) -> RatingDataset:
    """A small synthetic book shop: 60 readers, 50 books, 1-5 stars.

    Readers have an age bracket and a favourite genre; books have a genre
    and a length class.  Readers rate in-genre books higher.
    """
    rng = np.random.default_rng(seed)
    num_users, num_items = 60, 50
    num_genres = 6

    user_age = rng.integers(0, 5, size=num_users)
    user_genre = rng.integers(0, num_genres, size=num_users)
    item_genre = rng.integers(0, num_genres, size=num_items)
    item_length = rng.integers(0, 3, size=num_items)

    triples = []
    for user in range(num_users):
        for item in rng.choice(num_items, size=12, replace=False):
            base = 3.0 + 1.5 * (user_genre[user] == item_genre[item])
            rating = np.clip(round(base + rng.normal(0, 0.7)), 1, 5)
            triples.append((user, int(item), float(rating)))

    return RatingDataset(
        name="bookshop",
        num_users=num_users,
        num_items=num_items,
        user_attributes=np.stack([user_age, user_genre], axis=1),
        item_attributes=np.stack([item_genre, item_length], axis=1),
        user_attribute_cards=(5, num_genres),
        item_attribute_cards=(num_genres, 3),
        user_attribute_names=("age_bracket", "favourite_genre"),
        item_attribute_names=("genre", "length_class"),
        ratings=np.asarray(triples),
        rating_range=(1.0, 5.0),
    )


def main():
    dataset = build_bookshop_dataset()
    print(f"custom dataset: {dataset.profile()}\n")

    split = make_cold_start_split(dataset, 0.25, 0.25, seed=0)
    tasks = build_eval_tasks(split, "user", min_query=4, seed=0)
    print(f"{len(tasks)} cold readers to evaluate\n")

    model = HIREModel(
        dataset,
        config=HIREConfig(num_blocks=2, num_heads=4, attr_dim=8, seed=0),
        trainer_config=TrainerConfig(steps=60, batch_size=2, context_users=12,
                                     context_items=12, seed=0),
    )
    result = evaluate_model(model, split, "user", ks=(5,), tasks=tasks)
    print(f"HIRE on the bookshop (user cold-start, {result.num_tasks} tasks):")
    print(f"  Precision@5 {result.metrics[5]['precision']:.3f}")
    print(f"  NDCG@5      {result.metrics[5]['ndcg']:.3f}")
    print(f"  MAP@5       {result.metrics[5]['map']:.3f}")
    print(f"  fit {result.fit_seconds:.1f}s, "
          f"predict {result.predict_seconds:.2f}s")


if __name__ == "__main__":
    main()
