"""Compare HIRE against representative baselines in all three cold-start
scenarios — a miniature of the paper's Table III.

Run:  python examples/compare_cold_start_models.py
"""

from repro.data import make_cold_start_split, movielens_like
from repro.eval import build_eval_tasks, evaluate_model
from repro.experiments import create_model, render_overall_table

MODELS = ("NeuMF", "Wide&Deep", "MeLU", "TaNP", "HIRE")
SCENARIOS = ("user", "item", "both")


def main():
    dataset = movielens_like(num_users=120, num_items=90, seed=0)
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)

    rows = []
    for scenario in SCENARIOS:
        tasks = build_eval_tasks(split, scenario, min_query=5, seed=0, max_tasks=8)
        if not tasks:
            print(f"(skipping scenario {scenario}: no tasks at this scale)")
            continue
        for name in MODELS:
            model = create_model(name, dataset, seed=0, preset="fast")
            result = evaluate_model(model, split, scenario, ks=(5,), tasks=tasks)
            rows.append({
                "scenario": scenario, "model": name, "k": 5,
                **result.metrics[5],
            })
            print(f"{scenario:>5s} | {name:<10s} "
                  f"P@5={result.metrics[5]['precision']:.3f} "
                  f"NDCG@5={result.metrics[5]['ndcg']:.3f} "
                  f"MAP@5={result.metrics[5]['map']:.3f} "
                  f"(fit {result.fit_seconds:.1f}s)")

    print("\n" + render_overall_table(rows, ks=(5,)))


if __name__ == "__main__":
    main()
