"""Quickstart: train HIRE on a MovieLens-like workload and predict ratings
for a cold-start user.

Run:  python examples/quickstart.py
"""

import numpy as np

from repro.core import HIRE, HIREConfig, HIREPredictor, HIRETrainer, TrainerConfig
from repro.data import make_cold_start_split, movielens_like
from repro.eval import build_eval_tasks, rank_metrics


def main():
    # 1. A dataset with the MovieLens-1M attribute schema (Table II),
    #    generated from a seeded latent-factor model.
    dataset = movielens_like(num_users=150, num_items=100, seed=0)
    print(f"dataset: {dataset.profile()}\n")

    # 2. Cold-start split: 20% of users and items are held out entirely.
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    print(f"split: {split.summary()}\n")

    # 3. Train HIRE (Algorithm 1): LAMB + Lookahead on masked-rating MSE
    #    over neighbourhood-sampled prediction contexts.
    model = HIRE(dataset, HIREConfig(num_blocks=2, num_heads=4, attr_dim=8, seed=0))
    trainer = HIRETrainer(model, split, config=TrainerConfig(
        steps=80, batch_size=2, context_users=16, context_items=16, seed=0))
    print(f"training HIRE ({model.num_parameters():,} parameters)...")
    history = trainer.fit(log_every=20)
    print(f"loss: {history[0]:.3f} -> {np.mean(history[-5:]):.3f}\n")

    # 4. Predict for cold users: each task reveals 10% of the cold user's
    #    ratings as support and ranks the hidden 90%.
    tasks = build_eval_tasks(split, "user", min_query=5, seed=0)
    predictor = HIREPredictor(model, split, tasks, context_users=16,
                              context_items=16, seed=0)

    task = tasks[0]
    scores = predictor.predict_task(task)
    metrics = rank_metrics(scores, task.query_ratings, 5, dataset.rating_range)
    print(f"cold user {task.user}: {len(task.support)} support ratings, "
          f"{len(task.query)} query items")
    order = np.argsort(-scores)[:5]
    print("top-5 recommendations (predicted -> actual):")
    for idx in order:
        print(f"  item {int(task.query_items[idx]):>4d}: "
              f"{scores[idx]:.2f} -> {task.query_ratings[idx]:.0f}")
    print(f"\nPrecision@5 {metrics['precision']:.3f}  "
          f"NDCG@5 {metrics['ndcg']:.3f}  MAP@5 {metrics['map']:.3f}")


if __name__ == "__main__":
    main()
