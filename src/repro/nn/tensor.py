"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the ``repro.nn`` substrate: a minimal but
complete autograd engine in the spirit of PyTorch's eager tensors.  Every
operation builds a node in a dynamic computation graph; calling
:meth:`Tensor.backward` runs a topological sweep that accumulates gradients
into ``.grad`` of every tensor created with ``requires_grad=True``.

Design choices:

* ``float64`` by default — the library targets correctness and testability
  (gradients are validated against finite differences), not GPU throughput.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` folds gradients
  back onto the original shapes.
* The graph holds strong references to parents only while a tensor is alive,
  so ordinary Python GC reclaims whole graphs between training steps.
"""

from __future__ import annotations

import numpy as np

__all__ = ["Tensor", "no_grad", "is_grad_enabled"]

_GRAD_ENABLED = True


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad)."""

    def __enter__(self):
        global _GRAD_ENABLED
        self._prev = _GRAD_ENABLED
        _GRAD_ENABLED = False
        return self

    def __exit__(self, *exc):
        global _GRAD_ENABLED
        _GRAD_ENABLED = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd graph."""
    return _GRAD_ENABLED


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=np.float64)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        self.data = np.asarray(data, dtype=np.float64)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_op(cls, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = cls(data)
        if _GRAD_ENABLED and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self) -> None:
        self.grad = None

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=np.float64)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        self.grad = grad if self.grad is None else self.grad + grad
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            for parent, pgrad in node._backward(node.grad):
                if pgrad is None:
                    continue
                pgrad = _unbroadcast(np.asarray(pgrad, dtype=np.float64), parent.data.shape)
                parent.grad = pgrad if parent.grad is None else parent.grad + pgrad

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other) -> "Tensor":
        return other if isinstance(other, Tensor) else Tensor(other)

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data + other.data,
            (self, other),
            lambda g: ((self, g), (other, g)),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data - other.data,
            (self, other),
            lambda g: ((self, g), (other, -g)),
        )

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data * other.data,
            (self, other),
            lambda g: ((self, g * other.data), (other, g * self.data)),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data / other.data,
            (self, other),
            lambda g: (
                (self, g / other.data),
                (other, -g * self.data / (other.data * other.data)),
            ),
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), lambda g: ((self, -g),))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent
        return Tensor._from_op(
            out_data,
            (self,),
            lambda g: ((self, g * exponent * self.data ** (exponent - 1)),),
        )

    # Comparison operators return plain boolean arrays (no gradients).
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return ((self, g * b), (other, g * a))
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (b * g[..., None, :]).sum(axis=-1)
                gb = a[:, None] * g[..., None, :]
                return ((self, ga), (other, gb))
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = g[..., :, None] * b
                gb = (np.swapaxes(a, -1, -2) @ g[..., :, None])[..., 0]
                return ((self, ga), (other, gb))
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return ((self, ga), (other, gb))

        return Tensor._from_op(out_data, (self, other), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes.  With no arguments, reverse all axes (like numpy)."""
        if not axes:
            axes = tuple(range(self.data.ndim))[::-1]
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        return Tensor._from_op(
            self.data.transpose(axes),
            (self,),
            lambda g: ((self, g.transpose(inverse)),),
        )

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        return Tensor._from_op(
            np.swapaxes(self.data, axis1, axis2),
            (self,),
            lambda g: ((self, np.swapaxes(g, axis1, axis2)),),
        )

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return Tensor._from_op(
            self.data.reshape(shape),
            (self,),
            lambda g: ((self, g.reshape(original)),),
        )

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g):
            full = np.zeros_like(self.data)
            np.add.at(full, key, g)
            return ((self, full),)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                return ((self, np.broadcast_to(g, self.data.shape).copy()),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g_expanded = np.expand_dims(g, axes)
            return ((self, np.broadcast_to(g_expanded, self.data.shape).copy()),)

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                mask = (self.data == out_data).astype(np.float64)
                mask /= mask.sum()
                return ((self, mask * g),)
            g_expanded = g
            out_expanded = out_data
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g_expanded = np.expand_dims(g, axes)
                out_expanded = np.expand_dims(out_data, axes)
            mask = (self.data == out_expanded).astype(np.float64)
            mask /= mask.sum(axis=axis, keepdims=True)
            return ((self, mask * g_expanded),)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._from_op(out_data, (self,), lambda g: ((self, g * out_data),))

    def log(self) -> "Tensor":
        return Tensor._from_op(
            np.log(self.data), (self,), lambda g: ((self, g / self.data),)
        )

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * 0.5 / out_data),)
        )

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * (1.0 - out_data * out_data)),)
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * out_data * (1.0 - out_data)),)
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op(
            self.data * mask, (self,), lambda g: ((self, g * mask),)
        )

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._from_op(
            np.abs(self.data), (self,), lambda g: ((self, g * sign),)
        )

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._from_op(
            np.clip(self.data, low, high), (self,), lambda g: ((self, g * mask),)
        )
