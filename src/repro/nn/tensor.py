"""Reverse-mode automatic differentiation on top of numpy.

This module is the foundation of the ``repro.nn`` substrate: a minimal but
complete autograd engine in the spirit of PyTorch's eager tensors.  Every
operation builds a node in a dynamic computation graph; calling
:meth:`Tensor.backward` runs a topological sweep that accumulates gradients
into ``.grad`` of every tensor created with ``requires_grad=True``.

Design choices:

* ``float64`` by default — gradcheck territory; a process-wide dtype policy
  (:func:`set_default_dtype` / :class:`dtype_policy`) switches new tensors,
  initialisers, and optimizer state to ``float32`` for production throughput.
* Broadcasting follows numpy semantics; :func:`_unbroadcast` folds gradients
  back onto the original shapes.
* The graph holds strong references to parents only while a tensor is alive,
  so ordinary Python GC reclaims whole graphs between training steps.
* The backward sweep accumulates gradients in place: the first accumulation
  into a tensor allocates its buffer, every later one is an in-place
  ``np.add`` — no per-edge temporaries.  Ops may also return a
  :class:`SparseRowGrad` (rows + per-row values) instead of a dense array;
  embedding lookups use this to scatter only the touched rows.
"""

from __future__ import annotations

import threading

import numpy as np

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "SparseRowGrad",
    "get_default_dtype",
    "set_default_dtype",
    "dtype_policy",
]


class _GradState(threading.local):
    """Per-thread autograd switch (each new thread starts grad-enabled)."""

    def __init__(self):
        self.enabled = True


_GRAD_STATE = _GradState()

_FLOAT_DTYPES = (np.dtype(np.float32), np.dtype(np.float64))
_DEFAULT_DTYPE = np.dtype(np.float64)


def get_default_dtype() -> np.dtype:
    """The dtype newly created tensors, initialisers, and masks use."""
    return _DEFAULT_DTYPE


def set_default_dtype(dtype) -> None:
    """Set the process-wide compute dtype (float32 or float64).

    Existing tensors keep their dtype; parameters inherit the policy at
    module construction time and all downstream compute (activations,
    gradients, optimizer state, dropout masks) follows the parameter dtype.
    """
    global _DEFAULT_DTYPE
    dtype = np.dtype(dtype)
    if dtype not in _FLOAT_DTYPES:
        raise ValueError(f"default dtype must be float32 or float64, got {dtype}")
    _DEFAULT_DTYPE = dtype


class dtype_policy:
    """Context manager scoping :func:`set_default_dtype` to a block."""

    def __init__(self, dtype):
        self._dtype = dtype

    def __enter__(self):
        self._prev = _DEFAULT_DTYPE
        set_default_dtype(self._dtype)
        return self

    def __exit__(self, *exc):
        set_default_dtype(self._prev)
        return False


class SparseRowGrad:
    """Row-sparse gradient for 2-D tables: ``grad[rows] += values``.

    ``rows`` must be unique (so fancy-index ``+=`` accumulates correctly);
    the backward sweep densifies it into ``.grad`` only at the consuming
    tensor, never materializing intermediate full-size zero tables.
    """

    __slots__ = ("rows", "values")

    def __init__(self, rows: np.ndarray, values: np.ndarray):
        self.rows = rows
        self.values = values


class no_grad:
    """Context manager that disables graph construction (like torch.no_grad).

    The flag is thread-local: a serving worker running inference under
    ``no_grad`` never turns autograd off for a concurrently training thread
    (and vice versa), and interleaved enter/exit across threads cannot
    corrupt each other's state.
    """

    def __enter__(self):
        self._prev = _GRAD_STATE.enabled
        _GRAD_STATE.enabled = False
        return self

    def __exit__(self, *exc):
        _GRAD_STATE.enabled = self._prev
        return False


def is_grad_enabled() -> bool:
    """Return whether new operations will be recorded on the autograd graph."""
    return _GRAD_STATE.enabled


def _as_array(value) -> np.ndarray:
    if isinstance(value, Tensor):
        raise TypeError("expected raw data, got Tensor")
    return np.asarray(value, dtype=_DEFAULT_DTYPE)


_BASIC_INDEX_TYPES = (int, np.integer, slice, type(None), type(Ellipsis))


def _is_basic_index(key) -> bool:
    """True when ``key`` triggers numpy basic (non-fancy) indexing only."""
    if isinstance(key, tuple):
        return all(isinstance(k, _BASIC_INDEX_TYPES) for k in key)
    return isinstance(key, _BASIC_INDEX_TYPES)


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Reduce ``grad`` back to ``shape`` by summing broadcast dimensions."""
    if grad.shape == shape:
        return grad
    # Sum out prepended axes.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum axes that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy-backed tensor participating in reverse-mode autodiff."""

    __slots__ = ("data", "grad", "requires_grad", "_backward", "_parents",
                 "_grad_owned")

    def __init__(self, data, requires_grad: bool = False):
        if isinstance(data, Tensor):
            data = data.data
        if isinstance(data, np.ndarray) and data.dtype in _FLOAT_DTYPES:
            # Preserve an explicit float32/float64 array; everything else
            # (lists, scalars, int/bool arrays) follows the dtype policy.
            self.data = data
        else:
            self.data = np.asarray(data, dtype=_DEFAULT_DTYPE)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_STATE.enabled
        self._backward = None
        self._parents: tuple[Tensor, ...] = ()
        # True iff .grad is a buffer this tensor exclusively owns (allocated
        # by zero_grad(set_to_zero=True) or freshly built by a sweep), so the
        # backward pass may np.add into it in place across sweeps.
        self._grad_owned = False

    # ------------------------------------------------------------------ #
    # Construction helpers
    # ------------------------------------------------------------------ #
    @classmethod
    def _from_op(cls, data: np.ndarray, parents: tuple["Tensor", ...], backward) -> "Tensor":
        out = cls(data)
        if _GRAD_STATE.enabled and any(p.requires_grad for p in parents):
            out.requires_grad = True
            out._parents = tuple(p for p in parents if p.requires_grad)
            out._backward = backward
        return out

    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __len__(self) -> int:
        return len(self.data)

    def __repr__(self) -> str:
        flag = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor({np.array2string(self.data, precision=4, threshold=8)}{flag})"

    def numpy(self) -> np.ndarray:
        """Return the underlying array (a view, not a copy)."""
        return self.data

    def item(self) -> float:
        if self.data.size != 1:
            raise ValueError(f"item() requires a single-element tensor, got shape {self.shape}")
        return float(self.data.item())

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut off from the graph."""
        return Tensor(self.data)

    def zero_grad(self, set_to_zero: bool = False) -> None:
        """Clear the gradient.

        With ``set_to_zero`` the existing ``.grad`` buffer is zeroed in place
        (allocated once if absent) instead of dropped to ``None``, so dense
        parameter gradients stop being reallocated every step; the backward
        sweep then accumulates into the owned buffer directly.
        """
        if set_to_zero:
            if self.grad is None or not self._grad_owned:
                # A held grad may alias an array shared with another tensor
                # (a first accumulation hands the upstream array over) — a
                # fresh buffer breaks the aliasing before in-place reuse.
                self.grad = np.zeros(self.data.shape, dtype=self.data.dtype)
            else:
                self.grad.fill(0.0)
            self._grad_owned = True
        else:
            self.grad = None
            self._grad_owned = False

    # ------------------------------------------------------------------ #
    # Backward pass
    # ------------------------------------------------------------------ #
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Backpropagate from this tensor through the recorded graph."""
        if not self.requires_grad:
            raise RuntimeError("called backward() on a tensor that does not require grad")
        if grad is None:
            if self.data.size != 1:
                raise RuntimeError("grad must be supplied for non-scalar backward()")
            grad = np.ones_like(self.data)
        else:
            grad = np.asarray(grad, dtype=self.data.dtype)
            if grad.shape != self.data.shape:
                raise ValueError(f"grad shape {grad.shape} != tensor shape {self.data.shape}")

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, processed = stack.pop()
            if processed:
                topo.append(node)
                continue
            if id(node) in visited:
                continue
            visited.add(id(node))
            stack.append((node, True))
            for parent in node._parents:
                if id(parent) not in visited:
                    stack.append((parent, False))

        # Tensors whose .grad buffer was allocated by this sweep: those are
        # safe to np.add into in place.  A first accumulation may alias an
        # upstream array (or a read-only broadcast view), so it is never
        # mutated — the second accumulation allocates the owned buffer once
        # and every further one reuses it.
        owned: set[int] = set()

        def accumulate(target: "Tensor", pgrad) -> None:
            if isinstance(pgrad, SparseRowGrad):
                if target.grad is None:
                    target.grad = np.zeros(target.data.shape, dtype=target.data.dtype)
                    target._grad_owned = True
                    owned.add(id(target))
                elif id(target) not in owned and not target._grad_owned:
                    target.grad = target.grad.copy()
                    target._grad_owned = True
                    owned.add(id(target))
                target.grad[pgrad.rows] += pgrad.values
                return
            pgrad = _unbroadcast(
                np.asarray(pgrad, dtype=target.data.dtype), target.data.shape
            )
            if target.grad is None:
                # Takes over pgrad, which may alias an upstream array — not
                # safe for in-place reuse until reallocated.
                target.grad = pgrad
                target._grad_owned = False
            elif id(target) in owned or target._grad_owned:
                np.add(target.grad, pgrad, out=target.grad)
            else:
                target.grad = target.grad + pgrad
                target._grad_owned = True
                owned.add(id(target))

        accumulate(self, grad)
        for node in reversed(topo):
            if node._backward is None or node.grad is None:
                continue
            for parent, pgrad in node._backward(node.grad):
                if pgrad is None:
                    continue
                accumulate(parent, pgrad)

    # ------------------------------------------------------------------ #
    # Elementwise arithmetic
    # ------------------------------------------------------------------ #
    def _coerce(self, other) -> "Tensor":
        if isinstance(other, Tensor):
            return other
        # Constants follow this tensor's dtype so float32 graphs are not
        # silently promoted to float64 by python scalars.
        return Tensor(np.asarray(other, dtype=self.data.dtype))

    def __add__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data + other.data,
            (self, other),
            lambda g: ((self, g), (other, g)),
        )

    __radd__ = __add__

    def __sub__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data - other.data,
            (self, other),
            lambda g: ((self, g), (other, -g)),
        )

    def __rsub__(self, other) -> "Tensor":
        return self._coerce(other) - self

    def __mul__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data * other.data,
            (self, other),
            lambda g: ((self, g * other.data), (other, g * self.data)),
        )

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._coerce(other)
        return Tensor._from_op(
            self.data / other.data,
            (self, other),
            lambda g: (
                (self, g / other.data),
                (other, -g * self.data / (other.data * other.data)),
            ),
        )

    def __rtruediv__(self, other) -> "Tensor":
        return self._coerce(other) / self

    def __neg__(self) -> "Tensor":
        return Tensor._from_op(-self.data, (self,), lambda g: ((self, -g),))

    def __pow__(self, exponent: float) -> "Tensor":
        if isinstance(exponent, Tensor):
            raise TypeError("tensor exponents are not supported; use exp/log")
        out_data = self.data**exponent
        return Tensor._from_op(
            out_data,
            (self,),
            lambda g: ((self, g * exponent * self.data ** (exponent - 1)),),
        )

    # Comparison operators return plain boolean arrays (no gradients).
    def __gt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data > other

    def __lt__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data < other

    def __ge__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data >= other

    def __le__(self, other):
        other = other.data if isinstance(other, Tensor) else other
        return self.data <= other

    # ------------------------------------------------------------------ #
    # Linear algebra
    # ------------------------------------------------------------------ #
    def __matmul__(self, other) -> "Tensor":
        other = self._coerce(other)
        out_data = self.data @ other.data

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:
                return ((self, g * b), (other, g * a))
            if a.ndim == 1:
                # (k,) @ (..., k, n) -> (..., n)
                ga = (b * g[..., None, :]).sum(axis=-1)
                gb = a[:, None] * g[..., None, :]
                return ((self, ga), (other, gb))
            if b.ndim == 1:
                # (..., m, k) @ (k,) -> (..., m)
                ga = g[..., :, None] * b
                gb = (np.swapaxes(a, -1, -2) @ g[..., :, None])[..., 0]
                return ((self, ga), (other, gb))
            ga = g @ np.swapaxes(b, -1, -2)
            gb = np.swapaxes(a, -1, -2) @ g
            return ((self, ga), (other, gb))

        return Tensor._from_op(out_data, (self, other), backward)

    def transpose(self, *axes) -> "Tensor":
        """Permute axes.  With no arguments, reverse all axes (like numpy)."""
        if not axes:
            axes = tuple(range(self.data.ndim))[::-1]
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        return Tensor._from_op(
            self.data.transpose(axes),
            (self,),
            lambda g: ((self, g.transpose(inverse)),),
        )

    def swapaxes(self, axis1: int, axis2: int) -> "Tensor":
        return Tensor._from_op(
            np.swapaxes(self.data, axis1, axis2),
            (self,),
            lambda g: ((self, np.swapaxes(g, axis1, axis2)),),
        )

    # ------------------------------------------------------------------ #
    # Shape manipulation
    # ------------------------------------------------------------------ #
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        original = self.data.shape
        return Tensor._from_op(
            self.data.reshape(shape),
            (self,),
            lambda g: ((self, g.reshape(original)),),
        )

    def broadcast_to(self, *shape) -> "Tensor":
        """Broadcast to ``shape`` without copying (backward sums the view)."""
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        return Tensor._from_op(
            np.broadcast_to(self.data, shape),
            (self,),
            lambda g: ((self, g),),  # _unbroadcast folds g back to self.shape
        )

    def __getitem__(self, key) -> "Tensor":
        out_data = self.data[key]

        def backward(g):
            full = np.zeros_like(self.data)
            if _is_basic_index(key):
                # Basic indexing selects each source cell at most once, so a
                # direct slice assignment replaces the slow np.add.at ufunc
                # scatter (hit by w_qkv column slicing on the reference
                # attention path every step).
                full[key] = g
            else:
                np.add.at(full, key, g)
            return ((self, full),)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Reductions
    # ------------------------------------------------------------------ #
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                return ((self, np.broadcast_to(g, self.data.shape).copy()),)
            g_expanded = g
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g_expanded = np.expand_dims(g, axes)
            return ((self, np.broadcast_to(g_expanded, self.data.shape).copy()),)

        return Tensor._from_op(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        if axis is None:
            count = self.data.size
        else:
            axes = axis if isinstance(axis, tuple) else (axis,)
            count = int(np.prod([self.data.shape[a % self.data.ndim] for a in axes]))
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / count)

    def var(self, axis=None, keepdims: bool = False) -> "Tensor":
        centered = self - self.mean(axis=axis, keepdims=True)
        return (centered * centered).mean(axis=axis, keepdims=keepdims)

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            if axis is None:
                mask = (self.data == out_data).astype(self.data.dtype)
                mask /= mask.sum()
                return ((self, mask * g),)
            g_expanded = g
            out_expanded = out_data
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                axes = tuple(a % self.data.ndim for a in axes)
                g_expanded = np.expand_dims(g, axes)
                out_expanded = np.expand_dims(out_data, axes)
            mask = (self.data == out_expanded).astype(self.data.dtype)
            mask /= mask.sum(axis=axis, keepdims=True)
            return ((self, mask * g_expanded),)

        return Tensor._from_op(out_data, (self,), backward)

    # ------------------------------------------------------------------ #
    # Elementwise nonlinearities
    # ------------------------------------------------------------------ #
    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor._from_op(out_data, (self,), lambda g: ((self, g * out_data),))

    def log(self) -> "Tensor":
        return Tensor._from_op(
            np.log(self.data), (self,), lambda g: ((self, g / self.data),)
        )

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * 0.5 / out_data),)
        )

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * (1.0 - out_data * out_data)),)
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-np.clip(self.data, -60.0, 60.0)))
        return Tensor._from_op(
            out_data, (self,), lambda g: ((self, g * out_data * (1.0 - out_data)),)
        )

    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor._from_op(
            self.data * mask, (self,), lambda g: ((self, g * mask),)
        )

    def abs(self) -> "Tensor":
        sign = np.sign(self.data)
        return Tensor._from_op(
            np.abs(self.data), (self,), lambda g: ((self, g * sign),)
        )

    def clip(self, low: float, high: float) -> "Tensor":
        mask = (self.data >= low) & (self.data <= high)
        return Tensor._from_op(
            np.clip(self.data, low, high), (self,), lambda g: ((self, g * mask),)
        )
