"""Checkpointing: save/load module state dicts as ``.npz`` archives.

Parameter names become archive keys (dots are legal in npz keys), so a
checkpoint round-trips exactly through :meth:`Module.state_dict` /
:meth:`Module.load_state_dict`.  A ``__meta__/...`` namespace carries
arbitrary scalar metadata (model config, training step, seeds).
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .module import Module
from .tensor import get_default_dtype

__all__ = ["save_checkpoint", "load_checkpoint", "save_module", "load_module"]

_META_KEY = "__meta__"


def _with_npz_suffix(path: str | Path) -> Path:
    """``np.savez`` silently appends ``.npz`` to paths lacking it; normalise
    up front so save and load agree on the on-disk name."""
    path = Path(path)
    if path.suffix != ".npz":
        path = path.with_name(path.name + ".npz")
    return path


def save_checkpoint(path: str | Path, state: dict[str, np.ndarray],
                    metadata: dict | None = None) -> Path:
    """Write a state dict (plus JSON-serialisable metadata) to ``path``.

    Returns the real path written — ``<path>.npz`` when the suffix was
    missing — so callers never have to second-guess ``np.savez``.
    """
    path = _with_npz_suffix(path)
    arrays = dict(state)
    if _META_KEY in arrays:
        raise ValueError(f"{_META_KEY!r} is reserved")
    if metadata is not None:
        arrays[_META_KEY] = np.frombuffer(
            json.dumps(metadata, sort_keys=True).encode(), dtype=np.uint8
        )
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez(path, **arrays)
    return path


def load_checkpoint(path: str | Path, dtype=None) -> tuple[dict[str, np.ndarray], dict]:
    """Read ``(state, metadata)`` from a checkpoint written by
    :func:`save_checkpoint`.

    ``dtype`` casts floating-point arrays on load: pass ``"default"`` to
    follow the active dtype policy (:func:`repro.nn.set_default_dtype`), an
    explicit dtype, or ``None`` (default) to keep the stored dtypes.
    :meth:`Module.load_state_dict` casts to each parameter's dtype anyway,
    so the cast here matters when the state dict is consumed directly.
    """
    if dtype == "default":
        dtype = get_default_dtype()
    path = Path(path)
    if not path.exists():
        path = _with_npz_suffix(path)
    with np.load(path) as archive:
        state = {}
        for key in archive.files:
            if key == _META_KEY:
                continue
            value = archive[key]  # a fresh array per npz access
            if dtype is not None and np.issubdtype(value.dtype, np.floating):
                value = value.astype(dtype, copy=False)
            state[key] = value
        metadata: dict = {}
        if _META_KEY in archive.files:
            metadata = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
    return state, metadata


def save_module(path: str | Path, module: Module, metadata: dict | None = None) -> Path:
    """Checkpoint a module's parameters; returns the real path written."""
    return save_checkpoint(path, module.state_dict(), metadata)


def load_module(path: str | Path, module: Module) -> dict:
    """Restore a module's parameters in place; returns the metadata."""
    state, metadata = load_checkpoint(path)
    module.load_state_dict(state)
    return metadata
