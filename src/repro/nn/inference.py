"""Graph-free inference engine: shape-keyed execution plans with workspace reuse.

The serving hot path does not need autograd: under ``no_grad`` every op still
pays ``Tensor._from_op`` wrapper construction, a fresh output allocation per
node, and head-split copies per attention call.  This module compiles the
HIRE forward (encoder → K× [MBU, MBI, MBA] → decoder) into an
:class:`InferencePlan` — a flat list of raw-ndarray kernel invocations
(``linear_into`` / ``layer_norm_into`` / ``mha_qkv_into`` / … from
:mod:`repro.nn.functional`) whose every intermediate is a view into a
preallocated :class:`Workspace` arena.  After the first (warmup) call at a
given (model, batch, n, m, dtype) key, repeated calls perform **zero** new
ndarray allocations and are bitwise identical to the ``no_grad`` Tensor path
on the fused kernels.

Plans are cached per thread in a small LRU keyed by
``(id(model), lead_shape, n, m)`` and are invalidated by a module-wide
generation counter which :class:`repro.serve.ModelRegistry` bumps on every
hot swap (``add`` / ``activate`` / ``unregister``).  The engine only covers
the fused-kernel forward; callers fall back to the Tensor path for gradient
work, ``capture_attention``, and the decomposed reference kernels (see
:func:`engine_supported`).

Beyond exact-shape batching (:func:`forward_inference_many`), the engine
packs *mixed-shape* contexts into one padded plan execution
(:func:`forward_inference_packed`): contexts smaller than the plan's
``(n, m)`` are padded with zero rows/columns, the FLOP-heavy linears, layer
norms and the per-cell MBA attention run full-padded in one batched call,
and the MBU/MBI attention cores plus the decoder GEMM run per shape-group
on sliced views of the padded arenas — which keeps every real row's scores
bitwise identical to an unpadded forward (the reduction lengths the
floating-point sums see never change).  See docs/nn_substrate.md ("Padded
packing").  An :class:`EmbeddingStore` additionally caches the encoder's
per-entity attribute rows across requests, keyed to the plan generation.

Observability: every run is wrapped in an ``infer/forward`` span, and the
process metrics registry tracks ``infer.plan_cache.hit`` /
``infer.plan_cache.miss`` and ``infer.embed_store.hit`` /
``infer.embed_store.miss`` counters plus an ``infer.workspace_bytes``
gauge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from math import prod

import numpy as np

from . import functional as F
# Submodule imports (not ``repro.obs`` itself): the obs package pulls in
# ophooks → repro.nn.functional at import time, so importing the package here
# would be circular; spans/metrics import nothing from repro.nn.
from ..obs import metrics as _metrics
from ..obs import spans as _spans

__all__ = [
    "Workspace",
    "InferencePlan",
    "EmbeddingStore",
    "forward_inference",
    "forward_inference_many",
    "forward_inference_packed",
    "engine_supported",
    "get_plan",
    "bump_generation",
    "generation",
    "cache_stats",
    "clear_cache",
]


class Workspace:
    """Named flat arenas of preallocated memory, carved into shaped views.

    Buffers that are never alive at the same time (e.g. the layer-norm
    square scratch and the attention score matrix) share an arena sized to
    the larger of the two, so the steady-state footprint stays close to the
    true high-water mark of the forward.
    """

    def __init__(self, dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        self._arenas: dict[str, np.ndarray] = {}

    def reserve(self, name: str, count: int, dtype=None) -> None:
        """Grow arena ``name`` to at least ``count`` elements.

        Arenas start zeroed (not ``np.empty``): packed executions read
        whole padded buffers through elementwise ops, and zero padding
        keeps them finite — uninitialised ±inf garbage would turn a
        padded layer-norm row into ``inf - inf`` NaN warnings.
        """
        dtype = self.dtype if dtype is None else np.dtype(dtype)
        existing = self._arenas.get(name)
        if existing is None or existing.size < count:
            self._arenas[name] = np.zeros(max(count, 1), dtype=dtype)

    def view(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A contiguous view of arena ``name`` with the requested shape."""
        count = prod(shape) if shape else 1
        arena = self._arenas[name]
        if count > arena.size:
            raise ValueError(
                f"arena {name!r} holds {arena.size} elements, need {count}")
        return arena[:count].reshape(shape)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arenas.values())


class EmbeddingStore:
    """Warm-entity cache of the encoder's per-entity attribute rows.

    ``x_u`` (and ``x_i``) are pure functions of an entity's static attribute
    row and the encoder's embedding tables, so recomputing them per request
    is wasted work.  The store holds one precomputed row per entity —
    ``user_rows[u] = concat_k user_transforms[k][attributes[u, k]]`` — filled
    lazily on first sight and reused across requests; the plan encode then
    gathers whole rows with a single ``np.take`` per side.  Rows are built
    by the same gather ops the direct encode performs (no arithmetic), so
    store-backed scores are bitwise identical to store-free ones.

    Validity is keyed to ``(model, generation())``: a
    :class:`repro.serve.ModelRegistry` hot swap bumps the generation and
    retires the store (see :meth:`valid_for`).  Writes are idempotent —
    concurrent workers may fill the same missing row with identical bytes,
    and a row is only marked valid after its bytes land — so the store is
    shared across worker threads without a lock; the ``hits``/``misses``
    tallies are best-effort under concurrency.
    """

    def __init__(self, model):
        enc = model.encoder
        self.model = model
        self.generation = generation()
        self._enc = enc
        self._f = enc.attr_dim
        dtype = model.decoder.weight.data.dtype
        num_users = enc._user_attributes.shape[0]
        num_items = enc._item_attributes.shape[0]
        self.user_rows = np.zeros((num_users, enc.num_user_attrs * enc.attr_dim),
                                  dtype=dtype)
        self.item_rows = np.zeros((num_items, enc.num_item_attrs * enc.attr_dim),
                                  dtype=dtype)
        self._user_valid = np.zeros(num_users, dtype=bool)
        self._item_valid = np.zeros(num_items, dtype=bool)
        self.hits = 0
        self.misses = 0

    def valid_for(self, model) -> bool:
        """Whether the store may serve ``model`` at the current generation."""
        return self.model is model and self.generation == generation()

    def ensure(self, users: np.ndarray, items: np.ndarray) -> None:
        """Fill any missing user/item rows so gathers can proceed."""
        registry = _metrics.get_registry()
        self._ensure_side(users, self._user_valid, self.user_rows,
                          self._enc._user_attributes,
                          self._enc.user_transforms, registry)
        self._ensure_side(items, self._item_valid, self.item_rows,
                          self._enc._item_attributes,
                          self._enc.item_transforms, registry)

    def _ensure_side(self, ids, valid, rows, attributes, transforms,
                     registry) -> None:
        if rows.shape[1] == 0:
            return
        present = valid[ids]
        hits = int(present.sum())
        if hits:
            self.hits += hits
            registry.counter("infer.embed_store.hit").inc(hits)
        if hits == len(ids):
            return
        missing = np.unique(ids[~present])
        f = self._f
        col = 0
        for k, transform in enumerate(transforms):
            rows[missing, col:col + f] = transform.weight.data[
                attributes[missing, k]]
            col += f
        valid[missing] = True
        self.misses += int(missing.size)
        registry.counter("infer.embed_store.miss").inc(int(missing.size))

    def invalidate_entities(self, users, items) -> None:
        """Mark these entities' rows stale so they refill on next touch.

        Rating deltas cannot actually change a row (rows are pure functions
        of static attributes and encoder weights), so this is strictly
        conservative — the serving tier calls it on fine-grained graph
        updates so the store's invalidation granularity matches the
        context cache's, instead of dropping the whole store per update.
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        if users.size:
            self._user_valid[users] = False
        if items.size:
            self._item_valid[items] = False

    def stats(self) -> dict:
        return {
            "hits": self.hits,
            "misses": self.misses,
            "users_cached": int(self._user_valid.sum()),
            "items_cached": int(self._item_valid.sum()),
            "bytes": int(self.user_rows.nbytes + self.item_rows.nbytes),
        }


class _AttnStep:
    """One attention layer bound to its input/output views and scratch."""

    __slots__ = ("attention", "norm", "kind", "x", "out_arr", "residual",
                 "num_heads", "normed", "sq", "red_ln", "qkv", "q", "k", "v",
                 "scores", "red", "ctx", "attn_out")


class _EncodeSlot:
    """Encoder views for one context slab of ``h`` (possibly sliced)."""

    __slots__ = ("cell", "user_block", "item_block", "rat", "xu", "xi",
                 "idx_n", "idx_m", "rflt", "ilev", "emb", "pad")


class _PackProgram:
    """Precompiled views for one packed composition of context shapes."""

    __slots__ = ("slots", "attn_spans", "dec_spans")


class InferencePlan:
    """A compiled, allocation-free forward for one (model, shape, dtype) key.

    Walks the ``HIRE`` / ``HIM`` / ``ContextEncoder`` structure once at build
    time, sizes every intermediate, and binds the ``*_into`` kernels to views
    of a shared :class:`Workspace`.  Parameter arrays are read through the
    module attributes at *run* time, so in-place weight updates (e.g.
    ``load_state_dict`` on a registered model) flow through without a
    rebuild.  The returned output is workspace-backed: it is valid until the
    next engine call on the same thread — copy it to retain it.
    """

    def __init__(self, model, lead: tuple[int, ...], n: int, m: int,
                 ratings_dtype):
        self.model = model
        self.lead = tuple(lead)
        self.n = int(n)
        self.m = int(m)
        self.ratings_dtype = np.dtype(ratings_dtype)
        self.dtype = model.decoder.weight.data.dtype
        self.generation = generation()

        enc = model.encoder
        self.encoder = enc
        self.e = enc.embed_dim
        self.f = enc.attr_dim
        self.hu_f = enc.num_user_attrs * enc.attr_dim
        self.hi_f = enc.num_item_attrs * enc.attr_dim
        self.num_attrs = enc.num_attributes

        self.workspace = Workspace(self.dtype)
        self._reserve_buffers()
        self._bind_views()
        self._steps = self._build_steps()
        # alpha pre-cast once so the sigmoid rescale allocates nothing per call.
        self._alpha = np.asarray(model.alpha, dtype=self.dtype)
        # Packed-execution programs, keyed by the composition of real
        # context shapes (one entry per distinct mix of (n_i, m_i) tuples).
        self._pack_programs: dict[tuple, _PackProgram] = {}

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def _attn_shapes(self, kind: str):
        """(batch_shape, tokens, width, heads) for one interaction kind."""
        lead, n, m = self.lead, self.n, self.m
        if kind == "user":
            layer = self.model.blocks[0].user_attention
            return (*lead, m), n, self.e, layer.num_heads
        if kind == "item":
            layer = self.model.blocks[0].item_attention
            return (*lead, n), m, self.e, layer.num_heads
        layer = self.model.blocks[0].attr_attention
        return (*lead, n, m), self.num_attrs, self.f, layer.num_heads

    def _reserve_buffers(self) -> None:
        ws = self.workspace
        lead, n, m, e, f = self.lead, self.n, self.m, self.e, self.f
        cells = prod(lead) * n * m if lead else n * m
        ws.reserve("h", cells * e)
        block = self.model.blocks[0]
        if getattr(block, "use_user", False):
            ws.reserve("h_user", cells * e)
        ws.reserve("logits", cells)
        ws.reserve("out", cells)
        # Encoder scratch.
        ws.reserve("xu", n * self.hu_f)
        ws.reserve("xi", m * self.hi_f)
        ws.reserve("idx", max(n, m), dtype=np.int64)
        ws.reserve("rflt", n * m, dtype=self.ratings_dtype)
        ws.reserve("ilev", n * m, dtype=np.int64)
        ws.reserve("emb", n * m * f)
        # Attention arenas, sized to the max over the enabled kinds.  All
        # x-shaped buffers hold exactly ``cells * e`` elements (e = h·f);
        # scores/red vary per kind.  The layer-norm square scratch shares
        # the scores arena (they are never alive simultaneously).
        x_count = cells * e
        scores_count = x_count
        red_count = 0
        for kind in self._enabled_kinds():
            bshape, t, d, heads = self._attn_shapes(kind)
            batch = prod(bshape) if bshape else 1
            scores_count = max(scores_count, batch * heads * t * t)
            red_count = max(red_count, batch * heads * t, batch * t)
        for name in ("normed", "attn", "q", "k", "v", "ctx"):
            ws.reserve(name, x_count)
        ws.reserve("qkv", 3 * x_count)
        ws.reserve("scores", scores_count)
        ws.reserve("red", red_count)

    def _enabled_kinds(self):
        block = self.model.blocks[0]
        kinds = []
        if getattr(block, "use_user", False):
            kinds.append("user")
        if getattr(block, "use_item", False):
            kinds.append("item")
        if getattr(block, "use_attr", False):
            kinds.append("attr")
        return kinds

    def _bind_views(self) -> None:
        ws = self.workspace
        lead, n, m, e = self.lead, self.n, self.m, self.e
        self.h = ws.view("h", (*lead, n, m, e))
        self.h_user = (ws.view("h_user", (*lead, m, n, e))
                       if "h_user" in ws._arenas else None)
        self.logits = ws.view("logits", (*lead, n, m, 1))
        self.out = ws.view("out", (*lead, n, m))
        # One full-shape encode slot per context slab; the encoder scratch
        # arenas are shared across slots (encodes run sequentially).
        slabs = self.h.reshape(-1, n, m, e)
        self._encode_slots = [self._make_encode_slot(slabs[b], n, m)
                              for b in range(slabs.shape[0])]

    def _make_encode_slot(self, cell: np.ndarray, n: int, m: int) -> _EncodeSlot:
        """Encoder views for one ``(n_full, m_full, e)`` slab of ``h``,
        filled over its leading ``(n, m)`` region; any padding strips beyond
        that region are zeroed on every encode."""
        ws = self.workspace
        slot = _EncodeSlot()
        slot.cell = cell[:n, :m]
        slot.user_block = slot.cell[:, :, : self.hu_f]
        slot.item_block = slot.cell[:, :, self.hu_f: self.hu_f + self.hi_f]
        slot.rat = slot.cell[:, :, self.hu_f + self.hi_f:]
        slot.xu = ws.view("xu", (n, self.hu_f))
        slot.xi = ws.view("xi", (m, self.hi_f))
        slot.idx_n = ws.view("idx", (n,))
        slot.idx_m = ws.view("idx", (m,))
        slot.rflt = ws.view("rflt", (n, m))
        slot.ilev = ws.view("ilev", (n, m))
        slot.emb = ws.view("emb", (n, m, self.f))
        pad = []
        if n < cell.shape[0]:
            pad.append(cell[n:, :, :])
        if m < cell.shape[1]:
            pad.append(cell[:n, m:, :])
        slot.pad = tuple(pad)
        return slot

    # ------------------------------------------------------------------ #
    # Step compilation
    # ------------------------------------------------------------------ #
    def _bind_attention(self, attention, norm, kind: str, x: np.ndarray,
                        out_arr: np.ndarray, residual: bool) -> _AttnStep:
        ws = self.workspace
        bshape, t, d, heads = self._attn_shapes(kind)
        head_dim = d // heads
        step = _AttnStep()
        step.attention = attention
        step.norm = norm
        step.kind = kind
        step.x = x
        step.out_arr = out_arr
        step.residual = residual
        step.num_heads = heads
        xshape = (*bshape, t, d)
        step.normed = ws.view("normed", xshape)
        step.sq = ws.view("scores", xshape)       # dead before scores live
        step.red_ln = ws.view("red", (*bshape, t, 1))
        step.qkv = ws.view("qkv", (*bshape, t, 3 * d))
        head_shape = (*bshape, heads, t, head_dim)
        step.q = ws.view("q", head_shape)
        step.k = ws.view("k", head_shape)
        step.v = ws.view("v", head_shape)
        step.ctx = ws.view("ctx", head_shape)
        step.scores = ws.view("scores", (*bshape, heads, t, t))
        step.red = ws.view("red", (*bshape, heads, t, 1))
        step.attn_out = ws.view("attn", xshape)
        return step

    @staticmethod
    def _exec_attn(step: _AttnStep, spans=None) -> None:
        at = step.attention
        if step.norm is not None:
            F.layer_norm_into(step.x, step.norm.gamma.data,
                              step.norm.beta.data, step.normed, step.sq,
                              step.red_ln, eps=step.norm.eps)
            src = step.normed
        else:
            src = step.x
        F.linear_into(src, at.w_qkv.data, step.qkv)
        F.mha_qkv_into(step.qkv, step.num_heads, step.attn_out, step.q,
                       step.k, step.v, step.scores, step.red, step.ctx,
                       spans=spans)
        bias = at.w_output.bias
        F.linear_into(step.attn_out, at.w_output.weight.data, step.normed,
                      bias=None if bias is None else bias.data)
        if step.residual:
            np.add(step.x, step.normed, out=step.out_arr)
        else:
            np.copyto(step.out_arr, step.normed)

    def _build_steps(self):
        """Flatten the K HIM blocks into attention/copy steps.

        The activation ping-pongs between ``h`` (row-major ``(…, n, m, e)``)
        and ``h_user`` (``(…, m, n, e)``): MBU reads a transposed view of
        ``h`` and lands in ``h_user``; MBI reads the transposed view back and
        lands in ``h``; MBA runs in place on ``h``.  Ablated blocks insert an
        explicit copy so MBA always sees contiguous ``h`` (mirroring the
        reshape-copy the Tensor path performs on a non-contiguous input).
        """
        lead, n, m, e = self.lead, self.n, self.m, self.e
        steps = []  # ("attn", _AttnStep) | ("copy", dst, src)

        for block in self.model.blocks:
            in_h = True  # activation currently lives in self.h
            if block.use_user:
                x = self.h.swapaxes(-3, -2)          # (…, m, n, e) view
                norm = block.user_norm if block.use_layer_norm else None
                steps.append(("attn", self._bind_attention(
                    block.user_attention, norm, "user", x, self.h_user,
                    block.use_residual)))
                in_h = False
            if block.use_item:
                x = self.h if in_h else self.h_user.swapaxes(-3, -2)
                norm = block.item_norm if block.use_layer_norm else None
                steps.append(("attn", self._bind_attention(
                    block.item_attention, norm, "item", x, self.h,
                    block.use_residual)))
                in_h = True
            if block.use_attr:
                if not in_h:
                    steps.append(("copy", self.h,
                                  self.h_user.swapaxes(-3, -2)))
                    in_h = True
                x = self.h.reshape(*lead, n, m, self.num_attrs, self.f)
                norm = block.attr_norm if block.use_layer_norm else None
                steps.append(("attn", self._bind_attention(
                    block.attr_attention, norm, "attr", x, x,
                    block.use_residual)))
            if not in_h:
                steps.append(("copy", self.h, self.h_user.swapaxes(-3, -2)))
        return steps

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _encode_into(self, context, slot: _EncodeSlot,
                     store: EmbeddingStore | None = None) -> None:
        """Fill one context's slab of ``h`` in place through ``slot``'s views."""
        enc = self.encoder
        f = self.f
        if store is not None:
            # Warm path: rows were built by the identical gather ops, so a
            # single whole-row take per side reproduces the same bytes.
            store.ensure(context.users, context.items)
            if self.hu_f:
                np.take(store.user_rows, context.users, axis=0, out=slot.xu)
            if self.hi_f:
                np.take(store.item_rows, context.items, axis=0, out=slot.xi)
        else:
            col = 0
            for k, transform in enumerate(enc.user_transforms):
                np.take(enc._user_attributes[:, k], context.users,
                        out=slot.idx_n)
                np.take(transform.weight.data, slot.idx_n, axis=0,
                        out=slot.xu[:, col:col + f])
                col += f
            col = 0
            for k, transform in enumerate(enc.item_transforms):
                np.take(enc._item_attributes[:, k], context.items,
                        out=slot.idx_m)
                np.take(transform.weight.data, slot.idx_m, axis=0,
                        out=slot.xi[:, col:col + f])
                col += f
        if self.hu_f:
            slot.user_block[...] = slot.xu[:, None, :]
        if self.hi_f:
            slot.item_block[...] = slot.xi[None, :, :]
        # Ratings: dense lookup into the scratch table, then masked copy —
        # revealed cells land on exactly the rows the sparse Tensor encode
        # looks up; masked cells take the mask token / zero fill.
        np.subtract(context.ratings, enc.rating_low, out=slot.rflt)
        np.rint(slot.rflt, out=slot.rflt)
        np.copyto(slot.ilev, slot.rflt, casting="unsafe")
        np.clip(slot.ilev, 0, enc.num_rating_levels - 1, out=slot.ilev)
        np.take(enc.rating_transform.weight.data, slot.ilev, axis=0,
                out=slot.emb)
        if enc.mask_token is not None:
            slot.rat[...] = enc.mask_token.data
        else:
            slot.rat.fill(0.0)
        np.copyto(slot.rat, slot.emb, where=context.revealed[:, :, None])
        for strip in slot.pad:
            strip.fill(0.0)

    def _execute(self, pack: _PackProgram | None = None) -> np.ndarray:
        attn_spans = None if pack is None else pack.attn_spans
        for step in self._steps:
            if step[0] == "copy":
                np.copyto(step[1], step[2])
            else:
                attn = step[1]
                spans = (attn_spans.get(attn.kind)
                         if attn_spans is not None else None)
                self._exec_attn(attn, spans)
        dec = self.model.decoder
        if pack is None:
            F.linear_into(self.h, dec.weight.data, self.logits,
                          bias=None if dec.bias is None else dec.bias.data)
        else:
            # The decoder GEMM has N=1, whose OpenBLAS kernel is not
            # M-padding-stable — run it per shape group on sliced views
            # (each batch slice is a contiguous (m_i, e) block), then add
            # the bias over the full buffer exactly like linear_into.
            for h_s, out_s in pack.dec_spans:
                np.matmul(h_s, dec.weight.data, out=out_s)
            if dec.bias is not None:
                self.logits += dec.bias.data
        F.sigmoid_rescale_into(
            self.logits.reshape(*self.lead, self.n, self.m), self._alpha,
            self.out)
        return self.out

    def run(self, context,
            store: EmbeddingStore | None = None) -> np.ndarray:
        """Single-context forward: returns the workspace-backed ``(n, m)``."""
        if self.lead:
            raise ValueError("batched plan cannot run a single context")
        self._encode_into(context, self._encode_slots[0], store)
        return self._execute()

    def run_many(self, contexts,
                 store: EmbeddingStore | None = None) -> np.ndarray:
        """Batched forward: returns the workspace-backed ``(B, n, m)``."""
        if self.lead != (len(contexts),):
            raise ValueError(
                f"plan built for batch {self.lead}, got {len(contexts)}")
        for slot, context in zip(self._encode_slots, contexts):
            self._encode_into(context, slot, store)
        return self._execute()

    # ------------------------------------------------------------------ #
    # Padded packing
    # ------------------------------------------------------------------ #
    def run_packed(self, contexts,
                   store: EmbeddingStore | None = None) -> np.ndarray:
        """Padded mixed-shape forward: returns workspace-backed ``(B, n, m)``.

        ``contexts`` may be smaller than the plan's ``(n, m)``; each is
        zero-padded into its slab.  Contexts must arrive grouped so equal
        shapes are contiguous (sort descending by ``(n, m)`` — see
        :func:`forward_inference_packed`).  Real rows/columns of each slab
        are bitwise identical to an unpadded forward of that context:
        elementwise ops, layer norms, the (M≥8, N≥8) linears and the
        per-cell MBA attention are padding-stable full-batched, while the
        MBU/MBI attention cores and the N=1 decoder GEMM execute per shape
        group on sliced views whose reduction lengths equal the real ones.
        Padded regions of the output are stale garbage — never read them.
        """
        if self.lead != (len(contexts),):
            raise ValueError(
                f"plan built for batch {self.lead}, got {len(contexts)}")
        shapes = tuple((context.n, context.m) for context in contexts)
        program = self._pack_programs.get(shapes)
        if program is None:
            program = self._compile_pack(shapes)
            if len(self._pack_programs) >= _MAX_PACK_PROGRAMS:
                self._pack_programs.clear()
            self._pack_programs[shapes] = program
        for slot, context in zip(program.slots, contexts):
            self._encode_into(context, slot, store)
        return self._execute(program)

    def _compile_pack(self, shapes) -> _PackProgram:
        """Bind the sliced views for one composition of context shapes."""
        n, m = self.n, self.m
        groups = []  # (b0, b1, n_i, m_i) contiguous same-shape runs
        seen = set()
        for b, (n_i, m_i) in enumerate(shapes):
            if not (1 <= n_i <= n and 1 <= m_i <= m):
                raise ValueError(
                    f"context shape ({n_i}, {m_i}) exceeds plan ({n}, {m})")
            if groups and groups[-1][2:] == (n_i, m_i):
                groups[-1] = (groups[-1][0], b + 1, n_i, m_i)
            else:
                if (n_i, m_i) in seen:
                    raise ValueError(
                        "packed contexts must be grouped by shape "
                        "(sort before calling run_packed)")
                seen.add((n_i, m_i))
                groups.append((b, b + 1, n_i, m_i))
        slabs = self.h.reshape(-1, n, m, self.e)
        program = _PackProgram()
        program.slots = [self._make_encode_slot(slabs[b], n_i, m_i)
                         for b, (n_i, m_i) in enumerate(shapes)]
        program.attn_spans = {
            kind: self._span_views(kind, groups)
            for kind in self._enabled_kinds() if kind != "attr"
        }
        dec_spans = []
        for b0, b1, n_i, m_i in groups:
            dec_spans.append((self.h[b0:b1, :n_i, :m_i, :],
                              self.logits[b0:b1, :n_i, :m_i, :]))
        program.dec_spans = dec_spans
        return program

    def _span_views(self, kind: str, groups):
        """Per-group sliced (q, kᵀ, v, scores, red, ctx) views for one kind."""
        ws = self.workspace
        bshape, t, d, heads = self._attn_shapes(kind)
        head_dim = d // heads
        head_shape = (*bshape, heads, t, head_dim)
        q = ws.view("q", head_shape)
        k = ws.view("k", head_shape)
        v = ws.view("v", head_shape)
        ctx = ws.view("ctx", head_shape)
        scores = ws.view("scores", (*bshape, heads, t, t))
        red = ws.view("red", (*bshape, heads, t, 1))
        spans = []
        for b0, b1, n_i, m_i in groups:
            # MBU attends n tokens batched over m columns; MBI the reverse.
            g, tt = (m_i, n_i) if kind == "user" else (n_i, m_i)
            sl = (slice(b0, b1), slice(0, g), slice(None), slice(0, tt))
            spans.append((
                q[sl],
                np.swapaxes(k[sl], -1, -2),
                v[sl],
                scores[b0:b1, :g, :, :tt, :tt],
                red[b0:b1, :g, :, :tt, :],
                ctx[sl],
            ))
        return spans

    def matches(self, model, lead, n: int, m: int, ratings_dtype) -> bool:
        return (self.model is model
                and self.lead == tuple(lead)
                and self.n == n and self.m == m
                and self.ratings_dtype == np.dtype(ratings_dtype)
                and self.dtype == model.decoder.weight.data.dtype)


# --------------------------------------------------------------------------- #
# Plan cache (thread-local LRU) and generation-based invalidation
# --------------------------------------------------------------------------- #
_GEN_LOCK = threading.Lock()
_GENERATION = 0
# Mixed-shape traffic keys plans by *bucketed* shapes (the serve tier rounds
# (n, m) up to pack buckets), so the key space stays small; 16 entries give
# several lead sizes × several buckets headroom without hoarding workspaces.
_MAX_PLANS = 16
_MAX_PACK_PROGRAMS = 32


def generation() -> int:
    """Current plan generation; plans built under older generations are stale."""
    return _GENERATION


def bump_generation() -> None:
    """Invalidate every cached plan in every thread (lazily, on next lookup).

    Called by :class:`repro.serve.ModelRegistry` on hot swaps so no stale
    plan keeps a retired model (or its workspace) alive.
    """
    global _GENERATION
    with _GEN_LOCK:
        _GENERATION += 1


class _PlanCache(threading.local):
    def __init__(self):
        self.plans: OrderedDict = OrderedDict()
        self.generation = -1


_CACHE = _PlanCache()


def clear_cache() -> None:
    """Drop this thread's cached plans (frees their workspaces)."""
    _CACHE.plans.clear()


def _workspace_bytes() -> int:
    return sum(p.workspace.nbytes for p in _CACHE.plans.values())


def cache_stats() -> dict:
    """This thread's plan-cache state plus the global hit/miss counters."""
    snapshot = _metrics.get_registry().snapshot()
    return {
        "plans": len(_CACHE.plans),
        "generation": generation(),
        "workspace_bytes": _workspace_bytes(),
        "hits": snapshot.get("infer.plan_cache.hit", {}).get("value", 0),
        "misses": snapshot.get("infer.plan_cache.miss", {}).get("value", 0),
    }


def get_plan(model, lead, n: int, m: int, ratings_dtype) -> InferencePlan:
    """Fetch or build the plan for (model, lead, n, m); LRU-cached per thread."""
    cache = _CACHE
    gen = generation()
    if cache.generation != gen:
        cache.plans.clear()
        cache.generation = gen
    key = (id(model), tuple(lead), n, m)
    registry = _metrics.get_registry()
    plan = cache.plans.get(key)
    if plan is not None and plan.matches(model, lead, n, m, ratings_dtype):
        cache.plans.move_to_end(key)
        registry.counter("infer.plan_cache.hit").inc()
        return plan
    registry.counter("infer.plan_cache.miss").inc()
    with _spans.span("infer/plan_build"):
        plan = InferencePlan(model, lead, n, m, ratings_dtype)
    cache.plans[key] = plan
    cache.plans.move_to_end(key)
    while len(cache.plans) > _MAX_PLANS:
        cache.plans.popitem(last=False)
    registry.gauge("infer.workspace_bytes").set(_workspace_bytes())
    return plan


def engine_supported(model) -> bool:
    """Whether the engine can replace the Tensor forward for ``model``.

    False (→ callers use the Tensor path) when the decomposed reference
    kernels are active, when any attention layer is capturing weights, or
    when the model does not expose the HIRE encoder/blocks/decoder
    structure the planner walks.
    """
    if not F.fused_kernels_enabled():
        return False
    if not all(hasattr(model, name)
               for name in ("encoder", "blocks", "decoder", "alpha")):
        return False
    enc = model.encoder
    if not all(hasattr(enc, name)
               for name in ("user_transforms", "item_transforms",
                            "rating_transform", "mask_token")):
        return False
    for block in model.blocks:
        for name in ("user_attention", "item_attention", "attr_attention"):
            layer = getattr(block, name, None)
            if layer is not None and layer.capture_attention:
                return False
    return True


def forward_inference(model, context,
                      embed_store: EmbeddingStore | None = None) -> np.ndarray:
    """Run one context through the compiled plan; ``(n, m)`` ratings.

    The result is a view into the plan's workspace — valid until the next
    engine call on this thread.  Copy it to retain it.  ``embed_store``
    optionally reuses warm per-entity attribute rows (bitwise identical).
    """
    plan = get_plan(model, (), context.n, context.m, context.ratings.dtype)
    with _spans.span("infer/forward"):
        return plan.run(context, embed_store)


def forward_inference_many(model, contexts,
                           embed_store: EmbeddingStore | None = None
                           ) -> np.ndarray:
    """Batched engine forward over same-shape contexts; ``(B, n, m)``.

    Bit-identical per slice to :func:`forward_inference` on each context,
    matching the ``forward_many`` contract of the Tensor path.  The result
    is workspace-backed (see :func:`forward_inference`).
    """
    if not contexts:
        raise ValueError("forward_inference_many needs at least one context")
    first = contexts[0]
    plan = get_plan(model, (len(contexts),), first.n, first.m,
                    first.ratings.dtype)
    with _spans.span("infer/forward"):
        return plan.run_many(contexts, embed_store)


def forward_inference_packed(model, contexts, n: int, m: int,
                             embed_store: EmbeddingStore | None = None):
    """Padded mixed-shape engine forward through one ``(B, n, m)`` plan.

    Pads every context into an ``(n, m)`` slab of a single stacked plan and
    executes once, with the attention cores and decoder sliced per shape
    group so each real row's scores stay bitwise identical to an unpadded
    :func:`forward_inference` of the same context (see
    :meth:`InferencePlan.run_packed`; float32 shares the same guarantee on
    the kernels this engine generates).

    Returns ``(outputs, slots)``: ``outputs`` is the workspace-backed
    ``(B, n, m)`` padded result and ``slots[i]`` the row holding
    ``contexts[i]`` (contexts are re-ordered internally so equal shapes sit
    in contiguous runs).  Only the leading ``(contexts[i].n, contexts[i].m)``
    region of a slab is meaningful.
    """
    if not contexts:
        raise ValueError("forward_inference_packed needs at least one context")
    ratings_dtype = contexts[0].ratings.dtype
    for context in contexts:
        if context.ratings.dtype != ratings_dtype:
            raise ValueError("packed contexts must share a ratings dtype")
    order = sorted(range(len(contexts)),
                   key=lambda i: (-contexts[i].n, -contexts[i].m))
    ordered = [contexts[i] for i in order]
    plan = get_plan(model, (len(contexts),), n, m, ratings_dtype)
    with _spans.span("infer/forward"):
        outputs = plan.run_packed(ordered, embed_store)
    slots = [0] * len(contexts)
    for row, index in enumerate(order):
        slots[index] = row
    return outputs, slots
