"""Graph-free inference engine: shape-keyed execution plans with workspace reuse.

The serving hot path does not need autograd: under ``no_grad`` every op still
pays ``Tensor._from_op`` wrapper construction, a fresh output allocation per
node, and head-split copies per attention call.  This module compiles the
HIRE forward (encoder → K× [MBU, MBI, MBA] → decoder) into an
:class:`InferencePlan` — a flat list of raw-ndarray kernel invocations
(``linear_into`` / ``layer_norm_into`` / ``mha_qkv_into`` / … from
:mod:`repro.nn.functional`) whose every intermediate is a view into a
preallocated :class:`Workspace` arena.  After the first (warmup) call at a
given (model, batch, n, m, dtype) key, repeated calls perform **zero** new
ndarray allocations and are bitwise identical to the ``no_grad`` Tensor path
on the fused kernels.

Plans are cached per thread in a small LRU keyed by
``(id(model), lead_shape, n, m)`` and are invalidated by a module-wide
generation counter which :class:`repro.serve.ModelRegistry` bumps on every
hot swap (``add`` / ``activate`` / ``unregister``).  The engine only covers
the fused-kernel forward; callers fall back to the Tensor path for gradient
work, ``capture_attention``, and the decomposed reference kernels (see
:func:`engine_supported`).

Observability: every run is wrapped in an ``infer/forward`` span, and the
process metrics registry tracks ``infer.plan_cache.hit`` /
``infer.plan_cache.miss`` counters plus an ``infer.workspace_bytes`` gauge.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from math import prod

import numpy as np

from . import functional as F
# Submodule imports (not ``repro.obs`` itself): the obs package pulls in
# ophooks → repro.nn.functional at import time, so importing the package here
# would be circular; spans/metrics import nothing from repro.nn.
from ..obs import metrics as _metrics
from ..obs import spans as _spans

__all__ = [
    "Workspace",
    "InferencePlan",
    "forward_inference",
    "forward_inference_many",
    "engine_supported",
    "get_plan",
    "bump_generation",
    "generation",
    "cache_stats",
    "clear_cache",
]


class Workspace:
    """Named flat arenas of preallocated memory, carved into shaped views.

    Buffers that are never alive at the same time (e.g. the layer-norm
    square scratch and the attention score matrix) share an arena sized to
    the larger of the two, so the steady-state footprint stays close to the
    true high-water mark of the forward.
    """

    def __init__(self, dtype: np.dtype):
        self.dtype = np.dtype(dtype)
        self._arenas: dict[str, np.ndarray] = {}

    def reserve(self, name: str, count: int, dtype=None) -> None:
        """Grow arena ``name`` to at least ``count`` elements."""
        dtype = self.dtype if dtype is None else np.dtype(dtype)
        existing = self._arenas.get(name)
        if existing is None or existing.size < count:
            self._arenas[name] = np.empty(max(count, 1), dtype=dtype)

    def view(self, name: str, shape: tuple[int, ...]) -> np.ndarray:
        """A contiguous view of arena ``name`` with the requested shape."""
        count = prod(shape) if shape else 1
        arena = self._arenas[name]
        if count > arena.size:
            raise ValueError(
                f"arena {name!r} holds {arena.size} elements, need {count}")
        return arena[:count].reshape(shape)

    @property
    def nbytes(self) -> int:
        return sum(a.nbytes for a in self._arenas.values())


class _AttnStep:
    """One attention layer bound to its input/output views and scratch."""

    __slots__ = ("attention", "norm", "x", "out_arr", "residual", "num_heads",
                 "normed", "sq", "red_ln", "qkv", "q", "k", "v", "scores",
                 "red", "ctx", "attn_out")


class InferencePlan:
    """A compiled, allocation-free forward for one (model, shape, dtype) key.

    Walks the ``HIRE`` / ``HIM`` / ``ContextEncoder`` structure once at build
    time, sizes every intermediate, and binds the ``*_into`` kernels to views
    of a shared :class:`Workspace`.  Parameter arrays are read through the
    module attributes at *run* time, so in-place weight updates (e.g.
    ``load_state_dict`` on a registered model) flow through without a
    rebuild.  The returned output is workspace-backed: it is valid until the
    next engine call on the same thread — copy it to retain it.
    """

    def __init__(self, model, lead: tuple[int, ...], n: int, m: int,
                 ratings_dtype):
        self.model = model
        self.lead = tuple(lead)
        self.n = int(n)
        self.m = int(m)
        self.ratings_dtype = np.dtype(ratings_dtype)
        self.dtype = model.decoder.weight.data.dtype
        self.generation = generation()

        enc = model.encoder
        self.encoder = enc
        self.e = enc.embed_dim
        self.f = enc.attr_dim
        self.hu_f = enc.num_user_attrs * enc.attr_dim
        self.hi_f = enc.num_item_attrs * enc.attr_dim
        self.num_attrs = enc.num_attributes

        self.workspace = Workspace(self.dtype)
        self._reserve_buffers()
        self._bind_views()
        self._steps = self._build_steps()
        # alpha pre-cast once so the sigmoid rescale allocates nothing per call.
        self._alpha = np.asarray(model.alpha, dtype=self.dtype)

    # ------------------------------------------------------------------ #
    # Layout
    # ------------------------------------------------------------------ #
    def _attn_shapes(self, kind: str):
        """(batch_shape, tokens, width, heads) for one interaction kind."""
        lead, n, m = self.lead, self.n, self.m
        if kind == "user":
            layer = self.model.blocks[0].user_attention
            return (*lead, m), n, self.e, layer.num_heads
        if kind == "item":
            layer = self.model.blocks[0].item_attention
            return (*lead, n), m, self.e, layer.num_heads
        layer = self.model.blocks[0].attr_attention
        return (*lead, n, m), self.num_attrs, self.f, layer.num_heads

    def _reserve_buffers(self) -> None:
        ws = self.workspace
        lead, n, m, e, f = self.lead, self.n, self.m, self.e, self.f
        cells = prod(lead) * n * m if lead else n * m
        ws.reserve("h", cells * e)
        block = self.model.blocks[0]
        if getattr(block, "use_user", False):
            ws.reserve("h_user", cells * e)
        ws.reserve("logits", cells)
        ws.reserve("out", cells)
        # Encoder scratch.
        ws.reserve("xu", n * self.hu_f)
        ws.reserve("xi", m * self.hi_f)
        ws.reserve("idx", max(n, m), dtype=np.int64)
        ws.reserve("rflt", n * m, dtype=self.ratings_dtype)
        ws.reserve("ilev", n * m, dtype=np.int64)
        ws.reserve("emb", n * m * f)
        # Attention arenas, sized to the max over the enabled kinds.  All
        # x-shaped buffers hold exactly ``cells * e`` elements (e = h·f);
        # scores/red vary per kind.  The layer-norm square scratch shares
        # the scores arena (they are never alive simultaneously).
        x_count = cells * e
        scores_count = x_count
        red_count = 0
        for kind in self._enabled_kinds():
            bshape, t, d, heads = self._attn_shapes(kind)
            batch = prod(bshape) if bshape else 1
            scores_count = max(scores_count, batch * heads * t * t)
            red_count = max(red_count, batch * heads * t, batch * t)
        for name in ("normed", "attn", "q", "k", "v", "ctx"):
            ws.reserve(name, x_count)
        ws.reserve("qkv", 3 * x_count)
        ws.reserve("scores", scores_count)
        ws.reserve("red", red_count)

    def _enabled_kinds(self):
        block = self.model.blocks[0]
        kinds = []
        if getattr(block, "use_user", False):
            kinds.append("user")
        if getattr(block, "use_item", False):
            kinds.append("item")
        if getattr(block, "use_attr", False):
            kinds.append("attr")
        return kinds

    def _bind_views(self) -> None:
        ws = self.workspace
        lead, n, m, e = self.lead, self.n, self.m, self.e
        self.h = ws.view("h", (*lead, n, m, e))
        self.h_user = (ws.view("h_user", (*lead, m, n, e))
                       if "h_user" in ws._arenas else None)
        self.logits = ws.view("logits", (*lead, n, m, 1))
        self.out = ws.view("out", (*lead, n, m))
        self.xu = ws.view("xu", (n, self.hu_f))
        self.xi = ws.view("xi", (m, self.hi_f))
        self.idx = ws.view("idx", (max(n, m),))
        self.rflt = ws.view("rflt", (n, m))
        self.ilev = ws.view("ilev", (n, m))
        self.emb = ws.view("emb", (n, m, self.f))

    # ------------------------------------------------------------------ #
    # Step compilation
    # ------------------------------------------------------------------ #
    def _bind_attention(self, attention, norm, kind: str, x: np.ndarray,
                        out_arr: np.ndarray, residual: bool) -> _AttnStep:
        ws = self.workspace
        bshape, t, d, heads = self._attn_shapes(kind)
        head_dim = d // heads
        step = _AttnStep()
        step.attention = attention
        step.norm = norm
        step.x = x
        step.out_arr = out_arr
        step.residual = residual
        step.num_heads = heads
        xshape = (*bshape, t, d)
        step.normed = ws.view("normed", xshape)
        step.sq = ws.view("scores", xshape)       # dead before scores live
        step.red_ln = ws.view("red", (*bshape, t, 1))
        step.qkv = ws.view("qkv", (*bshape, t, 3 * d))
        head_shape = (*bshape, heads, t, head_dim)
        step.q = ws.view("q", head_shape)
        step.k = ws.view("k", head_shape)
        step.v = ws.view("v", head_shape)
        step.ctx = ws.view("ctx", head_shape)
        step.scores = ws.view("scores", (*bshape, heads, t, t))
        step.red = ws.view("red", (*bshape, heads, t, 1))
        step.attn_out = ws.view("attn", xshape)
        return step

    @staticmethod
    def _exec_attn(step: _AttnStep) -> None:
        at = step.attention
        if step.norm is not None:
            F.layer_norm_into(step.x, step.norm.gamma.data,
                              step.norm.beta.data, step.normed, step.sq,
                              step.red_ln, eps=step.norm.eps)
            src = step.normed
        else:
            src = step.x
        F.linear_into(src, at.w_qkv.data, step.qkv)
        F.mha_qkv_into(step.qkv, step.num_heads, step.attn_out, step.q,
                       step.k, step.v, step.scores, step.red, step.ctx)
        bias = at.w_output.bias
        F.linear_into(step.attn_out, at.w_output.weight.data, step.normed,
                      bias=None if bias is None else bias.data)
        if step.residual:
            np.add(step.x, step.normed, out=step.out_arr)
        else:
            np.copyto(step.out_arr, step.normed)

    def _build_steps(self):
        """Flatten the K HIM blocks into attention/copy steps.

        The activation ping-pongs between ``h`` (row-major ``(…, n, m, e)``)
        and ``h_user`` (``(…, m, n, e)``): MBU reads a transposed view of
        ``h`` and lands in ``h_user``; MBI reads the transposed view back and
        lands in ``h``; MBA runs in place on ``h``.  Ablated blocks insert an
        explicit copy so MBA always sees contiguous ``h`` (mirroring the
        reshape-copy the Tensor path performs on a non-contiguous input).
        """
        lead, n, m, e = self.lead, self.n, self.m, self.e
        steps = []

        def copy_step(dst, src):
            def run():
                np.copyto(dst, src)
            return run

        def attn_step(step):
            def run():
                self._exec_attn(step)
            return run

        for block in self.model.blocks:
            in_h = True  # activation currently lives in self.h
            if block.use_user:
                x = self.h.swapaxes(-3, -2)          # (…, m, n, e) view
                norm = block.user_norm if block.use_layer_norm else None
                steps.append(attn_step(self._bind_attention(
                    block.user_attention, norm, "user", x, self.h_user,
                    block.use_residual)))
                in_h = False
            if block.use_item:
                x = self.h if in_h else self.h_user.swapaxes(-3, -2)
                norm = block.item_norm if block.use_layer_norm else None
                steps.append(attn_step(self._bind_attention(
                    block.item_attention, norm, "item", x, self.h,
                    block.use_residual)))
                in_h = True
            if block.use_attr:
                if not in_h:
                    steps.append(copy_step(self.h, self.h_user.swapaxes(-3, -2)))
                    in_h = True
                x = self.h.reshape(*lead, n, m, self.num_attrs, self.f)
                norm = block.attr_norm if block.use_layer_norm else None
                steps.append(attn_step(self._bind_attention(
                    block.attr_attention, norm, "attr", x, x,
                    block.use_residual)))
            if not in_h:
                steps.append(copy_step(self.h, self.h_user.swapaxes(-3, -2)))
        return steps

    # ------------------------------------------------------------------ #
    # Execution
    # ------------------------------------------------------------------ #
    def _encode_into(self, context, h_cell: np.ndarray) -> None:
        """Fill one context's ``(n, m, e)`` slab of ``h`` in place."""
        enc = self.encoder
        f = self.f
        col = 0
        idx_n = self.idx[: self.n]
        for k, transform in enumerate(enc.user_transforms):
            np.take(enc._user_attributes[:, k], context.users, out=idx_n)
            np.take(transform.weight.data, idx_n, axis=0,
                    out=self.xu[:, col:col + f])
            col += f
        if self.hu_f:
            h_cell[:, :, : self.hu_f] = self.xu[:, None, :]
        col = 0
        idx_m = self.idx[: self.m]
        for k, transform in enumerate(enc.item_transforms):
            np.take(enc._item_attributes[:, k], context.items, out=idx_m)
            np.take(transform.weight.data, idx_m, axis=0,
                    out=self.xi[:, col:col + f])
            col += f
        if self.hi_f:
            h_cell[:, :, self.hu_f: self.hu_f + self.hi_f] = self.xi[None, :, :]
        # Ratings: dense lookup into the scratch table, then masked copy —
        # revealed cells land on exactly the rows the sparse Tensor encode
        # looks up; masked cells take the mask token / zero fill.
        rat = h_cell[:, :, self.hu_f + self.hi_f:]
        np.subtract(context.ratings, enc.rating_low, out=self.rflt)
        np.rint(self.rflt, out=self.rflt)
        np.copyto(self.ilev, self.rflt, casting="unsafe")
        np.clip(self.ilev, 0, enc.num_rating_levels - 1, out=self.ilev)
        np.take(enc.rating_transform.weight.data, self.ilev, axis=0,
                out=self.emb)
        if enc.mask_token is not None:
            rat[...] = enc.mask_token.data
        else:
            rat.fill(0.0)
        np.copyto(rat, self.emb, where=context.revealed[:, :, None])

    def _execute(self) -> np.ndarray:
        for step in self._steps:
            step()
        dec = self.model.decoder
        F.linear_into(self.h, dec.weight.data, self.logits,
                      bias=None if dec.bias is None else dec.bias.data)
        F.sigmoid_rescale_into(
            self.logits.reshape(*self.lead, self.n, self.m), self._alpha,
            self.out)
        return self.out

    def run(self, context) -> np.ndarray:
        """Single-context forward: returns the workspace-backed ``(n, m)``."""
        if self.lead:
            raise ValueError("batched plan cannot run a single context")
        self._encode_into(context, self.h)
        return self._execute()

    def run_many(self, contexts) -> np.ndarray:
        """Batched forward: returns the workspace-backed ``(B, n, m)``."""
        if self.lead != (len(contexts),):
            raise ValueError(
                f"plan built for batch {self.lead}, got {len(contexts)}")
        for b, context in enumerate(contexts):
            self._encode_into(context, self.h[b])
        return self._execute()

    def matches(self, model, lead, n: int, m: int, ratings_dtype) -> bool:
        return (self.model is model
                and self.lead == tuple(lead)
                and self.n == n and self.m == m
                and self.ratings_dtype == np.dtype(ratings_dtype)
                and self.dtype == model.decoder.weight.data.dtype)


# --------------------------------------------------------------------------- #
# Plan cache (thread-local LRU) and generation-based invalidation
# --------------------------------------------------------------------------- #
_GEN_LOCK = threading.Lock()
_GENERATION = 0
_MAX_PLANS = 8


def generation() -> int:
    """Current plan generation; plans built under older generations are stale."""
    return _GENERATION


def bump_generation() -> None:
    """Invalidate every cached plan in every thread (lazily, on next lookup).

    Called by :class:`repro.serve.ModelRegistry` on hot swaps so no stale
    plan keeps a retired model (or its workspace) alive.
    """
    global _GENERATION
    with _GEN_LOCK:
        _GENERATION += 1


class _PlanCache(threading.local):
    def __init__(self):
        self.plans: OrderedDict = OrderedDict()
        self.generation = -1


_CACHE = _PlanCache()


def clear_cache() -> None:
    """Drop this thread's cached plans (frees their workspaces)."""
    _CACHE.plans.clear()


def _workspace_bytes() -> int:
    return sum(p.workspace.nbytes for p in _CACHE.plans.values())


def cache_stats() -> dict:
    """This thread's plan-cache state plus the global hit/miss counters."""
    snapshot = _metrics.get_registry().snapshot()
    return {
        "plans": len(_CACHE.plans),
        "generation": generation(),
        "workspace_bytes": _workspace_bytes(),
        "hits": snapshot.get("infer.plan_cache.hit", {}).get("value", 0),
        "misses": snapshot.get("infer.plan_cache.miss", {}).get("value", 0),
    }


def get_plan(model, lead, n: int, m: int, ratings_dtype) -> InferencePlan:
    """Fetch or build the plan for (model, lead, n, m); LRU-cached per thread."""
    cache = _CACHE
    gen = generation()
    if cache.generation != gen:
        cache.plans.clear()
        cache.generation = gen
    key = (id(model), tuple(lead), n, m)
    registry = _metrics.get_registry()
    plan = cache.plans.get(key)
    if plan is not None and plan.matches(model, lead, n, m, ratings_dtype):
        cache.plans.move_to_end(key)
        registry.counter("infer.plan_cache.hit").inc()
        return plan
    registry.counter("infer.plan_cache.miss").inc()
    with _spans.span("infer/plan_build"):
        plan = InferencePlan(model, lead, n, m, ratings_dtype)
    cache.plans[key] = plan
    cache.plans.move_to_end(key)
    while len(cache.plans) > _MAX_PLANS:
        cache.plans.popitem(last=False)
    registry.gauge("infer.workspace_bytes").set(_workspace_bytes())
    return plan


def engine_supported(model) -> bool:
    """Whether the engine can replace the Tensor forward for ``model``.

    False (→ callers use the Tensor path) when the decomposed reference
    kernels are active, when any attention layer is capturing weights, or
    when the model does not expose the HIRE encoder/blocks/decoder
    structure the planner walks.
    """
    if not F.fused_kernels_enabled():
        return False
    if not all(hasattr(model, name)
               for name in ("encoder", "blocks", "decoder", "alpha")):
        return False
    enc = model.encoder
    if not all(hasattr(enc, name)
               for name in ("user_transforms", "item_transforms",
                            "rating_transform", "mask_token")):
        return False
    for block in model.blocks:
        for name in ("user_attention", "item_attention", "attr_attention"):
            layer = getattr(block, name, None)
            if layer is not None and layer.capture_attention:
                return False
    return True


def forward_inference(model, context) -> np.ndarray:
    """Run one context through the compiled plan; ``(n, m)`` ratings.

    The result is a view into the plan's workspace — valid until the next
    engine call on this thread.  Copy it to retain it.
    """
    plan = get_plan(model, (), context.n, context.m, context.ratings.dtype)
    with _spans.span("infer/forward"):
        return plan.run(context)


def forward_inference_many(model, contexts) -> np.ndarray:
    """Batched engine forward over same-shape contexts; ``(B, n, m)``.

    Bit-identical per slice to :func:`forward_inference` on each context,
    matching the ``forward_many`` contract of the Tensor path.  The result
    is workspace-backed (see :func:`forward_inference`).
    """
    if not contexts:
        raise ValueError("forward_inference_many needs at least one context")
    first = contexts[0]
    plan = get_plan(model, (len(contexts),), first.n, first.m,
                    first.ratings.dtype)
    with _spans.span("infer/forward"):
        return plan.run_many(contexts)
