"""Weight initialisers for the ``repro.nn`` substrate.

All initialisers take an explicit ``numpy.random.Generator`` so that every
model in the library is reproducible from a single integer seed.  Random
draws always happen in float64 (so a seed yields the same weights under any
dtype policy) and are then cast to the active default dtype.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import get_default_dtype

__all__ = ["xavier_uniform", "kaiming_uniform", "normal", "zeros", "ones"]


def xavier_uniform(shape: tuple[int, ...], rng: np.random.Generator, gain: float = 1.0) -> np.ndarray:
    """Glorot/Xavier uniform: U(-a, a) with a = gain * sqrt(6 / (fan_in + fan_out))."""
    fan_in, fan_out = _fans(shape)
    bound = gain * math.sqrt(6.0 / (fan_in + fan_out))
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def kaiming_uniform(shape: tuple[int, ...], rng: np.random.Generator) -> np.ndarray:
    """He uniform for ReLU networks: U(-a, a) with a = sqrt(6 / fan_in)."""
    fan_in, _ = _fans(shape)
    bound = math.sqrt(6.0 / fan_in)
    return rng.uniform(-bound, bound, size=shape).astype(get_default_dtype(), copy=False)


def normal(shape: tuple[int, ...], rng: np.random.Generator, std: float = 0.02) -> np.ndarray:
    return rng.normal(0.0, std, size=shape).astype(get_default_dtype(), copy=False)


def zeros(shape: tuple[int, ...]) -> np.ndarray:
    return np.zeros(shape, dtype=get_default_dtype())


def ones(shape: tuple[int, ...]) -> np.ndarray:
    return np.ones(shape, dtype=get_default_dtype())


def _fans(shape: tuple[int, ...]) -> tuple[int, int]:
    if len(shape) == 0:
        return 1, 1
    if len(shape) == 1:
        return shape[0], shape[0]
    fan_in = int(np.prod(shape[:-1]))
    fan_out = shape[-1]
    return fan_in, fan_out
