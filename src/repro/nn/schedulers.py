"""Learning-rate schedulers.

The paper uses a *flat-then-anneal* schedule: the learning rate stays at the
base value for the first 70 % of training steps, then follows a cosine decay
to zero by the final step (§VI-A).
"""

from __future__ import annotations

import math

__all__ = ["LRScheduler", "ConstantLR", "FlatThenAnnealLR"]


class LRScheduler:
    """Base scheduler: mutate ``optimizer.lr`` on each :meth:`step`."""

    def __init__(self, optimizer, total_steps: int):
        if total_steps < 1:
            raise ValueError(f"total_steps must be >= 1, got {total_steps}")
        self.optimizer = optimizer
        self.total_steps = total_steps
        self.base_lr = optimizer.lr
        self.current_step = 0

    def lr_at(self, step: int) -> float:
        raise NotImplementedError

    def step(self) -> float:
        """Advance one step and set the optimiser's learning rate."""
        self.current_step = min(self.current_step + 1, self.total_steps)
        lr = self.lr_at(self.current_step)
        self.optimizer.lr = lr
        return lr


class ConstantLR(LRScheduler):
    def lr_at(self, step: int) -> float:
        return self.base_lr


class FlatThenAnnealLR(LRScheduler):
    """Flat at ``base_lr`` for ``flat_fraction`` of steps, then cosine to 0."""

    def __init__(self, optimizer, total_steps: int, flat_fraction: float = 0.7):
        super().__init__(optimizer, total_steps)
        if not 0.0 <= flat_fraction <= 1.0:
            raise ValueError(f"flat_fraction must be in [0, 1], got {flat_fraction}")
        self.flat_steps = int(round(flat_fraction * total_steps))

    def lr_at(self, step: int) -> float:
        if step <= self.flat_steps:
            return self.base_lr
        anneal_steps = max(self.total_steps - self.flat_steps, 1)
        progress = (step - self.flat_steps) / anneal_steps
        return self.base_lr * 0.5 * (1.0 + math.cos(math.pi * min(progress, 1.0)))
