"""Core neural network layers built on the autograd substrate."""

from __future__ import annotations

import numpy as np

from . import functional as F
from . import init
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["Linear", "Embedding", "LayerNorm", "Dropout", "ReLU", "GELU", "Sigmoid", "Tanh", "MLP"]


class Linear(Module):
    """Affine map ``y = x W + b`` applied to the last axis."""

    def __init__(self, in_features: int, out_features: int, rng: np.random.Generator,
                 bias: bool = True):
        super().__init__()
        self.in_features = in_features
        self.out_features = out_features
        self.weight = Parameter(init.xavier_uniform((in_features, out_features), rng))
        self.bias = Parameter(init.zeros((out_features,))) if bias else None

    def forward(self, x: Tensor) -> Tensor:
        return F.linear(x, self.weight, self.bias)

    def __repr__(self) -> str:
        return f"Linear({self.in_features}, {self.out_features})"


class Embedding(Module):
    """Lookup table mapping integer ids to dense vectors."""

    def __init__(self, num_embeddings: int, embedding_dim: int, rng: np.random.Generator,
                 std: float = 0.05):
        super().__init__()
        self.num_embeddings = num_embeddings
        self.embedding_dim = embedding_dim
        self.weight = Parameter(init.normal((num_embeddings, embedding_dim), rng, std=std))

    def forward(self, indices) -> Tensor:
        indices = np.asarray(indices, dtype=np.int64)
        if indices.size:
            low, high = int(indices.min()), int(indices.max())
            if low < 0 or high >= self.num_embeddings:
                raise IndexError(
                    f"embedding index out of range [0, {self.num_embeddings}) "
                    f"(got min={low}, max={high})"
                )
        return F.embedding_lookup(self.weight, indices)

    def __repr__(self) -> str:
        return f"Embedding({self.num_embeddings}, {self.embedding_dim})"


class LayerNorm(Module):
    """Layer normalisation over the last axis with learnable scale and shift."""

    def __init__(self, normalized_shape: int, eps: float = 1e-5):
        super().__init__()
        self.eps = eps
        self.gamma = Parameter(init.ones((normalized_shape,)))
        self.beta = Parameter(init.zeros((normalized_shape,)))

    def forward(self, x: Tensor) -> Tensor:
        return F.layer_norm(x, self.gamma, self.beta, self.eps)


class Dropout(Module):
    """Inverted dropout; a pass-through in eval mode."""

    def __init__(self, rate: float, rng: np.random.Generator):
        super().__init__()
        if not 0.0 <= rate < 1.0:
            raise ValueError(f"dropout rate must be in [0, 1), got {rate}")
        self.rate = rate
        self.rng = rng

    def forward(self, x: Tensor) -> Tensor:
        return F.dropout(x, self.rate, self.rng, self.training)


class ReLU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.relu()


class GELU(Module):
    def forward(self, x: Tensor) -> Tensor:
        return F.gelu(x)


class Sigmoid(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.sigmoid()


class Tanh(Module):
    def forward(self, x: Tensor) -> Tensor:
        return x.tanh()


class MLP(Module):
    """Multi-layer perceptron with a configurable activation between layers."""

    def __init__(self, dims: list[int], rng: np.random.Generator,
                 activation: str = "relu", dropout: float = 0.0,
                 final_activation: bool = False):
        super().__init__()
        if len(dims) < 2:
            raise ValueError("MLP needs at least input and output dims")
        activations = {"relu": ReLU, "gelu": GELU, "sigmoid": Sigmoid, "tanh": Tanh}
        if activation not in activations:
            raise ValueError(f"unknown activation {activation!r}")
        from .module import ModuleList

        self.blocks = ModuleList()
        for i in range(len(dims) - 1):
            self.blocks.append(Linear(dims[i], dims[i + 1], rng))
            is_last = i == len(dims) - 2
            if not is_last or final_activation:
                self.blocks.append(activations[activation]())
                if dropout > 0.0:
                    self.blocks.append(Dropout(dropout, rng))

    def forward(self, x: Tensor) -> Tensor:
        for block in self.blocks:
            x = block(x)
        return x
