"""``repro.nn`` — a from-scratch neural network substrate on numpy.

This package replaces PyTorch for the purposes of this reproduction: it
provides reverse-mode autograd (:mod:`repro.nn.tensor`), modules and layers
(:mod:`repro.nn.module`, :mod:`repro.nn.layers`), multi-head self-attention
(:mod:`repro.nn.attention`), and the paper's training stack — LAMB,
Lookahead, flat-then-anneal cosine schedule, gradient clipping
(:mod:`repro.nn.optim`, :mod:`repro.nn.schedulers`, :mod:`repro.nn.clip`).
"""

from . import functional, init
from . import inference
from .attention import MultiHeadSelfAttention
from .clip import clip_grad_norm
from .layers import (
    GELU,
    MLP,
    Dropout,
    Embedding,
    LayerNorm,
    Linear,
    ReLU,
    Sigmoid,
    Tanh,
)
from .module import Module, ModuleList, Parameter, Sequential
from .optim import LAMB, SGD, Adam, Lookahead, Optimizer
from .schedulers import ConstantLR, FlatThenAnnealLR, LRScheduler
from .serialization import load_checkpoint, load_module, save_checkpoint, save_module
from .tensor import (
    Tensor,
    dtype_policy,
    get_default_dtype,
    is_grad_enabled,
    no_grad,
    set_default_dtype,
)

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "get_default_dtype",
    "set_default_dtype",
    "dtype_policy",
    "functional",
    "inference",
    "init",
    "Module",
    "ModuleList",
    "Parameter",
    "Sequential",
    "Linear",
    "Embedding",
    "LayerNorm",
    "Dropout",
    "ReLU",
    "GELU",
    "Sigmoid",
    "Tanh",
    "MLP",
    "MultiHeadSelfAttention",
    "Optimizer",
    "SGD",
    "Adam",
    "LAMB",
    "Lookahead",
    "LRScheduler",
    "ConstantLR",
    "FlatThenAnnealLR",
    "clip_grad_norm",
    "save_checkpoint",
    "load_checkpoint",
    "save_module",
    "load_module",
]
