"""Optimisers: SGD, Adam, LAMB, and the Lookahead wrapper.

The paper trains HIRE with a LAMB optimiser (β = (0.9, 0.999), ε = 1e-6)
wrapped in Lookahead (α = 0.5, k = 6) — both are implemented here exactly,
alongside plain SGD and Adam used by the baselines.
"""

from __future__ import annotations

import numpy as np

from .module import Parameter

__all__ = ["Optimizer", "SGD", "Adam", "LAMB", "Lookahead"]


class Optimizer:
    """Base optimiser holding a parameter list and a mutable learning rate.

    Moment/velocity state is allocated with ``np.zeros_like`` on each
    parameter, so it follows the parameter dtype — under the float32 policy
    the whole optimiser state is float32.
    """

    def __init__(self, parameters, lr: float):
        self.parameters: list[Parameter] = list(parameters)
        if not self.parameters:
            raise ValueError("optimizer received no parameters")
        if lr <= 0:
            raise ValueError(f"learning rate must be positive, got {lr}")
        self.lr = lr

    def zero_grad(self, set_to_zero: bool = False) -> None:
        """Clear gradients; with ``set_to_zero``, zero owned buffers in place
        instead of dropping them so dense grads are not reallocated each step."""
        for p in self.parameters:
            p.zero_grad(set_to_zero=set_to_zero)

    @staticmethod
    def _grad_of(p: Parameter) -> np.ndarray:
        # Guard against mixed-dtype graphs handing a float64 gradient to a
        # float32 parameter: in-place moment updates would raise otherwise.
        grad = p.grad
        if grad.dtype != p.data.dtype:
            grad = grad.astype(p.data.dtype)
        return grad

    def step(self) -> None:
        raise NotImplementedError


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum and weight decay."""

    def __init__(self, parameters, lr: float, momentum: float = 0.0, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        for p, vel in zip(self.parameters, self._velocity):
            if p.grad is None:
                continue
            grad = self._grad_of(p)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            if self.momentum:
                vel *= self.momentum
                vel += grad
                grad = vel
            p.data -= self.lr * grad


class Adam(Optimizer):
    """Adam with bias correction."""

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-8, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = self._grad_of(p)
            if self.weight_decay:
                grad = grad + self.weight_decay * p.data
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            p.data -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class LAMB(Optimizer):
    """Layer-wise adaptive moments (You et al., 2019) — the paper's optimiser.

    Performs the Adam update direction, then rescales it per parameter tensor
    by the trust ratio ``||w|| / ||update||`` so that deep attention stacks
    train stably with large batches.
    """

    def __init__(self, parameters, lr: float = 1e-3, betas: tuple[float, float] = (0.9, 0.999),
                 eps: float = 1e-6, weight_decay: float = 0.0):
        super().__init__(parameters, lr)
        self.beta1, self.beta2 = betas
        self.eps = eps
        self.weight_decay = weight_decay
        self._step = 0
        self._m = [np.zeros_like(p.data) for p in self.parameters]
        self._v = [np.zeros_like(p.data) for p in self.parameters]

    def step(self) -> None:
        self._step += 1
        bias1 = 1.0 - self.beta1**self._step
        bias2 = 1.0 - self.beta2**self._step
        for p, m, v in zip(self.parameters, self._m, self._v):
            if p.grad is None:
                continue
            grad = self._grad_of(p)
            m *= self.beta1
            m += (1.0 - self.beta1) * grad
            v *= self.beta2
            v += (1.0 - self.beta2) * grad * grad
            update = (m / bias1) / (np.sqrt(v / bias2) + self.eps)
            if self.weight_decay:
                update = update + self.weight_decay * p.data
            weight_norm = np.linalg.norm(p.data)
            update_norm = np.linalg.norm(update)
            if weight_norm > 0 and update_norm > 0:
                trust_ratio = weight_norm / update_norm
            else:
                trust_ratio = 1.0
            p.data -= self.lr * trust_ratio * update


class Lookahead:
    """Lookahead wrapper (Zhang et al., 2019): k fast steps, one slow update.

    Maintains slow weights φ; every ``k`` inner-optimiser steps it moves them
    toward the fast weights θ by ``φ ← φ + α (θ − φ)`` and resets θ to φ.
    """

    def __init__(self, inner: Optimizer, alpha: float = 0.5, k: int = 6):
        if not 0.0 < alpha <= 1.0:
            raise ValueError(f"alpha must be in (0, 1], got {alpha}")
        if k < 1:
            raise ValueError(f"k must be >= 1, got {k}")
        self.inner = inner
        self.alpha = alpha
        self.k = k
        self._counter = 0
        self._slow = [p.data.copy() for p in inner.parameters]

    @property
    def parameters(self):
        return self.inner.parameters

    @property
    def lr(self) -> float:
        return self.inner.lr

    @lr.setter
    def lr(self, value: float) -> None:
        self.inner.lr = value

    def zero_grad(self, set_to_zero: bool = False) -> None:
        self.inner.zero_grad(set_to_zero=set_to_zero)

    def step(self) -> None:
        self.inner.step()
        self._counter += 1
        if self._counter % self.k == 0:
            for slow, p in zip(self._slow, self.inner.parameters):
                slow += self.alpha * (p.data - slow)
                p.data = slow.copy()
