"""Module system: parameter containers with recursive traversal.

Mirrors the ``torch.nn.Module`` contract at the scale this library needs:
registration by attribute assignment, recursive ``parameters()``,
``train()`` / ``eval()`` mode flags, and a flat ``state_dict`` for
serialisation.
"""

from __future__ import annotations

from collections import OrderedDict
from typing import Iterator

import numpy as np

from .tensor import Tensor

__all__ = ["Parameter", "Module", "Sequential", "ModuleList"]


class Parameter(Tensor):
    """A tensor flagged as trainable model state."""

    def __init__(self, data):
        super().__init__(data, requires_grad=True)
        # Parameters must stay trainable even if created under no_grad.
        self.requires_grad = True


class Module:
    """Base class for all neural network modules."""

    def __init__(self):
        object.__setattr__(self, "_parameters", OrderedDict())
        object.__setattr__(self, "_modules", OrderedDict())
        object.__setattr__(self, "training", True)

    def __setattr__(self, name, value):
        if isinstance(value, Parameter):
            self._parameters[name] = value
        elif isinstance(value, Module):
            self._modules[name] = value
        object.__setattr__(self, name, value)

    def forward(self, *args, **kwargs):
        raise NotImplementedError

    def __call__(self, *args, **kwargs):
        return self.forward(*args, **kwargs)

    # ------------------------------------------------------------------ #
    # Traversal
    # ------------------------------------------------------------------ #
    def parameters(self) -> Iterator[Parameter]:
        """Yield all parameters in this module and its submodules."""
        for _, p in self.named_parameters():
            yield p

    def named_parameters(self, prefix: str = "") -> Iterator[tuple[str, Parameter]]:
        for name, param in self._parameters.items():
            yield prefix + name, param
        for name, module in self._modules.items():
            yield from module.named_parameters(prefix + name + ".")

    def modules(self) -> Iterator["Module"]:
        yield self
        for child in self._modules.values():
            yield from child.modules()

    def named_modules(self, prefix: str = "") -> Iterator[tuple[str, "Module"]]:
        yield prefix, self
        for name, child in self._modules.items():
            yield from child.named_modules(prefix + name + ".")

    def num_parameters(self) -> int:
        return sum(p.size for p in self.parameters())

    # ------------------------------------------------------------------ #
    # Modes and gradients
    # ------------------------------------------------------------------ #
    def train(self, mode: bool = True) -> "Module":
        for module in self.modules():
            object.__setattr__(module, "training", mode)
        return self

    def eval(self) -> "Module":
        return self.train(False)

    def zero_grad(self, set_to_zero: bool = False) -> None:
        for p in self.parameters():
            p.zero_grad(set_to_zero=set_to_zero)

    # ------------------------------------------------------------------ #
    # Serialisation
    # ------------------------------------------------------------------ #
    def state_dict(self) -> dict[str, np.ndarray]:
        return {name: p.data.copy() for name, p in self.named_parameters()}

    def _upgrade_state_dict(self, prefix: str, state: dict) -> None:
        """Hook: rewrite legacy checkpoint keys under ``prefix`` in place.

        Called for every submodule before :meth:`load_state_dict` matches
        keys; e.g. attention packs old per-projection weights into ``w_qkv``.
        """

    def load_state_dict(self, state: dict[str, np.ndarray]) -> None:
        state = dict(state)
        for prefix, module in self.named_modules():
            module._upgrade_state_dict(prefix, state)
        own = dict(self.named_parameters())
        missing = set(own) - set(state)
        unexpected = set(state) - set(own)
        if missing or unexpected:
            raise KeyError(f"state mismatch: missing={sorted(missing)}, unexpected={sorted(unexpected)}")
        for name, param in own.items():
            # Cast to the parameter's dtype so checkpoints follow the
            # module's dtype policy rather than forcing float64.
            value = np.asarray(state[name], dtype=param.data.dtype)
            if value.shape != param.data.shape:
                raise ValueError(f"shape mismatch for {name}: {value.shape} vs {param.data.shape}")
            param.data = value.copy()


class Sequential(Module):
    """Chain modules; each is called on the previous module's output."""

    def __init__(self, *layers: Module):
        super().__init__()
        self.layers = ModuleList(layers)

    def forward(self, x):
        for layer in self.layers:
            x = layer(x)
        return x

    def __len__(self) -> int:
        return len(self.layers)

    def __getitem__(self, index: int) -> Module:
        return self.layers[index]


class ModuleList(Module):
    """A list of submodules that registers its children for traversal."""

    def __init__(self, modules=()):
        super().__init__()
        self._items: list[Module] = []
        for module in modules:
            self.append(module)

    def append(self, module: Module) -> "ModuleList":
        index = len(self._items)
        self._items.append(module)
        self._modules[str(index)] = module
        return self

    def __iter__(self) -> Iterator[Module]:
        return iter(self._items)

    def __len__(self) -> int:
        return len(self._items)

    def __getitem__(self, index: int) -> Module:
        return self._items[index]
