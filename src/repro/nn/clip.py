"""Gradient clipping utilities."""

from __future__ import annotations

import math

__all__ = ["clip_grad_norm"]


def clip_grad_norm(parameters, max_norm: float) -> float:
    """Scale all gradients so their global L2 norm is at most ``max_norm``.

    Returns the pre-clip global norm, matching the PyTorch convention.  The
    paper clips at 1.0 (§VI-A).
    """
    if max_norm <= 0:
        raise ValueError(f"max_norm must be positive, got {max_norm}")
    params = [p for p in parameters if p.grad is not None]
    total_sq = 0.0
    for p in params:
        total_sq += float((p.grad * p.grad).sum())
    total_norm = math.sqrt(total_sq)
    if total_norm > max_norm:
        scale = max_norm / (total_norm + 1e-12)
        for p in params:
            p.grad = p.grad * scale
    return total_norm
