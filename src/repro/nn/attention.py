"""Multi-head self-attention (Eq. 1-4 of the paper).

The layer operates on inputs of shape ``(..., t, d)``: attention is computed
over the second-to-last axis (the token axis) independently for every leading
batch axis.  This batching is exactly what HIM exploits — MBU runs one
parameter-sharing MHSA over the user axis for each item column, MBI over the
item axis for each user row, and MBA over the attribute axis for each
(user, item) cell.

MHSA is permutation-equivariant over the token axis (Eq. 5), the inductive
bias that makes HIRE order-independent over users and items (Property 5.1);
``tests/nn/test_attention.py`` checks this exactly.
"""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from .layers import Linear
from .module import Module
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with optional attention-weight capture.

    Parameters
    ----------
    embed_dim:
        Dimension ``d`` of each input token; also the output dimension.
    num_heads:
        Number of parallel attention heads ``l``; must divide ``embed_dim``.
    rng:
        Generator used to initialise the four projection matrices.

    Attributes
    ----------
    last_attention:
        Numpy array of shape ``(..., num_heads, t, t)`` holding the attention
        weights from the most recent forward pass when ``capture_attention``
        was set.  Used by the Fig. 9 case study.
    """

    def __init__(self, embed_dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        self.w_query = Linear(embed_dim, embed_dim, rng, bias=False)
        self.w_key = Linear(embed_dim, embed_dim, rng, bias=False)
        self.w_value = Linear(embed_dim, embed_dim, rng, bias=False)
        self.w_output = Linear(embed_dim, embed_dim, rng, bias=False)
        self.capture_attention = False
        self.last_attention: np.ndarray | None = None

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.embed_dim:
            raise ValueError(f"expected last dim {self.embed_dim}, got {x.shape[-1]}")
        t = x.shape[-2]
        lead = x.shape[:-2]

        def split_heads(proj: Tensor) -> Tensor:
            # (..., t, d) -> (..., heads, t, head_dim)
            reshaped = proj.reshape(*lead, t, self.num_heads, self.head_dim)
            return reshaped.swapaxes(-3, -2)

        q = split_heads(self.w_query(x))
        k = split_heads(self.w_key(x))
        v = split_heads(self.w_value(x))

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        attn = F.softmax(scores, axis=-1)
        if self.capture_attention:
            self.last_attention = attn.data.copy()

        fused = attn @ v  # (..., heads, t, head_dim)
        merged = fused.swapaxes(-3, -2).reshape(*lead, t, self.embed_dim)
        return self.w_output(merged)
