"""Multi-head self-attention (Eq. 1-4 of the paper).

The layer operates on inputs of shape ``(..., t, d)``: attention is computed
over the second-to-last axis (the token axis) independently for every leading
batch axis.  This batching is exactly what HIM exploits — MBU runs one
parameter-sharing MHSA over the user axis for each item column, MBI over the
item axis for each user row, and MBA over the attribute axis for each
(user, item) cell.

MHSA is permutation-equivariant over the token axis (Eq. 5), the inductive
bias that makes HIRE order-independent over users and items (Property 5.1);
``tests/nn/test_attention.py`` checks this exactly.

The Q/K/V projections are packed into a single ``(d, 3d)`` weight so the
projection runs as one GEMM; the attention core is the fused
:func:`~repro.nn.functional.multi_head_attention_qkv` node.  Checkpoints
written by the older three-matrix layout load transparently — the packed
weight is the exact column concatenation ``[W_q | W_k | W_v]``, so upgraded
checkpoints produce bitwise-identical forward output.
"""

from __future__ import annotations

import math

import numpy as np

from . import functional as F
from . import init
from .layers import Linear
from .module import Module, Parameter
from .tensor import Tensor

__all__ = ["MultiHeadSelfAttention"]


class _ProjectionView:
    """Read-only view of one third of the packed QKV weight.

    Kept so code written against the historical ``w_query`` / ``w_key`` /
    ``w_value`` Linear sub-modules (``layer.w_query.weight.data/.grad``)
    keeps working on the packed layout.
    """

    __slots__ = ("_param", "_sl")

    def __init__(self, param: Parameter, sl: slice):
        self._param = param
        self._sl = sl

    @property
    def weight(self) -> "_ProjectionView":
        return self

    @property
    def data(self) -> np.ndarray:
        return self._param.data[:, self._sl]

    @property
    def grad(self) -> np.ndarray | None:
        grad = self._param.grad
        return None if grad is None else grad[:, self._sl]


class MultiHeadSelfAttention(Module):
    """Multi-head self-attention with optional attention-weight capture.

    Parameters
    ----------
    embed_dim:
        Dimension ``d`` of each input token; also the output dimension.
    num_heads:
        Number of parallel attention heads ``l``; must divide ``embed_dim``.
    rng:
        Generator used to initialise the projection matrices.

    Attributes
    ----------
    last_attention:
        Numpy array of shape ``(..., num_heads, t, t)`` holding the attention
        weights from the most recent forward pass when ``capture_attention``
        was set.  Used by the Fig. 9 case study.
    """

    def __init__(self, embed_dim: int, num_heads: int, rng: np.random.Generator):
        super().__init__()
        if embed_dim % num_heads != 0:
            raise ValueError(f"embed_dim {embed_dim} not divisible by num_heads {num_heads}")
        self.embed_dim = embed_dim
        self.num_heads = num_heads
        self.head_dim = embed_dim // num_heads
        # Columns [W_q | W_k | W_v]; each block initialised exactly like the
        # historical standalone (d, d) Linear so seeds reproduce per-block
        # fan-in/fan-out statistics.
        self.w_qkv = Parameter(np.concatenate(
            [init.xavier_uniform((embed_dim, embed_dim), rng) for _ in range(3)],
            axis=1,
        ))
        self.w_output = Linear(embed_dim, embed_dim, rng, bias=False)
        self.capture_attention = False
        self.last_attention: np.ndarray | None = None

    # Legacy accessors for the pre-packed three-matrix layout.
    @property
    def w_query(self) -> _ProjectionView:
        return _ProjectionView(self.w_qkv, slice(0, self.embed_dim))

    @property
    def w_key(self) -> _ProjectionView:
        return _ProjectionView(self.w_qkv, slice(self.embed_dim, 2 * self.embed_dim))

    @property
    def w_value(self) -> _ProjectionView:
        return _ProjectionView(self.w_qkv, slice(2 * self.embed_dim, 3 * self.embed_dim))

    def _upgrade_state_dict(self, prefix: str, state: dict) -> None:
        """Pack an old three-matrix checkpoint into the ``w_qkv`` layout."""
        old = [prefix + name for name in
               ("w_query.weight", "w_key.weight", "w_value.weight")]
        if prefix + "w_qkv" not in state and all(key in state for key in old):
            state[prefix + "w_qkv"] = np.concatenate(
                [np.asarray(state.pop(key)) for key in old], axis=1)

    def forward(self, x: Tensor) -> Tensor:
        if x.shape[-1] != self.embed_dim:
            raise ValueError(f"expected last dim {self.embed_dim}, got {x.shape[-1]}")
        if F.fused_kernels_enabled():
            qkv = F.linear(x, self.w_qkv)
            if self.capture_attention:
                fused, attn = F.multi_head_attention_qkv(
                    qkv, self.num_heads, need_weights=True)
                self.last_attention = attn
            else:
                fused = F.multi_head_attention_qkv(qkv, self.num_heads)
            return self.w_output(fused)
        return self._forward_reference(x)

    def _forward_reference(self, x: Tensor) -> Tensor:
        """Decomposed path mirroring the pre-fusion implementation: three
        separate QKV matmuls and a many-node attention graph."""
        t = x.shape[-2]
        lead = x.shape[:-2]
        d = self.embed_dim

        def split_heads(proj: Tensor) -> Tensor:
            # (..., t, d) -> (..., heads, t, head_dim)
            reshaped = proj.reshape(*lead, t, self.num_heads, self.head_dim)
            return reshaped.swapaxes(-3, -2)

        q = split_heads(x @ self.w_qkv[:, :d])
        k = split_heads(x @ self.w_qkv[:, d:2 * d])
        v = split_heads(x @ self.w_qkv[:, 2 * d:])

        scores = (q @ k.swapaxes(-1, -2)) * (1.0 / math.sqrt(self.head_dim))
        attn = F.softmax(scores, axis=-1)
        if self.capture_attention:
            self.last_attention = attn.data.copy()

        fused = attn @ v  # (..., heads, t, head_dim)
        merged = fused.swapaxes(-3, -2).reshape(*lead, t, self.embed_dim)
        return self.w_output(merged)
