"""Functional operations over :class:`repro.nn.Tensor`.

These free functions complement the methods on ``Tensor`` with multi-input
operations (stack, concatenate), numerically stable softmax / log-softmax,
activation functions, and the loss functions used by the paper (MSE on masked
ratings) and the baselines (binary cross-entropy, etc.).
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import Tensor

__all__ = [
    "stack",
    "concatenate",
    "softmax",
    "log_softmax",
    "relu",
    "gelu",
    "sigmoid",
    "tanh",
    "mse_loss",
    "masked_mse_loss",
    "bce_loss",
    "l2_penalty",
    "dropout",
    "embedding_lookup",
    "pad_to",
]


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors of identical shape along a new axis."""
    datas = [t.data for t in tensors]
    out_data = np.stack(datas, axis=axis)

    def backward(g):
        slices = np.moveaxis(g, axis, 0)
        return tuple((t, slices[i]) for i, t in enumerate(tensors))

    return Tensor._from_op(out_data, tuple(tensors), backward)


def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for i, t in enumerate(tensors):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append((t, g[tuple(index)]))
        return tuple(grads)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * probs).sum(axis=axis, keepdims=True)
        return ((x, probs * (g - dot)),)

    return Tensor._from_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    probs = np.exp(out_data)

    def backward(g):
        return ((x, g - probs * g.sum(axis=axis, keepdims=True)),)

    return Tensor._from_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation)."""
    inner = _GELU_C * (x + 0.044715 * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    if not isinstance(target, Tensor):
        target = Tensor(target)
    diff = prediction - target
    return (diff * diff).mean()


def masked_mse_loss(prediction: Tensor, target: np.ndarray, mask: np.ndarray) -> Tensor:
    """MSE over entries where ``mask`` is True (Eq. 17 of the paper).

    ``mask`` marks the query ratings Q whose ground truth was hidden from the
    model; the loss averages squared error over exactly those cells.
    """
    mask = np.asarray(mask, dtype=np.float64)
    count = mask.sum()
    if count == 0:
        raise ValueError("masked_mse_loss requires at least one masked entry")
    diff = prediction - Tensor(target)
    return (diff * diff * Tensor(mask)).sum() * (1.0 / count)


def bce_loss(prediction: Tensor, target: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1)."""
    target_t = Tensor(np.asarray(target, dtype=np.float64))
    clipped = prediction.clip(eps, 1.0 - eps)
    losses = -(target_t * clipped.log() + (1.0 - target_t) * (1.0 - clipped).log())
    return losses.mean()


def l2_penalty(parameters) -> Tensor:
    """Sum of squared parameter values, for weight decay done as a loss term."""
    total = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``."""
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(np.float64) / keep
    return x * Tensor(mask)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding matrix with scatter-add backward."""
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(g):
        full = np.zeros_like(table.data)
        np.add.at(full, indices.reshape(-1), g.reshape(-1, table.data.shape[-1]))
        return ((table, full),)

    return Tensor._from_op(out_data, (table,), backward)


def pad_to(x: np.ndarray, length: int, value: float = 0.0) -> np.ndarray:
    """Pad a 1-D array to ``length`` with ``value`` (no autograd; data prep)."""
    if len(x) >= length:
        return x[:length]
    out = np.full(length, value, dtype=x.dtype)
    out[: len(x)] = x
    return out
