"""Functional operations over :class:`repro.nn.Tensor`.

These free functions complement the methods on ``Tensor`` with multi-input
operations (stack, concatenate), numerically stable softmax / log-softmax,
activation functions, and the loss functions used by the paper (MSE on masked
ratings) and the baselines (binary cross-entropy, etc.).

The hot ops of the HIRE forward/backward — :func:`layer_norm`, :func:`gelu`,
:func:`linear`, and the attention cores :func:`scaled_dot_product_attention`
/ :func:`multi_head_attention_qkv` — each run as a *single* autograd node
with an analytic backward, instead of the many small nodes their unfused
compositions would record.  :func:`set_fused_kernels` (or the
:class:`fused_kernels` context manager) switches the substrate back to the
decomposed reference path, which exists for equivalence testing and as the
honest baseline for ``benchmarks/bench_substrate_micro.py``.
"""

from __future__ import annotations

import math

import numpy as np

from .tensor import SparseRowGrad, Tensor

__all__ = [
    "stack",
    "concatenate",
    "softmax",
    "log_softmax",
    "relu",
    "gelu",
    "gelu_reference",
    "sigmoid",
    "tanh",
    "layer_norm",
    "layer_norm_reference",
    "linear",
    "scaled_dot_product_attention",
    "multi_head_attention_qkv",
    "mse_loss",
    "masked_mse_loss",
    "bce_loss",
    "l2_penalty",
    "dropout",
    "embedding_lookup",
    "scatter_rows",
    "pad_to",
    "set_fused_kernels",
    "fused_kernels_enabled",
    "fused_kernels",
    "linear_into",
    "layer_norm_into",
    "gelu_into",
    "mha_qkv_into",
    "sigmoid_rescale_into",
]

_FUSED = True


def set_fused_kernels(enabled: bool) -> None:
    """Globally enable/disable the single-node fused kernels."""
    global _FUSED
    _FUSED = bool(enabled)


def fused_kernels_enabled() -> bool:
    return _FUSED


class fused_kernels:
    """Context manager scoping :func:`set_fused_kernels` to a block."""

    def __init__(self, enabled: bool):
        self._enabled = enabled

    def __enter__(self):
        self._prev = _FUSED
        set_fused_kernels(self._enabled)
        return self

    def __exit__(self, *exc):
        set_fused_kernels(self._prev)
        return False


def stack(tensors: list[Tensor], axis: int = 0) -> Tensor:
    """Stack tensors of identical shape along a new axis."""
    datas = [t.data for t in tensors]
    out_data = np.stack(datas, axis=axis)

    def backward(g):
        slices = np.moveaxis(g, axis, 0)
        return tuple((t, slices[i]) for i, t in enumerate(tensors))

    return Tensor._from_op(out_data, tuple(tensors), backward)


def concatenate(tensors: list[Tensor], axis: int = -1) -> Tensor:
    """Concatenate tensors along an existing axis."""
    datas = [t.data for t in tensors]
    out_data = np.concatenate(datas, axis=axis)
    sizes = [d.shape[axis] for d in datas]
    offsets = np.cumsum([0] + sizes)

    def backward(g):
        grads = []
        for i, t in enumerate(tensors):
            index = [slice(None)] * g.ndim
            index[axis] = slice(offsets[i], offsets[i + 1])
            grads.append((t, g[tuple(index)]))
        return tuple(grads)

    return Tensor._from_op(out_data, tuple(tensors), backward)


def softmax(x: Tensor, axis: int = -1) -> Tensor:
    """Numerically stable softmax along ``axis`` with a fused backward."""
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    exps = np.exp(shifted)
    probs = exps / exps.sum(axis=axis, keepdims=True)

    def backward(g):
        dot = (g * probs).sum(axis=axis, keepdims=True)
        return ((x, probs * (g - dot)),)

    return Tensor._from_op(probs, (x,), backward)


def log_softmax(x: Tensor, axis: int = -1) -> Tensor:
    shifted = x.data - x.data.max(axis=axis, keepdims=True)
    logsumexp = np.log(np.exp(shifted).sum(axis=axis, keepdims=True))
    out_data = shifted - logsumexp
    probs = np.exp(out_data)

    def backward(g):
        return ((x, g - probs * g.sum(axis=axis, keepdims=True)),)

    return Tensor._from_op(out_data, (x,), backward)


def relu(x: Tensor) -> Tensor:
    return x.relu()


def sigmoid(x: Tensor) -> Tensor:
    return x.sigmoid()


def tanh(x: Tensor) -> Tensor:
    return x.tanh()


_GELU_C = math.sqrt(2.0 / math.pi)
_GELU_A = 0.044715


def gelu_reference(x: Tensor) -> Tensor:
    """GELU (tanh approximation) composed from Tensor primitives (~8 nodes)."""
    inner = _GELU_C * (x + _GELU_A * x * x * x)
    return 0.5 * x * (1.0 + inner.tanh())


def gelu(x: Tensor) -> Tensor:
    """Gaussian error linear unit (tanh approximation), one fused node."""
    if not _FUSED:
        return gelu_reference(x)
    xd = x.data
    t = np.tanh(_GELU_C * (xd + _GELU_A * xd * xd * xd))

    def backward(g):
        dinner = _GELU_C * (1.0 + 3.0 * _GELU_A * xd * xd)
        return ((x, g * (0.5 * (1.0 + t) + 0.5 * xd * (1.0 - t * t) * dinner)),)

    return Tensor._from_op(0.5 * xd * (1.0 + t), (x,), backward)


def layer_norm_reference(x: Tensor, gamma: Tensor, beta: Tensor,
                         eps: float = 1e-5) -> Tensor:
    """Layer norm over the last axis from Tensor primitives (~7 nodes)."""
    mean = x.mean(axis=-1, keepdims=True)
    centered = x - mean
    var = (centered * centered).mean(axis=-1, keepdims=True)
    normed = centered / (var + eps).sqrt()
    return normed * gamma + beta


def layer_norm(x: Tensor, gamma: Tensor, beta: Tensor, eps: float = 1e-5) -> Tensor:
    """Layer normalisation over the last axis as one fused autograd node."""
    if not _FUSED:
        return layer_norm_reference(x, gamma, beta, eps)
    xd = x.data
    mean = xd.mean(axis=-1, keepdims=True)
    centered = xd - mean
    var = np.mean(centered * centered, axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = centered * inv_std
    out = xhat * gamma.data + beta.data

    def backward(g):
        # d gamma / d beta: _unbroadcast folds the leading axes.
        dxhat = g * gamma.data
        m1 = dxhat.mean(axis=-1, keepdims=True)
        m2 = np.mean(dxhat * xhat, axis=-1, keepdims=True)
        dx = inv_std * (dxhat - m1 - xhat * m2)
        return ((x, dx), (gamma, g * xhat), (beta, g))

    return Tensor._from_op(out, (x, gamma, beta), backward)


def linear(x: Tensor, weight: Tensor, bias: Tensor | None = None) -> Tensor:
    """``x @ weight (+ bias)`` over the last axis as one fused node.

    ``weight`` is 2-D ``(in, out)``; ``x`` may carry arbitrary leading axes.
    """
    if not _FUSED:
        out = x @ weight
        return out if bias is None else out + bias
    out_data = x.data @ weight.data
    if bias is not None:
        out_data += bias.data
    parents = (x, weight) if bias is None else (x, weight, bias)

    def backward(g):
        gx = g @ weight.data.T
        x2 = x.data.reshape(-1, x.data.shape[-1])
        g2 = g.reshape(-1, g.shape[-1])
        gw = x2.T @ g2
        if bias is None:
            return ((x, gx), (weight, gw))
        return ((x, gx), (weight, gw), (bias, g2.sum(axis=0)))

    return Tensor._from_op(out_data, parents, backward)


def _softmax_array(scores: np.ndarray) -> np.ndarray:
    scores -= scores.max(axis=-1, keepdims=True)
    np.exp(scores, out=scores)
    scores /= scores.sum(axis=-1, keepdims=True)
    return scores


def scaled_dot_product_attention(q: Tensor, k: Tensor, v: Tensor,
                                 need_weights: bool = False):
    """``softmax(q kᵀ / √d) v`` as one fused node, scale folded into ``q``.

    Inputs are ``(..., t, d)``; attention runs over the token axis ``t``
    independently for every leading batch axis.  With ``need_weights`` the
    row-stochastic attention matrix ``(..., t, t)`` is returned alongside
    (a plain ndarray, outside the graph).
    """
    scale = 1.0 / math.sqrt(q.shape[-1])
    qd, kd, vd = q.data, k.data, v.data
    probs = _softmax_array((qd * scale) @ np.swapaxes(kd, -1, -2))
    out = probs @ vd

    def backward(g):
        dv = np.swapaxes(probs, -1, -2) @ g
        dp = g @ np.swapaxes(vd, -1, -2)
        ds = probs * (dp - (dp * probs).sum(axis=-1, keepdims=True))
        dq = (ds @ kd) * scale
        dk = (np.swapaxes(ds, -1, -2) @ qd) * scale
        return ((q, dq), (k, dk), (v, dv))

    result = Tensor._from_op(out, (q, k, v), backward)
    return (result, probs) if need_weights else result


def multi_head_attention_qkv(qkv: Tensor, num_heads: int,
                             need_weights: bool = False):
    """Multi-head attention over a packed QKV projection, one fused node.

    ``qkv`` is ``(..., t, 3d)`` — the output of one ``(d, 3d)`` projection
    whose columns are ``[W_q | W_k | W_v]``.  Splits heads, attends with the
    1/√head_dim scale folded into ``q``, and re-merges heads, all inside a
    single autograd node whose backward assembles the packed ``(..., t, 3d)``
    gradient in one allocation.
    """
    *lead, t, packed = qkv.shape
    d = packed // 3
    head_dim = d // num_heads
    scale = 1.0 / math.sqrt(head_dim)
    # (..., t, 3, H, hd) -> (3, ..., H, t, hd); copies make the gemms contiguous.
    split = np.moveaxis(
        qkv.data.reshape(*lead, t, 3, num_heads, head_dim), -3, 0
    ).swapaxes(-3, -2)
    qd = np.ascontiguousarray(split[0])
    kd = np.ascontiguousarray(split[1])
    vd = np.ascontiguousarray(split[2])
    probs = _softmax_array((qd * scale) @ np.swapaxes(kd, -1, -2))
    fused = probs @ vd  # (..., H, t, hd)
    out = fused.swapaxes(-3, -2).reshape(*lead, t, d)

    def backward(g):
        gh = g.reshape(*lead, t, num_heads, head_dim).swapaxes(-3, -2)
        dv = np.swapaxes(probs, -1, -2) @ gh
        dp = gh @ np.swapaxes(vd, -1, -2)
        ds = probs * (dp - (dp * probs).sum(axis=-1, keepdims=True))
        dq = (ds @ kd) * scale
        dk = (np.swapaxes(ds, -1, -2) @ qd) * scale
        dqkv = np.empty(qkv.shape, dtype=g.dtype)
        view = dqkv.reshape(*lead, t, 3, num_heads, head_dim)
        view[..., 0, :, :] = dq.swapaxes(-3, -2)
        view[..., 1, :, :] = dk.swapaxes(-3, -2)
        view[..., 2, :, :] = dv.swapaxes(-3, -2)
        return ((qkv, dqkv),)

    result = Tensor._from_op(out, (qkv,), backward)
    return (result, probs) if need_weights else result


def mse_loss(prediction: Tensor, target: Tensor | np.ndarray) -> Tensor:
    """Mean squared error over all elements."""
    if not isinstance(target, Tensor):
        target = Tensor(np.asarray(target, dtype=prediction.data.dtype))
    diff = prediction - target
    return (diff * diff).mean()


def masked_mse_loss(prediction: Tensor, target: np.ndarray, mask: np.ndarray) -> Tensor:
    """MSE over entries where ``mask`` is True (Eq. 17 of the paper).

    ``mask`` marks the query ratings Q whose ground truth was hidden from the
    model; the loss averages squared error over exactly those cells.  The
    mask and target follow the prediction's dtype (no float64 upcasts on the
    float32 path).
    """
    dtype = prediction.data.dtype
    mask = np.asarray(mask, dtype=dtype)
    count = mask.sum()
    if count == 0:
        raise ValueError("masked_mse_loss requires at least one masked entry")
    diff = prediction - Tensor(np.asarray(target, dtype=dtype))
    return (diff * diff * Tensor(mask)).sum() * (1.0 / count)


def bce_loss(prediction: Tensor, target: np.ndarray, eps: float = 1e-9) -> Tensor:
    """Binary cross entropy on probabilities in (0, 1)."""
    target_t = Tensor(np.asarray(target, dtype=prediction.data.dtype))
    clipped = prediction.clip(eps, 1.0 - eps)
    losses = -(target_t * clipped.log() + (1.0 - target_t) * (1.0 - clipped).log())
    return losses.mean()


def l2_penalty(parameters) -> Tensor:
    """Sum of squared parameter values, for weight decay done as a loss term."""
    total = None
    for p in parameters:
        term = (p * p).sum()
        total = term if total is None else total + term
    if total is None:
        return Tensor(0.0)
    return total


def dropout(x: Tensor, rate: float, rng: np.random.Generator, training: bool) -> Tensor:
    """Inverted dropout: scales kept activations by ``1 / (1 - rate)``.

    In eval mode (or at rate 0) this is the identity — no mask is ever
    allocated.  The keep-mask follows ``x.dtype``, so the float32 path never
    pays a float64 mask multiply.
    """
    if not training or rate <= 0.0:
        return x
    keep = 1.0 - rate
    mask = (rng.random(x.shape) < keep).astype(x.data.dtype)
    mask /= keep
    return x * Tensor(mask)


def embedding_lookup(table: Tensor, indices: np.ndarray) -> Tensor:
    """Row lookup into an embedding matrix.

    The backward reduces the incoming gradient over the *unique* indices
    (sort + segmented ``np.add.reduceat``) and hands the autograd sweep a
    row-sparse :class:`~repro.nn.tensor.SparseRowGrad` — no full-size zero
    table and no elementwise ``np.add.at`` over duplicate rows.
    """
    indices = np.asarray(indices)
    out_data = table.data[indices]

    def backward(g):
        width = table.data.shape[-1]
        flat = indices.reshape(-1)
        g2 = g.reshape(-1, width)
        uniq, inv, counts = np.unique(flat, return_inverse=True, return_counts=True)
        if uniq.size == 0:
            return ((table, SparseRowGrad(uniq, g2)),)
        order = np.argsort(inv, kind="stable")
        starts = np.concatenate(([0], np.cumsum(counts[:-1])))
        sums = np.add.reduceat(g2[order], starts, axis=0)
        return ((table, SparseRowGrad(uniq, sums)),)

    return Tensor._from_op(out_data, (table,), backward)


def scatter_rows(values: Tensor, rows: np.ndarray, num_rows: int,
                 fill: Tensor | None = None) -> Tensor:
    """Scatter ``values`` (k, f) into a fresh ``(num_rows, f)`` buffer.

    Rows not listed in ``rows`` hold ``fill`` (broadcast, e.g. a learned mask
    token) or zeros.  ``rows`` must be unique — the op exists for sparse
    encodes where each destination row is written at most once, so the
    backward is a plain gather (no ``np.add.at``).
    """
    rows = np.asarray(rows)
    width = values.shape[-1]
    if fill is None:
        out_data = np.zeros((num_rows, width), dtype=values.data.dtype)
    else:
        out_data = np.empty((num_rows, width), dtype=values.data.dtype)
        out_data[...] = fill.data
    out_data[rows] = values.data
    parents = (values,) if fill is None else (values, fill)

    def backward(g):
        grads = [(values, g[rows])]
        if fill is not None:
            kept = np.ones(num_rows, dtype=bool)
            kept[rows] = False
            grads.append((fill, g[kept].sum(axis=0)))
        return tuple(grads)

    return Tensor._from_op(out_data, parents, backward)


def pad_to(x: np.ndarray, length: int, value: float = 0.0) -> np.ndarray:
    """Pad a 1-D array to ``length`` with ``value`` (no autograd; data prep)."""
    if len(x) >= length:
        return x[:length]
    out = np.full(length, value, dtype=x.dtype)
    out[: len(x)] = x
    return out


# --------------------------------------------------------------------------- #
# Graph-free inference kernels (``out=`` variants of the fused forwards)
# --------------------------------------------------------------------------- #
# These operate on raw ndarrays and write every intermediate into
# caller-provided buffers, so a warmed-up :class:`repro.nn.inference` plan
# performs zero allocations per call.  Each kernel replays the *exact* op
# sequence of its fused autograd sibling above (same associativity, same
# reduction order), which is what makes ``forward_inference`` bitwise
# identical to the ``no_grad`` Tensor path at both dtypes.


def linear_into(x: np.ndarray, weight: np.ndarray, out: np.ndarray,
                bias: np.ndarray | None = None) -> np.ndarray:
    """``x @ weight (+ bias)`` into ``out`` — mirrors :func:`linear`."""
    np.matmul(x, weight, out=out)
    if bias is not None:
        out += bias
    return out


def layer_norm_into(x: np.ndarray, gamma: np.ndarray, beta: np.ndarray,
                    out: np.ndarray, sq: np.ndarray, red: np.ndarray,
                    eps: float = 1e-5) -> np.ndarray:
    """Layer norm over the last axis into ``out`` — mirrors :func:`layer_norm`.

    ``sq`` is an x-shaped scratch, ``red`` a ``(..., 1)`` reduction buffer.
    """
    np.mean(x, axis=-1, keepdims=True, out=red)
    np.subtract(x, red, out=out)                 # centered
    np.multiply(out, out, out=sq)
    np.mean(sq, axis=-1, keepdims=True, out=red)  # var
    np.add(red, eps, out=red)
    np.sqrt(red, out=red)
    np.divide(1.0, red, out=red)                 # inv_std
    np.multiply(out, red, out=out)               # xhat
    np.multiply(out, gamma, out=out)
    np.add(out, beta, out=out)
    return out


def gelu_into(x: np.ndarray, out: np.ndarray, tmp: np.ndarray) -> np.ndarray:
    """GELU (tanh approximation) into ``out`` — mirrors :func:`gelu`.

    The cubic term multiplies in the fused kernel's left-associated order
    ``((A·x)·x)·x`` so float rounding matches bit for bit.
    """
    np.multiply(x, _GELU_A, out=tmp)
    np.multiply(tmp, x, out=tmp)
    np.multiply(tmp, x, out=tmp)
    np.add(x, tmp, out=tmp)
    np.multiply(tmp, _GELU_C, out=tmp)
    np.tanh(tmp, out=tmp)
    np.add(tmp, 1.0, out=tmp)
    np.multiply(x, 0.5, out=out)
    np.multiply(out, tmp, out=out)
    return out


def softmax_into(scores: np.ndarray, red: np.ndarray) -> np.ndarray:
    """In-place softmax over the last axis — mirrors :func:`_softmax_array`."""
    np.amax(scores, axis=-1, keepdims=True, out=red)
    np.subtract(scores, red, out=scores)
    np.exp(scores, out=scores)
    np.sum(scores, axis=-1, keepdims=True, out=red)
    np.divide(scores, red, out=scores)
    return scores


def mha_qkv_into(qkv: np.ndarray, num_heads: int, out: np.ndarray,
                 q: np.ndarray, k: np.ndarray, v: np.ndarray,
                 scores: np.ndarray, red: np.ndarray,
                 ctx: np.ndarray, spans=None) -> np.ndarray:
    """Packed-QKV multi-head attention into ``out`` — mirrors
    :func:`multi_head_attention_qkv`.

    ``qkv`` is ``(..., t, 3d)``; ``q``/``k``/``v``/``ctx`` are
    ``(..., H, t, hd)`` head-major buffers, ``scores`` is ``(..., H, t, t)``
    and ``red`` its ``(..., H, t, 1)`` reduction scratch; ``out`` is
    ``(..., t, d)``.

    ``spans`` is the padded-packing row mask, expressed structurally: a
    sequence of ``(q_s, k_swapped_s, v_s, scores_s, red_s, ctx_s)`` view
    tuples, each slicing the head-major buffers down to one span's *real*
    batch rows and token count.  With spans, the attention core (``q kᵀ``,
    softmax, ``probs @ v``) runs once per span on those sliced views, so
    padded rows and columns never enter a reduction — every real row's
    scores stay bitwise identical to an unpadded run, while the head
    split/merge copies and the 1/√hd scale still execute on the full
    (padded) buffers in one shot.  Padded regions of ``ctx``/``out`` are
    left stale; callers must never extract them.
    """
    *lead, t, packed = qkv.shape
    d = packed // 3
    head_dim = d // num_heads
    scale = 1.0 / math.sqrt(head_dim)
    split = np.moveaxis(
        qkv.reshape(*lead, t, 3, num_heads, head_dim), -3, 0
    ).swapaxes(-3, -2)
    np.copyto(q, split[0])
    np.copyto(k, split[1])
    np.copyto(v, split[2])
    np.multiply(q, scale, out=q)
    if spans is None:
        np.matmul(q, np.swapaxes(k, -1, -2), out=scores)
        softmax_into(scores, red)
        np.matmul(scores, v, out=ctx)             # (..., H, t, hd)
    else:
        for q_s, k_sw, v_s, scores_s, red_s, ctx_s in spans:
            np.matmul(q_s, k_sw, out=scores_s)
            softmax_into(scores_s, red_s)
            np.matmul(scores_s, v_s, out=ctx_s)
    out.reshape(*lead, t, num_heads, head_dim)[...] = np.swapaxes(ctx, -3, -2)
    return out


def sigmoid_rescale_into(x: np.ndarray, alpha: float,
                         out: np.ndarray) -> np.ndarray:
    """``sigmoid(x) * alpha`` into ``out`` — mirrors ``Tensor.sigmoid`` (with
    its ±60 clip) followed by a scalar multiply coerced to ``x.dtype``."""
    np.clip(x, -60.0, 60.0, out=out)
    np.negative(out, out=out)
    np.exp(out, out=out)
    np.add(out, 1.0, out=out)
    np.divide(1.0, out, out=out)
    np.multiply(out, np.asarray(alpha, dtype=out.dtype), out=out)
    return out
