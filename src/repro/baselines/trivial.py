"""Trivial reference scorers: the floors every real model must clear.

These are not paper baselines; they calibrate the metric scale of a
workload (EXPERIMENTS.md reports them alongside the real systems):

* :class:`RandomScorer` — the chance floor of the ranking metrics, which is
  far above zero for graded NDCG on short lists.
* :class:`GlobalMeanScorer` — predicts the training mean everywhere
  (ties ⇒ ranking is input order).
* :class:`ItemMeanScorer` — each item's training mean rating (popularity /
  quality prior); a surprisingly strong floor for user cold-start, where
  query items are warm.
* :class:`UserMeanScorer` — the user's mean over support + warm ratings;
  a per-user constant, so it only calibrates pointwise error, not ranking.
"""

from __future__ import annotations

import numpy as np

from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import RatingModel, combine_support_ratings

__all__ = ["RandomScorer", "GlobalMeanScorer", "ItemMeanScorer", "UserMeanScorer"]


class RandomScorer(RatingModel):
    """Uniform random scores — the chance floor."""

    name = "Random"

    def __init__(self, dataset=None, seed: int = 0):
        self.rng = np.random.default_rng(seed)

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        pass

    def predict_task(self, task: EvalTask) -> np.ndarray:
        return self.rng.random(len(task.query_items))


class GlobalMeanScorer(RatingModel):
    """The training-set mean rating for every pair."""

    name = "GlobalMean"

    def __init__(self, dataset=None, seed: int = 0):
        self.mean: float | None = None

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        values = combine_support_ratings(split, tasks)[:, 2]
        if values.size == 0:
            raise ValueError("no ratings to average")
        self.mean = float(values.mean())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.mean is None:
            raise RuntimeError("GlobalMean: fit() must run before predict_task()")
        return np.full(len(task.query_items), self.mean)


class ItemMeanScorer(RatingModel):
    """Each item's mean training rating; unseen items get the global mean."""

    name = "ItemMean"

    def __init__(self, dataset=None, seed: int = 0):
        self.item_means: dict[int, float] | None = None
        self.global_mean: float = 0.0

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        triples = combine_support_ratings(split, tasks)
        if triples.size == 0:
            raise ValueError("no ratings to average")
        self.global_mean = float(triples[:, 2].mean())
        items = triples[:, 1].astype(np.int64)
        self.item_means = {}
        for item in np.unique(items):
            self.item_means[int(item)] = float(triples[items == item, 2].mean())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.item_means is None:
            raise RuntimeError("ItemMean: fit() must run before predict_task()")
        return np.array([
            self.item_means.get(int(item), self.global_mean)
            for item in task.query_items
        ])


class UserMeanScorer(RatingModel):
    """The task user's mean rating over everything known about them."""

    name = "UserMean"

    def __init__(self, dataset=None, seed: int = 0):
        self.user_means: dict[int, float] | None = None
        self.global_mean: float = 0.0

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        triples = combine_support_ratings(split, tasks)
        if triples.size == 0:
            raise ValueError("no ratings to average")
        self.global_mean = float(triples[:, 2].mean())
        users = triples[:, 0].astype(np.int64)
        self.user_means = {}
        for user in np.unique(users):
            self.user_means[int(user)] = float(triples[users == user, 2].mean())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.user_means is None:
            raise RuntimeError("UserMean: fit() must run before predict_task()")
        value = self.user_means.get(task.user, self.global_mean)
        return np.full(len(task.query_items), value)
