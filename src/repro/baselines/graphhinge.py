"""GraphHINGE (Jin et al., KDD 2020) [21] — HIN neighbourhood interaction.

For a (user, item) pair, metapath-guided neighbourhoods are sampled from the
heterogeneous information network (rated items / attribute-similar items for
the user; raters / attribute-similar users for the item).  Source and target
neighbour embeddings, projected to a common space, interact through
element-wise products over all neighbour pairs; an attention softmax over
the pair scores aggregates them into an interaction vector that joins the
pair's own embeddings in the scoring MLP.

(The original computes the interaction with an FFT-accelerated convolution;
the all-pairs product + attention here is its direct O(|N_u|·|N_i|) form.)

Like the paper, this baseline runs on the MovieLens-like dataset, whose
attributes are rich enough to build a meaningful HIN.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .. import nn
from ..data.hin import build_hin, metapath_neighbors, node_id
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import PairEncoder, RatingModel, combine_support_ratings

__all__ = ["GraphHINGE"]

# Metapaths (node types after the start node).  Users end at items and
# vice versa, so both neighbourhoods live in entity space.
_USER_METAPATHS = (["item"], ["attr", "user", "item"])
_ITEM_METAPATHS = (["user"], ["attr", "item", "user"])


class _GraphHINGENetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, common_dim: int,
                 hidden: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        self.project_user = nn.Linear(self.encoder.user_dim, common_dim, rng)
        self.project_item = nn.Linear(self.encoder.item_dim, common_dim, rng)
        self.attention = nn.Linear(common_dim, 1, rng)
        self.scorer = nn.MLP(
            [self.encoder.user_dim + self.encoder.item_dim + common_dim, hidden, 1], rng
        )
        self.common_dim = common_dim


class GraphHINGE(RatingModel):
    """Neighbourhood-interaction model over a heterogeneous network."""

    name = "GraphHINGE"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, common_dim: int = 16,
                 hidden: int = 32, max_neighbors: int = 6, steps: int = 200,
                 batch_size: int = 32, lr: float = 5e-3, seed: int = 0):
        self.dataset = dataset
        self.attr_dim = attr_dim
        self.common_dim = common_dim
        self.hidden = hidden
        self.max_neighbors = max_neighbors
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.alpha = float(dataset.rating_range[1])
        self.network: _GraphHINGENetwork | None = None
        self.hin: nx.Graph | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    def _neighborhood(self, start: tuple[str, int], metapaths) -> tuple[np.ndarray, np.ndarray]:
        """(item ids, user ids) reached from ``start`` along the metapaths."""
        items: set[int] = set()
        users: set[int] = set()
        for path in metapaths:
            ends = metapath_neighbors(self.hin, start, path, self.rng,
                                      max_neighbors=self.max_neighbors)
            for ntype, index in ends:
                if ntype == "item":
                    items.add(index)
                elif ntype == "user":
                    users.add(index)
        return (np.fromiter(items, dtype=np.int64) if items else np.empty(0, np.int64),
                np.fromiter(users, dtype=np.int64) if users else np.empty(0, np.int64))

    def _project_neighbors(self, items: np.ndarray, users: np.ndarray) -> nn.Tensor | None:
        net = self.network
        parts = []
        if items.size:
            parts.append(net.project_item(net.encoder.encode_items(items)))
        if users.size:
            parts.append(net.project_user(net.encoder.encode_users(users)))
        if not parts:
            return None
        return parts[0] if len(parts) == 1 else nn.functional.concatenate(
            [p.reshape(-1, net.common_dim) for p in parts], axis=0
        )

    def _interaction(self, user: int, item: int) -> nn.Tensor:
        """Attention-aggregated element-wise products of neighbour pairs."""
        net = self.network
        src = self._project_neighbors(*self._neighborhood(node_id("user", user), _USER_METAPATHS))
        dst = self._project_neighbors(*self._neighborhood(node_id("item", item), _ITEM_METAPATHS))
        if src is None or dst is None:
            return nn.Tensor(np.zeros(net.common_dim))
        a, b = src.shape[0], dst.shape[0]
        products = src.reshape(a, 1, net.common_dim) * dst.reshape(1, b, net.common_dim)
        flat = products.reshape(a * b, net.common_dim)
        weights = nn.functional.softmax(net.attention(flat).reshape(-1), axis=-1)
        return (flat * weights.reshape(-1, 1)).sum(axis=0)

    def _predict_pairs(self, pairs: np.ndarray) -> nn.Tensor:
        net = self.network
        rows = []
        for user, item in pairs:
            user_vec = net.encoder.encode_users(np.array([int(user)])).reshape(-1)
            item_vec = net.encoder.encode_items(np.array([int(item)])).reshape(-1)
            inter = self._interaction(int(user), int(item))
            rows.append(nn.functional.concatenate([user_vec, item_vec, inter], axis=-1))
        stacked = nn.functional.stack(rows, axis=0)
        return net.scorer(stacked).sigmoid() * self.alpha

    # ------------------------------------------------------------------ #
    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        train = combine_support_ratings(split, tasks)
        self.hin = build_hin(self.dataset, ratings=train)
        self.network = _GraphHINGENetwork(self.dataset, self.attr_dim, self.common_dim,
                                          self.hidden, np.random.default_rng(self.seed))
        optimizer = nn.Adam(self.network.parameters(), lr=self.lr)
        for _ in range(self.steps):
            batch = train[self.rng.integers(0, len(train), size=min(self.batch_size, len(train)))]
            optimizer.zero_grad()
            predicted = self._predict_pairs(batch[:, :2].astype(np.int64))
            loss = nn.functional.mse_loss(predicted.reshape(-1), batch[:, 2])
            loss.backward()
            optimizer.step()
            self.loss_history.append(loss.item())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("GraphHINGE: fit() must run before predict_task()")
        pairs = np.stack([
            np.full(len(task.query_items), task.user, dtype=np.int64),
            task.query_items,
        ], axis=1)
        with nn.no_grad():
            scores = self._predict_pairs(pairs).data
        return scores.reshape(-1)
