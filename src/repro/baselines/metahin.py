"""MetaHIN (Lu et al., KDD 2020) [33] — meta-learning over a HIN.

MetaHIN exploits HIN semantics *at the data level* (each user task is
augmented with metapath-induced semantic contexts) and meta-learning *at the
model level* (MAML-style adaptation).  Here every task conditions on a
semantic context vector: the mean embedding of items reachable from the
user's support items along item→user→item co-rating paths in the HIN.  The
decision layers adapt per task with first-order MAML, as in
:mod:`repro.baselines.melu`; the semantic context makes the adaptation
HIN-aware.

Like the paper, this baseline targets the MovieLens-like dataset (rich
attributes → meaningful HIN).
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .. import nn
from ..data.hin import build_hin, metapath_neighbors, node_id
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import PairEncoder
from .meta import Episode, EpisodicMetaModel

__all__ = ["MetaHIN"]


class _MetaHINNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        self.context_proj = nn.Linear(self.encoder.item_dim, hidden // 2, rng)
        in_dim = self.encoder.user_dim + self.encoder.item_dim + hidden // 2
        self.head = nn.MLP([in_dim, hidden, hidden // 2, 1], rng)
        self.hidden = hidden

    def forward(self, users: np.ndarray, items: np.ndarray,
                context: nn.Tensor) -> nn.Tensor:
        batch = len(users)
        features = nn.functional.concatenate([
            self.encoder.encode_users(users),
            self.encoder.encode_items(items),
            context.reshape(1, -1) + nn.Tensor(np.zeros((batch, self.hidden // 2))),
        ], axis=-1)
        return self.head(features)

    def decision_parameters(self) -> list[nn.Parameter]:
        return list(self.head.parameters())


class MetaHIN(EpisodicMetaModel):
    """HIN-augmented meta-learning for cold-start."""

    name = "MetaHIN"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, hidden: int = 32,
                 inner_steps: int = 2, inner_lr: float = 5e-2,
                 max_context_items: int = 12, **kwargs):
        super().__init__(dataset, **kwargs)
        self.attr_dim = attr_dim
        self.hidden = hidden
        self.inner_steps = inner_steps
        self.inner_lr = inner_lr
        self.max_context_items = max_context_items
        self.hin: nx.Graph | None = None

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _MetaHINNetwork(self.dataset, self.attr_dim, self.hidden, rng)
        return self.network

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        # Semantic contexts come from the HIN over warm ratings plus the
        # tasks' support ratings (the data-level augmentation).
        visible = [split.train_ratings()]
        visible.extend(task.support for task in tasks if task.support.size)
        self.hin = build_hin(self.dataset, ratings=np.concatenate(visible))
        super().fit(split, tasks)

    # ------------------------------------------------------------------ #
    def _semantic_context(self, support_items: np.ndarray) -> nn.Tensor:
        """Mean embedding of items co-rated with the support items (I-U-I)."""
        reachable: set[int] = set()
        for item in support_items[: self.max_context_items]:
            ends = metapath_neighbors(self.hin, node_id("item", int(item)),
                                      ["user", "item"], self.rng, max_neighbors=6)
            reachable.update(index for ntype, index in ends if ntype == "item")
        if not reachable:
            return nn.Tensor(np.zeros(self.network.hidden // 2))
        items = np.fromiter(reachable, dtype=np.int64)[: self.max_context_items]
        embedded = self.network.encoder.encode_items(items)
        return self.network.context_proj(embedded).relu().mean(axis=0)

    def _loss_on(self, triples: np.ndarray, context: nn.Tensor) -> nn.Tensor:
        users = triples[:, 0].astype(np.int64)
        items = triples[:, 1].astype(np.int64)
        predicted = self.network(users, items, context).sigmoid() * self.alpha
        return nn.functional.mse_loss(predicted.reshape(-1), triples[:, 2])

    def episode_update(self, episode: Episode, optimizer: nn.Optimizer) -> float:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        support_items = episode.support[:, 1].astype(np.int64)
        self.inner_adapt(
            decision,
            lambda: self._loss_on(episode.support, self._semantic_context(support_items)),
            self.inner_steps, self.inner_lr,
        )
        optimizer.zero_grad()
        context = self._semantic_context(support_items)
        query_loss = self._loss_on(episode.query, context)
        query_loss.backward()
        self.restore_params(decision, saved)
        optimizer.step()
        return query_loss.item()

    def adapt_and_score(self, support: np.ndarray, user: int,
                        query_items: np.ndarray) -> np.ndarray:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        support_items = support[:, 1].astype(np.int64) if support.size else np.empty(0, np.int64)
        if support.size:
            self.inner_adapt(
                decision,
                lambda: self._loss_on(support, self._semantic_context(support_items)),
                self.inner_steps, self.inner_lr,
            )
        users = np.full(len(query_items), user, dtype=np.int64)
        with nn.no_grad():
            context = self._semantic_context(support_items)
            scores = (self.network(users, query_items, context).sigmoid() * self.alpha).data
        self.restore_params(decision, saved)
        return scores.reshape(-1)
