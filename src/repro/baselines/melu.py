"""MeLU — Meta-Learned User preference estimator (Lee et al., KDD 2019) [23].

MAML applied to cold-start recommendation: a global initialisation of a
preference network is meta-learned such that a handful of inner gradient
steps on a user's support ratings personalises it.  Following the original,
only the *decision layers* (the MLP head) adapt in the inner loop while the
embedding layers stay global.  We use the first-order approximation
(FOMAML); see :mod:`repro.baselines.meta`.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder
from .meta import Episode, EpisodicMetaModel

__all__ = ["MeLU"]


class _MeLUNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        in_dim = self.encoder.user_dim + self.encoder.item_dim
        self.head = nn.MLP([in_dim, hidden, hidden // 2, 1], rng)

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        features = nn.functional.concatenate(
            [self.encoder.encode_users(users), self.encoder.encode_items(items)], axis=-1
        )
        return self.head(features)

    def decision_parameters(self) -> list[nn.Parameter]:
        return list(self.head.parameters())


class MeLU(EpisodicMetaModel):
    """MAML-personalised preference estimation."""

    name = "MeLU"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, hidden: int = 32,
                 inner_steps: int = 2, inner_lr: float = 5e-2, **kwargs):
        super().__init__(dataset, **kwargs)
        self.attr_dim = attr_dim
        self.hidden = hidden
        self.inner_steps = inner_steps
        self.inner_lr = inner_lr

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _MeLUNetwork(self.dataset, self.attr_dim, self.hidden, rng)
        return self.network

    # ------------------------------------------------------------------ #
    def _loss_on(self, triples: np.ndarray) -> nn.Tensor:
        users = triples[:, 0].astype(np.int64)
        items = triples[:, 1].astype(np.int64)
        predicted = self.network(users, items).sigmoid() * self.alpha
        return nn.functional.mse_loss(predicted.reshape(-1), triples[:, 2])

    def episode_update(self, episode: Episode, optimizer: nn.Optimizer) -> float:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        self.inner_adapt(decision, lambda: self._loss_on(episode.support),
                         self.inner_steps, self.inner_lr)
        # Query loss at the adapted parameters; its gradients drive the
        # meta-update of the *initial* parameters (first-order MAML).
        optimizer.zero_grad()
        query_loss = self._loss_on(episode.query)
        query_loss.backward()
        self.restore_params(decision, saved)
        optimizer.step()
        return query_loss.item()

    def adapt_and_score(self, support: np.ndarray, user: int,
                        query_items: np.ndarray) -> np.ndarray:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        if support.size:
            self.inner_adapt(decision, lambda: self._loss_on(support),
                             self.inner_steps, self.inner_lr)
        users = np.full(len(query_items), user, dtype=np.int64)
        with nn.no_grad():
            scores = (self.network(users, query_items).sigmoid() * self.alpha).data
        self.restore_params(decision, saved)
        return scores.reshape(-1)
