"""TaNP — Task-adaptive Neural Process (Lin et al., WWW 2021) [22].

Casts cold-start recommendation as a neural process: a permutation-invariant
encoder aggregates a task's support (item, rating) pairs into a task latent
``z``; a decoder scores query items conditioned on ``z`` through
task-adaptive FiLM modulation (scale/shift of the decoder's hidden layer
predicted from ``z``) — the "task-adaptive mechanism" of the original.
Adaptation is a single forward pass: no inner gradient loop, which is why
TaNP tests fast (Fig. 6) while staying competitive.

This is the deterministic NP variant (mean aggregation, no latent sampling);
the stochastic path adds variance without changing the ranking behaviour the
benchmarks measure.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder
from .meta import Episode, EpisodicMetaModel

__all__ = ["TaNP"]


class _TaNPNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 latent_dim: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        pair_dim = self.encoder.user_dim + self.encoder.item_dim
        self.support_encoder = nn.MLP([pair_dim + 1, hidden, latent_dim], rng)
        self.decoder_in = nn.Linear(pair_dim, hidden, rng)
        self.film = nn.Linear(latent_dim, 2 * hidden, rng)
        self.decoder_out = nn.MLP([hidden, hidden // 2, 1], rng)
        self.hidden = hidden
        self.latent_dim = latent_dim

    def pair_features(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        return nn.functional.concatenate(
            [self.encoder.encode_users(users), self.encoder.encode_items(items)], axis=-1
        )

    def encode_task(self, support: np.ndarray, rating_scale: float) -> nn.Tensor:
        """Mean-pooled latent from the support (pair, rating) tuples."""
        users = support[:, 0].astype(np.int64)
        items = support[:, 1].astype(np.int64)
        ratings = nn.Tensor((support[:, 2] / rating_scale).reshape(-1, 1))
        pairs = self.pair_features(users, items)
        encoded = self.support_encoder(nn.functional.concatenate([pairs, ratings], axis=-1))
        return encoded.mean(axis=0)  # (latent_dim,)

    def decode(self, users: np.ndarray, items: np.ndarray, z: nn.Tensor) -> nn.Tensor:
        h = self.decoder_in(self.pair_features(users, items))
        modulation = self.film(z.reshape(1, self.latent_dim))
        gamma = modulation[:, : self.hidden]
        beta = modulation[:, self.hidden:]
        h = (h * (1.0 + gamma) + beta).relu()
        return self.decoder_out(h)


class TaNP(EpisodicMetaModel):
    """Neural-process cold-start recommendation with task-adaptive FiLM."""

    name = "TaNP"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, hidden: int = 32,
                 latent_dim: int = 16, **kwargs):
        super().__init__(dataset, **kwargs)
        self.attr_dim = attr_dim
        self.hidden = hidden
        self.latent_dim = latent_dim

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _TaNPNetwork(self.dataset, self.attr_dim, self.hidden,
                                    self.latent_dim, rng)
        return self.network

    def _predict(self, triples_support: np.ndarray, users: np.ndarray,
                 items: np.ndarray) -> nn.Tensor:
        z = self.network.encode_task(triples_support, self.alpha)
        return self.network.decode(users, items, z).sigmoid() * self.alpha

    def episode_update(self, episode: Episode, optimizer: nn.Optimizer) -> float:
        optimizer.zero_grad()
        users = episode.query[:, 0].astype(np.int64)
        items = episode.query[:, 1].astype(np.int64)
        predicted = self._predict(episode.support, users, items)
        loss = nn.functional.mse_loss(predicted.reshape(-1), episode.query[:, 2])
        loss.backward()
        optimizer.step()
        return loss.item()

    def adapt_and_score(self, support: np.ndarray, user: int,
                        query_items: np.ndarray) -> np.ndarray:
        users = np.full(len(query_items), user, dtype=np.int64)
        with nn.no_grad():
            if support.size:
                scores = self._predict(support, users, query_items)
            else:
                z = nn.Tensor(np.zeros(self.network.latent_dim))
                scores = self.network.decode(users, query_items, z).sigmoid() * self.alpha
        return scores.data.reshape(-1)
