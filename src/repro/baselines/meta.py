"""Shared machinery for the meta-learning baselines (MeLU, MAMO, TaNP).

Meta-training treats each *user* as a task (§II, "Meta-learning for
cold-start recommendation"): an episode samples a warm user, splits their
warm ratings into a support and a query set, adapts on the support, and
meta-updates from the query loss.  At test time the same adaptation runs on
a cold user's 10 % support ratings.

MeLU and MAMO use first-order MAML (FOMAML): the inner loop updates the
decision layers in place, the query-loss gradients taken at the adapted
parameters are applied to the restored initial parameters.  (The original
papers backpropagate through the inner loop; the first-order approximation
is standard practice and keeps the numpy substrate tractable — recorded in
DESIGN.md.)
"""

from __future__ import annotations

from abc import abstractmethod

import numpy as np

from .. import nn
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import RatingModel

__all__ = ["group_ratings_by_user", "Episode", "EpisodicMetaModel"]


def group_ratings_by_user(triples: np.ndarray) -> dict[int, np.ndarray]:
    """Map user id → their rating rows, keeping only users with ≥ 2 rows."""
    triples = np.asarray(triples, dtype=np.float64)
    grouped: dict[int, np.ndarray] = {}
    if triples.size == 0:
        return grouped
    users = triples[:, 0].astype(np.int64)
    for user in np.unique(users):
        rows = triples[users == user]
        if len(rows) >= 2:
            grouped[int(user)] = rows
    return grouped


class Episode:
    """One meta-training task: a user's support/query rating split."""

    __slots__ = ("user", "support", "query")

    def __init__(self, user: int, support: np.ndarray, query: np.ndarray):
        self.user = user
        self.support = support
        self.query = query


class EpisodicMetaModel(RatingModel):
    """Base class running the episodic meta-training loop."""

    def __init__(self, dataset, episodes: int = 200, support_fraction: float = 0.1,
                 max_support: int = 8, max_query: int = 24, outer_lr: float = 5e-3,
                 seed: int = 0):
        self.dataset = dataset
        self.episodes = episodes
        self.support_fraction = support_fraction
        self.max_support = max_support
        self.max_query = max_query
        self.outer_lr = outer_lr
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.alpha = float(dataset.rating_range[1])
        self.network: nn.Module | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    # Subclass contract
    # ------------------------------------------------------------------ #
    @abstractmethod
    def build(self, rng: np.random.Generator) -> nn.Module:
        """Construct the meta-network."""

    @abstractmethod
    def episode_update(self, episode: Episode, optimizer: nn.Optimizer) -> float:
        """One meta-update from an episode; returns the episode loss."""

    @abstractmethod
    def adapt_and_score(self, support: np.ndarray, user: int,
                        query_items: np.ndarray) -> np.ndarray:
        """Adapt to a task's support set and score its query items."""

    # ------------------------------------------------------------------ #
    # Meta-training
    # ------------------------------------------------------------------ #
    def sample_episode(self, grouped: dict[int, np.ndarray]) -> Episode:
        users = list(grouped)
        user = users[self.rng.integers(len(users))]
        rows = grouped[user]
        perm = self.rng.permutation(len(rows))
        rows = rows[perm]
        support_count = max(1, int(round(self.support_fraction * len(rows))))
        support_count = min(support_count, self.max_support, len(rows) - 1)
        support = rows[:support_count]
        query = rows[support_count:support_count + self.max_query]
        return Episode(user, support, query)

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        grouped = group_ratings_by_user(split.train_ratings())
        if not grouped:
            raise ValueError("no warm users with enough ratings for episodes")
        self.network = self.build(np.random.default_rng(self.seed))
        optimizer = nn.Adam(self.network.parameters(), lr=self.outer_lr)
        for _ in range(self.episodes):
            episode = self.sample_episode(grouped)
            loss = self.episode_update(episode, optimizer)
            self.loss_history.append(loss)

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.network is None:
            raise RuntimeError(f"{self.name}: fit() must run before predict_task()")
        return self.adapt_and_score(task.support, task.user, task.query_items)

    # ------------------------------------------------------------------ #
    # FOMAML helpers shared by MeLU and MAMO
    # ------------------------------------------------------------------ #
    @staticmethod
    def save_params(params: list[nn.Parameter]) -> list[np.ndarray]:
        return [p.data.copy() for p in params]

    @staticmethod
    def restore_params(params: list[nn.Parameter], saved: list[np.ndarray]) -> None:
        for p, data in zip(params, saved):
            p.data = data.copy()

    def inner_adapt(self, params: list[nn.Parameter], loss_fn, steps: int,
                    inner_lr: float) -> None:
        """In-place SGD on ``params`` against ``loss_fn()`` (the inner loop)."""
        for _ in range(steps):
            for p in self.network.parameters():
                p.grad = None
            loss = loss_fn()
            loss.backward()
            for p in params:
                if p.grad is not None:
                    p.data = p.data - inner_lr * p.grad
        for p in self.network.parameters():
            p.grad = None
