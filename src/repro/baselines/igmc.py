"""IGMC-style inductive matrix completion (Zhang & Chen, ICLR 2020) [44].

The paper positions HIRE against GNN-based inductive matrix completion
(§IV-A): both predict a rating from a local neighbourhood, but IMC models
message-pass over the *observed* rating edges of an enclosing subgraph,
while HIRE attends over a complete graph with learned soft adjacency.
This module implements the comparison point as an extension (it is not in
the paper's evaluation tables; ``benchmarks/bench_extension_igmc.py``
quantifies it on our workloads).

For each (user, item) pair we extract the 1-hop enclosing subgraph — the
item's raters and the user's rated items, bounded per side — and run an
R-GCN-style network: one dense adjacency per rating level, a weight matrix
per level per layer.  Node inputs are structural role labels only
(target-user / target-item / context-user / context-item), which is what
makes the model inductive: cold entities get the same labels as warm ones.
The readout concatenates the target nodes' embeddings from every layer.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.bipartite import RatingGraph
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import RatingModel, combine_support_ratings

__all__ = ["IGMC"]

_NUM_ROLES = 4  # target user, target item, context user, context item


class _RGCNLayer(nn.Module):
    """Dense relational GCN layer: one weight per rating level + self loop."""

    def __init__(self, in_dim: int, out_dim: int, num_levels: int,
                 rng: np.random.Generator):
        super().__init__()
        self.level_weights = nn.ModuleList(
            nn.Linear(in_dim, out_dim, rng, bias=False) for _ in range(num_levels)
        )
        self.self_weight = nn.Linear(in_dim, out_dim, rng)

    def forward(self, h: nn.Tensor, adjacency: list[np.ndarray]) -> nn.Tensor:
        out = self.self_weight(h)
        for level, weight in enumerate(self.level_weights):
            a = adjacency[level]
            if a.any():
                out = out + nn.Tensor(a) @ weight(h)
        return out.tanh()


class _IGMCNetwork(nn.Module):
    def __init__(self, hidden: int, layers: int, num_levels: int,
                 rng: np.random.Generator):
        super().__init__()
        self.role_embed = nn.Embedding(_NUM_ROLES, hidden, rng)
        self.layers = nn.ModuleList(
            _RGCNLayer(hidden, hidden, num_levels, rng) for _ in range(layers)
        )
        self.readout = nn.MLP([2 * hidden * layers, hidden, 1], rng)
        self.num_layers = layers

    def forward(self, roles: np.ndarray, adjacency: list[np.ndarray]) -> nn.Tensor:
        h = self.role_embed(roles)
        target_states = []
        for layer in self.layers:
            h = layer(h, adjacency)
            # Nodes 0 and 1 are the target user and item by construction.
            target_states.append(h[0])
            target_states.append(h[1])
        fused = nn.functional.concatenate(target_states, axis=-1)
        return self.readout(fused.reshape(1, -1))


class IGMC(RatingModel):
    """Enclosing-subgraph GNN rating prediction (extension baseline)."""

    name = "IGMC"

    def __init__(self, dataset: RatingDataset, hidden: int = 16, layers: int = 2,
                 max_neighbors: int = 8, steps: int = 200, batch_size: int = 16,
                 lr: float = 5e-3, seed: int = 0):
        self.dataset = dataset
        self.hidden = hidden
        self.layers = layers
        self.max_neighbors = max_neighbors
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        low, high = dataset.rating_range
        self.rating_low = low
        self.alpha = float(high)
        self.num_levels = int(round(high - low)) + 1
        self.network: _IGMCNetwork | None = None
        self.graph: RatingGraph | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    # Enclosing subgraph extraction
    # ------------------------------------------------------------------ #
    def _subgraph(self, user: int, item: int, exclude_target_edge: bool):
        """Nodes, role labels and per-level adjacency of the 1-hop subgraph.

        Node order: [target user, target item, context users…, context
        items…].  The target edge itself is removed during training (it is
        the label, not an input).
        """
        raters = self.graph.users_of_item(item)
        raters = raters[raters != user][: self.max_neighbors]
        rated = self.graph.items_of_user(user)
        rated = rated[rated != item][: self.max_neighbors]

        users = [user] + [int(u) for u in raters]
        items = [item] + [int(i) for i in rated]
        num_nodes = len(users) + len(items)
        roles = np.zeros(num_nodes, dtype=np.int64)
        roles[0] = 0                      # target user
        roles[len(users)] = 1             # target item
        roles[1:len(users)] = 2           # context users
        roles[len(users) + 1:] = 3        # context items

        adjacency = [np.zeros((num_nodes, num_nodes)) for _ in range(self.num_levels)]
        for u_pos, u in enumerate(users):
            for i_pos, i in enumerate(items):
                if exclude_target_edge and u == user and i == item:
                    continue
                value = self.graph.rating(u, i)
                if value is None:
                    continue
                level = int(np.clip(round(value - self.rating_low), 0,
                                    self.num_levels - 1))
                node_i = len(users) + i_pos
                adjacency[level][u_pos, node_i] = 1.0
                adjacency[level][node_i, u_pos] = 1.0
        # Symmetric degree normalisation keeps message scales stable.
        total = sum(adjacency)
        degree = total.sum(axis=1)
        scale = 1.0 / np.sqrt(np.maximum(degree, 1.0))
        for level in range(self.num_levels):
            adjacency[level] = scale[:, None] * adjacency[level] * scale[None, :]
        return roles, adjacency

    def _score(self, user: int, item: int, exclude_target_edge: bool) -> nn.Tensor:
        roles, adjacency = self._subgraph(user, item, exclude_target_edge)
        return self.network(roles, adjacency).sigmoid() * self.alpha

    # ------------------------------------------------------------------ #
    # RatingModel interface
    # ------------------------------------------------------------------ #
    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        train = combine_support_ratings(split, tasks)
        if len(train) == 0:
            raise ValueError("no training ratings available")
        dataset = self.dataset
        self.graph = RatingGraph(train, dataset.num_users, dataset.num_items)
        self.network = _IGMCNetwork(self.hidden, self.layers, self.num_levels,
                                    np.random.default_rng(self.seed))
        optimizer = nn.Adam(self.network.parameters(), lr=self.lr)
        for _ in range(self.steps):
            batch = train[self.rng.integers(0, len(train),
                                            size=min(self.batch_size, len(train)))]
            optimizer.zero_grad()
            loss = None
            for user, item, value in batch:
                predicted = self._score(int(user), int(item), exclude_target_edge=True)
                diff = predicted.reshape(1) - nn.Tensor(np.array([value]))
                term = (diff * diff).sum()
                loss = term if loss is None else loss + term
            loss = loss * (1.0 / len(batch))
            loss.backward()
            optimizer.step()
            self.loss_history.append(loss.item())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("IGMC: fit() must run before predict_task()")
        scores = np.empty(len(task.query_items))
        with nn.no_grad():
            for pos, item in enumerate(task.query_items):
                scores[pos] = self._score(task.user, int(item),
                                          exclude_target_edge=False).item()
        return scores
