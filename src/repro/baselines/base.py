"""Shared infrastructure for the baseline recommenders (§VI-A).

Every baseline implements the :class:`RatingModel` contract:

* ``fit(split, tasks)`` — train on the warm quadrant; per the paper's
  protocol, non-meta models additionally fold the tasks' 10 % support
  ratings into their training data ("together with the 10 % unmasked
  user-item ratings in the test context"), while meta-learning models
  consume supports only at adaptation time.
* ``predict_task(task)`` — scores for the task's query items.

:class:`PairEncoder` gives all baselines the same per-attribute embedding
treatment of users and items that HIRE's encoder uses, so no model is
advantaged by its input representation.  :class:`PairwiseNeuralModel`
implements the minibatch regression loop shared by the CF family.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask

__all__ = ["RatingModel", "PairEncoder", "PairwiseNeuralModel", "combine_support_ratings"]


def combine_support_ratings(split: ColdStartSplit, tasks: list[EvalTask]) -> np.ndarray:
    """Warm training triples plus every task's support triples."""
    parts = [split.train_ratings()]
    parts.extend(task.support for task in tasks if task.support.size)
    return np.concatenate(parts) if parts else np.empty((0, 3))


class RatingModel(ABC):
    """Interface all evaluated systems (HIRE and baselines) satisfy."""

    name: str = "base"

    @abstractmethod
    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        """Train the model for one cold-start scenario."""

    @abstractmethod
    def predict_task(self, task: EvalTask) -> np.ndarray:
        """Return predicted scores aligned with ``task.query_items``."""


class PairEncoder(nn.Module):
    """Per-attribute embeddings of users and items (Eq. 7-8 treatment)."""

    def __init__(self, dataset: RatingDataset, attr_dim: int, rng: np.random.Generator):
        super().__init__()
        self.attr_dim = attr_dim
        self.user_tables = nn.ModuleList(
            nn.Embedding(card, attr_dim, rng) for card in dataset.user_attribute_cards
        )
        self.item_tables = nn.ModuleList(
            nn.Embedding(card, attr_dim, rng) for card in dataset.item_attribute_cards
        )
        self._user_attributes = dataset.user_attributes
        self._item_attributes = dataset.item_attributes
        self.user_dim = len(dataset.user_attribute_cards) * attr_dim
        self.item_dim = len(dataset.item_attribute_cards) * attr_dim
        self.num_user_fields = len(dataset.user_attribute_cards)
        self.num_item_fields = len(dataset.item_attribute_cards)

    def encode_users(self, users: np.ndarray) -> nn.Tensor:
        """(b, h_u · f) concatenated user attribute embeddings."""
        parts = [table(self._user_attributes[users, k])
                 for k, table in enumerate(self.user_tables)]
        return nn.functional.concatenate(parts, axis=-1)

    def encode_items(self, items: np.ndarray) -> nn.Tensor:
        """(b, h_i · f) concatenated item attribute embeddings."""
        parts = [table(self._item_attributes[items, k])
                 for k, table in enumerate(self.item_tables)]
        return nn.functional.concatenate(parts, axis=-1)

    def field_embeddings(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        """(b, h_u + h_i, f) stacked per-field embeddings (for FM-style models)."""
        parts = [table(self._user_attributes[users, k])
                 for k, table in enumerate(self.user_tables)]
        parts += [table(self._item_attributes[items, k])
                  for k, table in enumerate(self.item_tables)]
        return nn.functional.stack(parts, axis=1)


class PairwiseNeuralModel(RatingModel):
    """Base class for CF-style models trained on (user, item, rating) rows.

    Subclasses define the network via :meth:`build` (called lazily at fit
    time) and :meth:`forward`.  Training minimises MSE with Adam; outputs go
    through a sigmoid scaled by the rating upper bound so every model
    predicts on the same scale.
    """

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8,
                 steps: int = 300, batch_size: int = 128, lr: float = 1e-2,
                 weight_decay: float = 1e-6, seed: int = 0):
        self.dataset = dataset
        self.attr_dim = attr_dim
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.weight_decay = weight_decay
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.alpha = float(dataset.rating_range[1])
        self.network: nn.Module | None = None
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    # Subclass contract
    # ------------------------------------------------------------------ #
    @abstractmethod
    def build(self, rng: np.random.Generator) -> nn.Module:
        """Construct and return the network (stored as ``self.network``)."""

    @abstractmethod
    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        """Raw (pre-sigmoid) prediction logits for a batch of pairs."""

    # ------------------------------------------------------------------ #
    # Shared training loop
    # ------------------------------------------------------------------ #
    def predict_scores(self, users: np.ndarray, items: np.ndarray) -> np.ndarray:
        self.network.eval()
        with nn.no_grad():
            out = self.forward(users, items).sigmoid() * self.alpha
        self.network.train()
        return out.data.reshape(-1)

    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        train = combine_support_ratings(split, tasks)
        if len(train) == 0:
            raise ValueError("no training ratings available")
        self.network = self.build(np.random.default_rng(self.seed))
        optimizer = nn.Adam(self.network.parameters(), lr=self.lr,
                            weight_decay=self.weight_decay)
        users = train[:, 0].astype(np.int64)
        items = train[:, 1].astype(np.int64)
        values = train[:, 2]
        for _ in range(self.steps):
            batch = self.rng.integers(0, len(train), size=min(self.batch_size, len(train)))
            optimizer.zero_grad()
            logits = self.forward(users[batch], items[batch])
            predicted = logits.sigmoid() * self.alpha
            loss = nn.functional.mse_loss(predicted.reshape(-1), values[batch])
            loss.backward()
            optimizer.step()
            self.loss_history.append(loss.item())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.network is None:
            raise RuntimeError(f"{self.name}: fit() must run before predict_task()")
        query_items = task.query_items
        users = np.full(len(query_items), task.user, dtype=np.int64)
        return self.predict_scores(users, query_items)
