"""NeuMF — Neural Collaborative Filtering (He et al., WWW 2017) [8].

Fuses a generalised matrix factorisation (GMF) branch — the element-wise
product of user and item latent vectors — with an MLP branch over their
concatenation, combined by a final linear layer.  Latent vectors derive from
the shared per-attribute :class:`~repro.baselines.base.PairEncoder` so the
model can score cold entities through their attributes.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder, PairwiseNeuralModel

__all__ = ["NeuMF"]


class _NeuMFNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, latent_dim: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        self.user_proj = nn.Linear(self.encoder.user_dim, latent_dim, rng)
        self.item_proj = nn.Linear(self.encoder.item_dim, latent_dim, rng)
        self.mlp = nn.MLP([2 * latent_dim, latent_dim, latent_dim // 2], rng,
                          final_activation=True)
        self.head = nn.Linear(latent_dim + latent_dim // 2, 1, rng)

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        p = self.user_proj(self.encoder.encode_users(users))
        q = self.item_proj(self.encoder.encode_items(items))
        gmf = p * q
        mlp = self.mlp(nn.functional.concatenate([p, q], axis=-1))
        fused = nn.functional.concatenate([gmf, mlp], axis=-1)
        return self.head(fused)


class NeuMF(PairwiseNeuralModel):
    """GMF ⊕ MLP collaborative filtering."""

    name = "NeuMF"

    def __init__(self, dataset: RatingDataset, latent_dim: int = 16, **kwargs):
        super().__init__(dataset, **kwargs)
        self.latent_dim = latent_dim

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _NeuMFNetwork(self.dataset, self.attr_dim, self.latent_dim, rng)
        return self.network

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        return self.network(users, items)
