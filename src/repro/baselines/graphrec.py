"""GraphRec (Fan et al., WWW 2019) [15] — GNN social recommendation.

Three aggregations feed the rating predictor:

* **item-space user modeling** — a user's latent vector aggregates the
  (item embedding ‖ rating embedding) of their rated items,
* **social-space user modeling** — aggregates the item-space vectors of the
  user's friends (the social graph; hence GraphRec runs only on the
  Douban-like dataset, as in the paper),
* **user aggregation for items** — an item's latent vector aggregates the
  (user embedding ‖ rating embedding) of its raters.

The original weights neighbours with attention MLPs; we use mean
aggregation over a bounded neighbour sample, which preserves the
architecture's information flow at numpy scale (noted in DESIGN.md).
Cold users are served through their support ratings, which enter the
aggregation graph at fit time.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.bipartite import RatingGraph
from ..data.schema import RatingDataset
from ..data.splits import ColdStartSplit
from ..eval.tasks import EvalTask
from .base import PairEncoder, RatingModel, combine_support_ratings

__all__ = ["GraphRec"]


class _GraphRecNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        low, high = dataset.rating_range
        self.num_levels = int(round(high - low)) + 1
        self.rating_low = low
        self.rating_embed = nn.Embedding(self.num_levels, attr_dim, rng)
        self.item_space = nn.Linear(self.encoder.item_dim + attr_dim, hidden, rng)
        self.user_space = nn.Linear(self.encoder.user_dim + attr_dim, hidden, rng)
        self.user_combine = nn.Linear(self.encoder.user_dim + 2 * hidden, hidden, rng)
        self.item_combine = nn.Linear(self.encoder.item_dim + hidden, hidden, rng)
        self.predictor = nn.MLP([2 * hidden, hidden, 1], rng)
        self.hidden = hidden


class GraphRec(RatingModel):
    """Social + rating graph aggregation for rating prediction."""

    name = "GraphRec"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, hidden: int = 32,
                 max_neighbors: int = 8, steps: int = 200, batch_size: int = 32,
                 lr: float = 5e-3, seed: int = 0):
        if dataset.social_edges is None:
            raise ValueError("GraphRec requires a dataset with social edges (Douban)")
        self.dataset = dataset
        self.attr_dim = attr_dim
        self.hidden = hidden
        self.max_neighbors = max_neighbors
        self.steps = steps
        self.batch_size = batch_size
        self.lr = lr
        self.seed = seed
        self.rng = np.random.default_rng(seed)
        self.alpha = float(dataset.rating_range[1])
        self.network: _GraphRecNetwork | None = None
        self.graph: RatingGraph | None = None
        self.friends: dict[int, np.ndarray] = {}
        self.loss_history: list[float] = []

    # ------------------------------------------------------------------ #
    # Aggregations
    # ------------------------------------------------------------------ #
    def _rating_levels(self, values: np.ndarray) -> np.ndarray:
        net = self.network
        levels = np.rint(values - net.rating_low).astype(np.int64)
        return np.clip(levels, 0, net.num_levels - 1)

    def _sample_neighbors(self, ids: np.ndarray) -> np.ndarray:
        if len(ids) > self.max_neighbors:
            picks = self.rng.choice(len(ids), size=self.max_neighbors, replace=False)
            ids = ids[picks]
        return ids

    def _item_space_user(self, user: int) -> nn.Tensor:
        """Aggregate a user's rated items: h_I of the original."""
        net = self.network
        items = self._sample_neighbors(self.graph.items_of_user(user))
        if items.size == 0:
            return nn.Tensor(np.zeros(net.hidden))
        values = np.array([self.graph.rating(user, int(i)) for i in items])
        features = nn.functional.concatenate(
            [net.encoder.encode_items(items), net.rating_embed(self._rating_levels(values))],
            axis=-1,
        )
        return net.item_space(features).relu().mean(axis=0)

    def _user_latent(self, user: int) -> nn.Tensor:
        net = self.network
        item_space = self._item_space_user(user)
        friends = self._sample_neighbors(self.friends.get(user, np.empty(0, np.int64)))
        if friends.size:
            social = [self._item_space_user(int(f)) for f in friends]
            social_space = nn.functional.stack(social, axis=0).mean(axis=0)
        else:
            social_space = nn.Tensor(np.zeros(net.hidden))
        profile = net.encoder.encode_users(np.array([user])).reshape(-1)
        combined = nn.functional.concatenate([profile, item_space, social_space], axis=-1)
        return net.user_combine(combined.reshape(1, -1)).relu().reshape(-1)

    def _item_latent(self, item: int) -> nn.Tensor:
        net = self.network
        users = self._sample_neighbors(self.graph.users_of_item(item))
        if users.size:
            values = np.array([self.graph.rating(int(u), item) for u in users])
            features = nn.functional.concatenate(
                [net.encoder.encode_users(users), net.rating_embed(self._rating_levels(values))],
                axis=-1,
            )
            aggregated = net.user_space(features).relu().mean(axis=0)
        else:
            aggregated = nn.Tensor(np.zeros(net.hidden))
        profile = net.encoder.encode_items(np.array([item])).reshape(-1)
        combined = nn.functional.concatenate([profile, aggregated], axis=-1)
        return net.item_combine(combined.reshape(1, -1)).relu().reshape(-1)

    def _predict_pairs(self, pairs: np.ndarray) -> nn.Tensor:
        latents = []
        for user, item in pairs:
            u_lat = self._user_latent(int(user))
            i_lat = self._item_latent(int(item))
            latents.append(nn.functional.concatenate([u_lat, i_lat], axis=-1))
        stacked = nn.functional.stack(latents, axis=0)
        return self.network.predictor(stacked).sigmoid() * self.alpha

    # ------------------------------------------------------------------ #
    # RatingModel interface
    # ------------------------------------------------------------------ #
    def fit(self, split: ColdStartSplit, tasks: list[EvalTask]) -> None:
        train = combine_support_ratings(split, tasks)
        dataset = self.dataset
        self.graph = RatingGraph(train, dataset.num_users, dataset.num_items)
        self.friends = {}
        for a, b in dataset.social_edges:
            self.friends.setdefault(int(a), []).append(int(b))
            self.friends.setdefault(int(b), []).append(int(a))
        self.friends = {u: np.asarray(v, dtype=np.int64) for u, v in self.friends.items()}

        self.network = _GraphRecNetwork(dataset, self.attr_dim, self.hidden,
                                        np.random.default_rng(self.seed))
        optimizer = nn.Adam(self.network.parameters(), lr=self.lr)
        for _ in range(self.steps):
            batch = train[self.rng.integers(0, len(train), size=min(self.batch_size, len(train)))]
            optimizer.zero_grad()
            predicted = self._predict_pairs(batch[:, :2].astype(np.int64))
            loss = nn.functional.mse_loss(predicted.reshape(-1), batch[:, 2])
            loss.backward()
            optimizer.step()
            self.loss_history.append(loss.item())

    def predict_task(self, task: EvalTask) -> np.ndarray:
        if self.network is None:
            raise RuntimeError("GraphRec: fit() must run before predict_task()")
        pairs = np.stack([
            np.full(len(task.query_items), task.user, dtype=np.int64),
            task.query_items,
        ], axis=1)
        with nn.no_grad():
            scores = self._predict_pairs(pairs).data
        return scores.reshape(-1)
