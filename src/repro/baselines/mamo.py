"""MAMO — Memory-Augmented Meta-Optimization (Dong et al., KDD 2020) [24].

Extends MAML with two memories: a *feature-specific* memory whose attention
over the user's profile embedding produces a personalised initialisation
offset for the decision layers' first bias (so atypical users do not start
adaptation from the global average), and the profile-key memory itself.
Both memory matrices are meta-parameters updated by the outer loop.  The
inner loop then adapts the decision layers as in MeLU (first-order).

The original's second, task-specific memory caches full fast weights per
user cluster; its effect — personalised initialisation — is captured by the
bias memory here, keeping the numpy implementation tractable (noted in
DESIGN.md).  MAMO remains the slowest model at test time (Fig. 6) because
of the per-task memory addressing plus adaptation.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder
from .meta import Episode, EpisodicMetaModel

__all__ = ["MAMO"]


class _MAMONetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 num_slots: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        in_dim = self.encoder.user_dim + self.encoder.item_dim
        self.layer1 = nn.Linear(in_dim, hidden, rng)
        self.layer2 = nn.Linear(hidden, hidden // 2, rng)
        self.layer3 = nn.Linear(hidden // 2, 1, rng)
        # Feature-specific memory: profile keys and bias values.
        self.memory_keys = nn.Parameter(nn.init.normal((num_slots, self.encoder.user_dim), rng, std=0.1))
        self.memory_values = nn.Parameter(nn.init.normal((num_slots, hidden), rng, std=0.01))
        self.hidden = hidden

    def personalized_bias(self, user: int) -> nn.Tensor:
        """Attention read of the bias memory keyed by the user profile."""
        profile = self.encoder.encode_users(np.array([user]))  # (1, user_dim)
        scores = profile @ self.memory_keys.T  # (1, slots)
        weights = nn.functional.softmax(scores, axis=-1)
        return (weights @ self.memory_values).reshape(self.hidden)

    def forward(self, users: np.ndarray, items: np.ndarray,
                bias: nn.Tensor | None = None) -> nn.Tensor:
        features = nn.functional.concatenate(
            [self.encoder.encode_users(users), self.encoder.encode_items(items)], axis=-1
        )
        h = self.layer1(features)
        if bias is not None:
            h = h + bias
        h = h.relu()
        h = self.layer2(h).relu()
        return self.layer3(h)

    def decision_parameters(self) -> list[nn.Parameter]:
        return (list(self.layer1.parameters()) + list(self.layer2.parameters())
                + list(self.layer3.parameters()))


class MAMO(EpisodicMetaModel):
    """Memory-augmented MAML for cold-start."""

    name = "MAMO"

    def __init__(self, dataset: RatingDataset, attr_dim: int = 8, hidden: int = 32,
                 num_slots: int = 8, inner_steps: int = 3, inner_lr: float = 5e-2,
                 **kwargs):
        super().__init__(dataset, **kwargs)
        self.attr_dim = attr_dim
        self.hidden = hidden
        self.num_slots = num_slots
        self.inner_steps = inner_steps
        self.inner_lr = inner_lr

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _MAMONetwork(self.dataset, self.attr_dim, self.hidden,
                                    self.num_slots, rng)
        return self.network

    # ------------------------------------------------------------------ #
    def _loss_on(self, triples: np.ndarray, bias: nn.Tensor | None) -> nn.Tensor:
        users = triples[:, 0].astype(np.int64)
        items = triples[:, 1].astype(np.int64)
        predicted = self.network(users, items, bias=bias).sigmoid() * self.alpha
        return nn.functional.mse_loss(predicted.reshape(-1), triples[:, 2])

    def episode_update(self, episode: Episode, optimizer: nn.Optimizer) -> float:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        self.inner_adapt(
            decision,
            lambda: self._loss_on(episode.support, self.network.personalized_bias(episode.user)),
            self.inner_steps, self.inner_lr,
        )
        optimizer.zero_grad()
        # The memory read participates in the query loss, so the outer step
        # trains the memories alongside the initialisation.
        bias = self.network.personalized_bias(episode.user)
        query_loss = self._loss_on(episode.query, bias)
        query_loss.backward()
        self.restore_params(decision, saved)
        optimizer.step()
        return query_loss.item()

    def adapt_and_score(self, support: np.ndarray, user: int,
                        query_items: np.ndarray) -> np.ndarray:
        decision = self.network.decision_parameters()
        saved = self.save_params(decision)
        if support.size:
            self.inner_adapt(
                decision,
                lambda: self._loss_on(support, self.network.personalized_bias(user)),
                self.inner_steps, self.inner_lr,
            )
        users = np.full(len(query_items), user, dtype=np.int64)
        with nn.no_grad():
            bias = self.network.personalized_bias(user)
            scores = (self.network(users, query_items, bias=bias).sigmoid() * self.alpha).data
        self.restore_params(decision, saved)
        return scores.reshape(-1)
