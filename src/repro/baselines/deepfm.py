"""DeepFM (Guo et al., IJCAI 2017) [26].

Combines a factorisation machine — first-order per-value weights plus
second-order pairwise interactions of field embeddings, computed with the
``0.5 · ((Σv)² − Σv²)`` identity — with a deep MLP over the same embeddings,
sharing the embedding tables between both components as in the original.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder, PairwiseNeuralModel

__all__ = ["DeepFM"]


class _DeepFMNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        self.first_order_user = nn.ModuleList(
            nn.Embedding(card, 1, rng) for card in dataset.user_attribute_cards
        )
        self.first_order_item = nn.ModuleList(
            nn.Embedding(card, 1, rng) for card in dataset.item_attribute_cards
        )
        self.bias = nn.Parameter(np.zeros(1))
        num_fields = self.encoder.num_user_fields + self.encoder.num_item_fields
        self.deep = nn.MLP([num_fields * attr_dim, hidden, hidden // 2, 1], rng)
        self._user_attributes = dataset.user_attributes
        self._item_attributes = dataset.item_attributes

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        first = self.bias
        for k, table in enumerate(self.first_order_user):
            first = first + table(self._user_attributes[users, k])
        for k, table in enumerate(self.first_order_item):
            first = first + table(self._item_attributes[items, k])

        fields = self.encoder.field_embeddings(users, items)  # (b, fields, f)
        summed = fields.sum(axis=1)            # (b, f)
        squared_sum = summed * summed
        sum_squared = (fields * fields).sum(axis=1)
        second = 0.5 * (squared_sum - sum_squared).sum(axis=-1, keepdims=True)

        b = fields.shape[0]
        deep = self.deep(fields.reshape(b, -1))
        return first + second + deep


class DeepFM(PairwiseNeuralModel):
    """Factorisation machine + deep network with shared embeddings."""

    name = "DeepFM"

    def __init__(self, dataset: RatingDataset, hidden: int = 32, **kwargs):
        super().__init__(dataset, **kwargs)
        self.hidden = hidden

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _DeepFMNetwork(self.dataset, self.attr_dim, self.hidden, rng)
        return self.network

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        return self.network(users, items)
