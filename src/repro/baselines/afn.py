"""AFN — Adaptive Factorization Network (Cheng et al., AAAI 2020) [27].

AFN's logarithmic transformation layer (LNN) learns arbitrary-order cross
features: each logarithmic neuron computes ``exp(Σ_j w_j · log e_j)`` — a
product of field embeddings raised to learned powers.  Embeddings pass
through ``log`` after an absolute-value floor (the original keeps embeddings
positive; the floor serves the same purpose), then an MLP scores the stacked
cross features.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder, PairwiseNeuralModel

__all__ = ["AFN"]


class _AFNNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, num_log_neurons: int,
                 hidden: int, rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        num_fields = self.encoder.num_user_fields + self.encoder.num_item_fields
        # LNN weights: (fields, neurons) — applied to log-embeddings.
        self.log_weights = nn.Parameter(
            nn.init.normal((num_fields, num_log_neurons), rng, std=0.1)
        )
        self.mlp = nn.MLP([num_log_neurons * attr_dim, hidden, 1], rng)

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        fields = self.encoder.field_embeddings(users, items)  # (b, fields, f)
        positive = fields.abs().clip(1e-4, 1e4)
        logged = positive.log()  # (b, fields, f)
        # (b, f, fields) @ (fields, neurons) -> (b, f, neurons)
        crossed = logged.swapaxes(1, 2) @ self.log_weights
        activated = crossed.clip(-15.0, 15.0).exp()
        b = fields.shape[0]
        return self.mlp(activated.swapaxes(1, 2).reshape(b, -1))


class AFN(PairwiseNeuralModel):
    """Adaptive-order feature interactions via logarithmic neurons."""

    name = "AFN"

    def __init__(self, dataset: RatingDataset, num_log_neurons: int = 8,
                 hidden: int = 32, **kwargs):
        super().__init__(dataset, **kwargs)
        self.num_log_neurons = num_log_neurons
        self.hidden = hidden

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _AFNNetwork(self.dataset, self.attr_dim,
                                   self.num_log_neurons, self.hidden, rng)
        return self.network

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        return self.network(users, items)
