"""Wide&Deep (Cheng et al., DLRS 2016) [25].

The *wide* component is a linear model over the raw one-hot attribute
encodings (implemented as rank-1 embedding lookups summed per field, which
is exactly a sparse linear layer); the *deep* component is an MLP over the
dense attribute embeddings.  Their logits are summed.
"""

from __future__ import annotations

import numpy as np

from .. import nn
from ..data.schema import RatingDataset
from .base import PairEncoder, PairwiseNeuralModel

__all__ = ["WideDeep"]


class _WideDeepNetwork(nn.Module):
    def __init__(self, dataset: RatingDataset, attr_dim: int, hidden: int,
                 rng: np.random.Generator):
        super().__init__()
        self.encoder = PairEncoder(dataset, attr_dim, rng)
        # Wide part: one scalar weight per attribute value.
        self.wide_user = nn.ModuleList(
            nn.Embedding(card, 1, rng) for card in dataset.user_attribute_cards
        )
        self.wide_item = nn.ModuleList(
            nn.Embedding(card, 1, rng) for card in dataset.item_attribute_cards
        )
        self.wide_bias = nn.Parameter(np.zeros(1))
        self.deep = nn.MLP(
            [self.encoder.user_dim + self.encoder.item_dim, hidden, hidden // 2, 1], rng
        )
        self._user_attributes = dataset.user_attributes
        self._item_attributes = dataset.item_attributes

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        wide = self.wide_bias
        for k, table in enumerate(self.wide_user):
            wide = wide + table(self._user_attributes[users, k])
        for k, table in enumerate(self.wide_item):
            wide = wide + table(self._item_attributes[items, k])
        dense = nn.functional.concatenate(
            [self.encoder.encode_users(users), self.encoder.encode_items(items)], axis=-1
        )
        return wide + self.deep(dense)


class WideDeep(PairwiseNeuralModel):
    """Wide linear memorisation + deep generalisation."""

    name = "Wide&Deep"

    def __init__(self, dataset: RatingDataset, hidden: int = 32, **kwargs):
        super().__init__(dataset, **kwargs)
        self.hidden = hidden

    def build(self, rng: np.random.Generator) -> nn.Module:
        self.network = _WideDeepNetwork(self.dataset, self.attr_dim, self.hidden, rng)
        return self.network

    def forward(self, users: np.ndarray, items: np.ndarray) -> nn.Tensor:
        return self.network(users, items)
