"""``repro.baselines`` — the ten comparison systems of §VI-A.

* CF family: :class:`NeuMF`, :class:`WideDeep`, :class:`DeepFM`, :class:`AFN`.
* Social: :class:`GraphRec` (needs a social graph — Douban only).
* HIN family: :class:`GraphHINGE`, :class:`MetaHIN` (rich attributes —
  MovieLens only).
* Meta-learning: :class:`MeLU`, :class:`MAMO`, :class:`TaNP`.

All satisfy the :class:`~repro.baselines.base.RatingModel` contract so the
evaluation protocol treats every system identically.
"""

from .afn import AFN
from .base import PairEncoder, PairwiseNeuralModel, RatingModel, combine_support_ratings
from .deepfm import DeepFM
from .graphhinge import GraphHINGE
from .graphrec import GraphRec
from .igmc import IGMC
from .mamo import MAMO
from .melu import MeLU
from .meta import Episode, EpisodicMetaModel, group_ratings_by_user
from .metahin import MetaHIN
from .neumf import NeuMF
from .tanp import TaNP
from .trivial import GlobalMeanScorer, ItemMeanScorer, RandomScorer, UserMeanScorer
from .widedeep import WideDeep

__all__ = [
    "RatingModel",
    "PairEncoder",
    "PairwiseNeuralModel",
    "combine_support_ratings",
    "Episode",
    "EpisodicMetaModel",
    "group_ratings_by_user",
    "NeuMF",
    "WideDeep",
    "DeepFM",
    "AFN",
    "GraphRec",
    "GraphHINGE",
    "IGMC",
    "MetaHIN",
    "MeLU",
    "MAMO",
    "TaNP",
    "RandomScorer",
    "GlobalMeanScorer",
    "ItemMeanScorer",
    "UserMeanScorer",
]
