"""HIRE: Heterogeneous Interaction Modeling for Cold-Start Rating Prediction.

A full reproduction of the ICDE 2025 paper "All-in-One: Heterogeneous
Interaction Modeling for Cold-Start Rating Prediction" (Fang et al.),
including:

* ``repro.nn`` — a from-scratch autograd/NN substrate on numpy (MHSA, LAMB,
  Lookahead, schedulers) replacing PyTorch,
* ``repro.data`` — dataset schema, synthetic Table II workloads, cold-start
  splits, the rating bipartite graph and an HIN builder,
* ``repro.core`` — HIRE itself: context sampling, the Heterogeneous
  Interaction Module, training (Algorithm 1) and cold-start inference,
* ``repro.baselines`` — the ten comparison systems of §VI-A,
* ``repro.eval`` — Precision/NDCG/MAP@k and the uniform protocol,
* ``repro.experiments`` — a registry regenerating every table and figure,
* ``repro.obs`` — telemetry: profiling spans, metrics, structured run logs,
* ``repro.serve`` — online inference: model registry with hot swap, request
  micro-batching, context caching, and backpressure,
* ``repro.online`` — the incremental-learning loop: rating-delta log,
  bounded bit-reproducible fine-tune rounds, probe-gated promotion with
  rollback, zero-downtime hot swaps,
* ``repro.pipeline`` — parallel training-context prefetching, bit-identical
  to sequential sampling,
* ``repro.concurrency`` — the bounded-queue / worker-pool primitives shared
  by the serving and pipeline layers.

Quickstart::

    from repro.data import movielens_like, make_cold_start_split
    from repro.core import HIRE, HIREConfig, HIRETrainer, TrainerConfig

    dataset = movielens_like(num_users=200, num_items=150, seed=0)
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    model = HIRE(dataset, HIREConfig(num_blocks=3))
    HIRETrainer(model, split, config=TrainerConfig(steps=100)).fit()
"""

__version__ = "1.0.0"

from . import baselines, concurrency, core, data, eval, experiments, nn, obs
from . import online, pipeline, serve

__all__ = ["nn", "data", "core", "baselines", "eval", "experiments", "obs",
           "serve", "online", "pipeline", "concurrency", "__version__"]
