"""Loaders for real Douban and Bookcrossing dumps, when present on disk.

Like :mod:`repro.data.movielens`, these convert the public release formats
into :class:`~repro.data.schema.RatingDataset` so the whole pipeline runs on
genuine data unchanged:

* **Douban** (Zhong et al.'s composite-network extraction): a ratings file
  of ``user item rating`` rows plus an optional ``user user`` friendship
  file.  Users/items carry no attributes — their IDs become the unique
  attribute, as §VI-A prescribes.
* **Bookcrossing** (Ziegler et al.): the ``BX-*.csv`` trio with
  ``;``-separated, quoted fields.  User age buckets and publication-year
  eras become the single attribute per side (Table II).
"""

from __future__ import annotations

import csv
from pathlib import Path

import numpy as np

from .schema import RatingDataset

__all__ = ["load_douban", "load_bookcrossing"]


def load_douban(ratings_path: str | Path, social_path: str | Path | None = None,
                rating_range: tuple[float, float] = (1.0, 5.0)) -> RatingDataset:
    """Parse whitespace-separated ``user item rating`` rows (+ friendships).

    IDs are re-indexed densely in first-appearance order.  Ratings outside
    ``rating_range`` are clipped (the public dump contains a few zeros).
    """
    ratings_path = Path(ratings_path)
    user_index: dict[str, int] = {}
    item_index: dict[str, int] = {}
    triples: list[tuple[int, int, float]] = []
    low, high = rating_range

    with open(ratings_path, encoding="utf-8") as handle:
        for line in handle:
            parts = line.split()
            if len(parts) < 3:
                continue
            user = user_index.setdefault(parts[0], len(user_index))
            item = item_index.setdefault(parts[1], len(item_index))
            value = min(max(float(parts[2]), low), high)
            triples.append((user, item, value))

    if not triples:
        raise ValueError(f"no ratings parsed from {ratings_path}")

    social = None
    if social_path is not None:
        edges: set[tuple[int, int]] = set()
        with open(social_path, encoding="utf-8") as handle:
            for line in handle:
                parts = line.split()
                if len(parts) < 2:
                    continue
                if parts[0] in user_index and parts[1] in user_index:
                    a, b = user_index[parts[0]], user_index[parts[1]]
                    if a != b:
                        edges.add((min(a, b), max(a, b)))
        social = np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)

    num_users, num_items = len(user_index), len(item_index)
    return RatingDataset(
        name="douban",
        num_users=num_users,
        num_items=num_items,
        user_attributes=np.arange(num_users).reshape(-1, 1),
        item_attributes=np.arange(num_items).reshape(-1, 1),
        user_attribute_cards=(num_users,),
        item_attribute_cards=(num_items,),
        user_attribute_names=("user_id",),
        item_attribute_names=("item_id",),
        ratings=np.asarray(triples, dtype=np.float64),
        rating_range=rating_range,
        social_edges=social,
        metadata={"source": str(ratings_path)},
    )


_BX_AGE_BUCKETS = (18, 25, 35, 45, 55, 65, 120)


def load_bookcrossing(root: str | Path, min_rating: float = 1.0) -> RatingDataset:
    """Parse a BX-CSV directory (users, books, ratings).

    Implicit zero ratings are dropped (the paper uses the 1-10 explicit
    scale).  Ages bucket into 8 classes (unknown + 7 ranges); publication
    years into 20 half-decade eras ending at 2005.
    """
    root = Path(root)
    users_file = _find_bx_file(root, "BX-Users.csv")
    books_file = _find_bx_file(root, "BX-Books.csv")
    ratings_file = _find_bx_file(root, "BX-Book-Ratings.csv")

    user_index: dict[str, int] = {}
    ages: list[int] = []
    for row in _read_bx(users_file):
        user_index[row[0]] = len(user_index)
        # BX-Users.csv columns: User-ID; Location; Age
        ages.append(_age_bucket(row[2] if len(row) > 2 else ""))

    item_index: dict[str, int] = {}
    eras: list[int] = []
    for row in _read_bx(books_file):
        item_index[row[0]] = len(item_index)
        year_field = row[3] if len(row) > 3 else ""
        eras.append(_year_era(year_field))

    triples: list[tuple[int, int, float]] = []
    for row in _read_bx(ratings_file):
        if len(row) < 3 or row[0] not in user_index or row[1] not in item_index:
            continue
        try:
            value = float(row[2])
        except ValueError:
            continue
        if value < min_rating:
            continue  # implicit feedback
        triples.append((user_index[row[0]], item_index[row[1]], min(value, 10.0)))

    if not triples:
        raise ValueError(f"no explicit ratings parsed under {root}")

    return RatingDataset(
        name="bookcrossing",
        num_users=len(user_index),
        num_items=len(item_index),
        user_attributes=np.asarray(ages, dtype=np.int64).reshape(-1, 1),
        item_attributes=np.asarray(eras, dtype=np.int64).reshape(-1, 1),
        user_attribute_cards=(len(_BX_AGE_BUCKETS) + 1,),
        item_attribute_cards=(20,),
        user_attribute_names=("age",),
        item_attribute_names=("publication_year",),
        ratings=np.asarray(triples, dtype=np.float64),
        rating_range=(1.0, 10.0),
        metadata={"source": str(root)},
    )


def _find_bx_file(root: Path, name: str) -> Path:
    path = root / name
    if not path.exists():
        raise FileNotFoundError(f"missing {name} under {root}")
    return path


def _read_bx(path: Path):
    """BX CSVs: ';'-separated, double-quoted, latin-1, header row."""
    with open(path, encoding="latin-1", newline="") as handle:
        reader = csv.reader(handle, delimiter=";", quotechar='"')
        header_skipped = False
        for row in reader:
            if not header_skipped:
                header_skipped = True
                continue
            if row:
                yield row


def _age_bucket(raw: str) -> int:
    """0 = unknown, 1..7 = age ranges."""
    try:
        age = float(raw)
    except (TypeError, ValueError):
        return 0
    if not 4 < age < 120:
        return 0
    for bucket, limit in enumerate(_BX_AGE_BUCKETS, start=1):
        if age <= limit:
            return bucket
    return len(_BX_AGE_BUCKETS)


def _year_era(raw: str) -> int:
    """20 half-decade eras ending at 2005; unknown years land mid-scale."""
    try:
        year = int(raw)
    except (TypeError, ValueError):
        return 10
    if year < 1900 or year > 2010:
        return 10
    return int(np.clip((year - 1906) // 5, 0, 19))
