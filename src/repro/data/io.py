"""Dataset persistence: save/load a :class:`RatingDataset` as ``.npz``.

Useful for freezing a synthetic workload so experiments across machines and
sessions run on byte-identical data, and for caching converted real dumps.
"""

from __future__ import annotations

import json
from pathlib import Path

import numpy as np

from .schema import RatingDataset

__all__ = ["save_dataset", "load_dataset"]

_META_KEY = "__meta__"


def save_dataset(path: str | Path, dataset: RatingDataset) -> None:
    """Serialise a dataset (arrays + JSON header) to one ``.npz`` file."""
    path = Path(path)
    header = {
        "name": dataset.name,
        "num_users": dataset.num_users,
        "num_items": dataset.num_items,
        "user_attribute_cards": list(dataset.user_attribute_cards),
        "item_attribute_cards": list(dataset.item_attribute_cards),
        "user_attribute_names": list(dataset.user_attribute_names),
        "item_attribute_names": list(dataset.item_attribute_names),
        "rating_range": list(dataset.rating_range),
        "metadata": dataset.metadata,
        "has_social": dataset.social_edges is not None,
    }
    arrays = {
        "user_attributes": dataset.user_attributes,
        "item_attributes": dataset.item_attributes,
        "ratings": dataset.ratings,
        _META_KEY: np.frombuffer(json.dumps(header).encode(), dtype=np.uint8),
    }
    if dataset.social_edges is not None:
        arrays["social_edges"] = dataset.social_edges
    path.parent.mkdir(parents=True, exist_ok=True)
    np.savez_compressed(path, **arrays)


def load_dataset(path: str | Path) -> RatingDataset:
    """Load a dataset written by :func:`save_dataset`."""
    with np.load(Path(path)) as archive:
        header = json.loads(bytes(archive[_META_KEY].tobytes()).decode())
        social = archive["social_edges"].copy() if header["has_social"] else None
        return RatingDataset(
            name=header["name"],
            num_users=header["num_users"],
            num_items=header["num_items"],
            user_attributes=archive["user_attributes"].copy(),
            item_attributes=archive["item_attributes"].copy(),
            user_attribute_cards=tuple(header["user_attribute_cards"]),
            item_attribute_cards=tuple(header["item_attribute_cards"]),
            user_attribute_names=tuple(header["user_attribute_names"]),
            item_attribute_names=tuple(header["item_attribute_names"]),
            ratings=archive["ratings"].copy(),
            rating_range=tuple(header["rating_range"]),
            social_edges=social,
            metadata=header["metadata"],
        )
