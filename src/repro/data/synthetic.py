"""Synthetic rating workloads mirroring the paper's three datasets.

The real MovieLens-1M / Douban / Bookcrossing dumps cannot be downloaded in
this environment, so this module generates datasets from a *ground-truth
latent-factor model* whose observable profile matches Table II of the paper
(attribute schemas, rating ranges, presence of a social graph), scaled down
so experiments run on CPU:

1. Users and items belong to latent clusters with centers in ``R^d``; an
   entity's latent vector is its cluster center plus noise.  The true rating
   is an affine map of ``z_u · z_i`` plus observation noise, rounded to the
   dataset's rating scale.  Collaborative structure therefore exists for CF
   and attention models to exploit.
2. Categorical attributes are sampled conditioned on the cluster with a
   configurable correlation, so attributes carry genuine preference signal —
   the property HIRE's attribute-level attention (MBA) and the HIN baselines
   rely on.
3. Item exposure follows a log-normal popularity distribution and users
   preferentially rate items from clusters they like, reproducing the skewed,
   sparse bipartite graphs of real recommender data.
4. The Douban-like dataset attaches a homophilous user-user friendship graph
   (users in the same cluster befriend each other more often), giving the
   social-recommendation baseline its side information.

Because every generator is seeded, the whole experiment suite is
deterministic end to end.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

from .schema import RatingDataset

__all__ = [
    "AttributeSpec",
    "SyntheticConfig",
    "generate",
    "movielens_like",
    "bookcrossing_like",
    "douban_like",
    "dataset_by_name",
]


@dataclass(frozen=True)
class AttributeSpec:
    """One categorical attribute column.

    ``cluster_correlation`` is the probability that the attribute code is a
    fixed function of the entity's latent cluster (signal) rather than drawn
    uniformly at random (noise).
    """

    name: str
    cardinality: int
    cluster_correlation: float = 0.7


@dataclass
class SyntheticConfig:
    """Full recipe for one synthetic dataset."""

    name: str
    num_users: int
    num_items: int
    user_attrs: list[AttributeSpec] = field(default_factory=list)
    item_attrs: list[AttributeSpec] = field(default_factory=list)
    rating_range: tuple[float, float] = (1.0, 5.0)
    latent_dim: int = 8
    num_user_clusters: int = 6
    num_item_clusters: int = 8
    ratings_per_user: float = 25.0
    popularity_sigma: float = 1.0
    noise_std: float = 0.35
    # Idiosyncratic per-entity effects: a user's harshness and an item's
    # intrinsic quality.  These are NOT derivable from attributes — only
    # observed ratings reveal them — which is precisely the collaborative
    # signal cold-start models must extract from their context/support.
    user_bias_std: float = 0.5
    item_bias_std: float = 1.0
    # How much of an entity's latent taste comes from its (attribute-
    # correlated) cluster vs its own individual draw.  Real cold-start data
    # has weak user-side attribute signal — personal taste dominates — so
    # user vectors default to individual-dominated; item vectors keep a
    # stronger cluster share (genre really does describe a movie) but still
    # carry individual quality that only observed ratings reveal.
    user_cluster_scale: float = 0.5
    user_individual_scale: float = 1.0
    item_cluster_scale: float = 0.7
    item_individual_scale: float = 0.8
    social_avg_degree: float = 0.0
    social_homophily: float = 0.8
    seed: int = 0

    def __post_init__(self):
        if self.num_users < 2 or self.num_items < 2:
            raise ValueError("need at least 2 users and 2 items")
        if self.rating_range[0] >= self.rating_range[1]:
            raise ValueError("rating_range must be (low, high) with low < high")


def generate(config: SyntheticConfig) -> RatingDataset:
    """Materialise a :class:`RatingDataset` from a :class:`SyntheticConfig`."""
    rng = np.random.default_rng(config.seed)
    d = config.latent_dim

    user_clusters = rng.integers(0, config.num_user_clusters, size=config.num_users)
    item_clusters = rng.integers(0, config.num_item_clusters, size=config.num_items)
    user_centers = rng.normal(0.0, 1.0, size=(config.num_user_clusters, d))
    item_centers = rng.normal(0.0, 1.0, size=(config.num_item_clusters, d))
    z_users = (config.user_cluster_scale * user_centers[user_clusters]
               + config.user_individual_scale * rng.normal(0.0, 1.0, size=(config.num_users, d)))
    z_items = (config.item_cluster_scale * item_centers[item_clusters]
               + config.item_individual_scale * rng.normal(0.0, 1.0, size=(config.num_items, d)))

    user_attributes, user_cards, user_names = _sample_attributes(
        config.user_attrs, user_clusters, config.num_users, rng
    )
    item_attributes, item_cards, item_names = _sample_attributes(
        config.item_attrs, item_clusters, config.num_items, rng
    )
    # Datasets without side information use the entity id as its unique
    # attribute (paper §VI-A, Douban handling).
    if user_attributes is None:
        user_attributes = np.arange(config.num_users).reshape(-1, 1)
        user_cards, user_names = (config.num_users,), ("user_id",)
    if item_attributes is None:
        item_attributes = np.arange(config.num_items).reshape(-1, 1)
        item_cards, item_names = (config.num_items,), ("item_id",)

    ratings = _sample_ratings(config, rng, z_users, z_items)
    social = _sample_social(config, rng, user_clusters) if config.social_avg_degree > 0 else None

    return RatingDataset(
        name=config.name,
        num_users=config.num_users,
        num_items=config.num_items,
        user_attributes=user_attributes,
        item_attributes=item_attributes,
        user_attribute_cards=user_cards,
        item_attribute_cards=item_cards,
        user_attribute_names=user_names,
        item_attribute_names=item_names,
        ratings=ratings,
        rating_range=config.rating_range,
        social_edges=social,
        metadata={
            "generator": "latent-factor",
            "seed": config.seed,
            "latent_dim": d,
            "user_clusters": config.num_user_clusters,
            "item_clusters": config.num_item_clusters,
        },
    )


def _sample_attributes(specs, clusters, count, rng):
    if not specs:
        return None, (), ()
    columns = []
    for spec in specs:
        if spec.cardinality < 1:
            raise ValueError(f"attribute {spec.name} needs cardinality >= 1")
        # Fixed random mapping cluster -> code, shared by all entities.
        mapping = rng.integers(0, spec.cardinality, size=clusters.max() + 1)
        signal = mapping[clusters]
        noise = rng.integers(0, spec.cardinality, size=count)
        use_signal = rng.random(count) < spec.cluster_correlation
        columns.append(np.where(use_signal, signal, noise))
    attributes = np.stack(columns, axis=1)
    cards = tuple(spec.cardinality for spec in specs)
    names = tuple(spec.name for spec in specs)
    return attributes, cards, names


def _true_scores(config, z_users, z_items, user_bias, item_bias):
    """Affinity of every user for every item on an unbounded scale.

    ``latent · latent`` carries the cluster/attribute-correlated taste;
    the bias terms carry entity-level effects invisible to attributes.
    """
    return z_users @ z_items.T + user_bias[:, None] + item_bias[None, :]


def _sample_ratings(config, rng, z_users, z_items) -> np.ndarray:
    user_bias = rng.normal(0.0, config.user_bias_std, size=config.num_users)
    item_bias = rng.normal(0.0, config.item_bias_std, size=config.num_items)
    scores = _true_scores(config, z_users, z_items, user_bias, item_bias)
    mean, std = scores.mean(), scores.std() + 1e-9
    low, high = config.rating_range
    mid = (low + high) / 2.0
    spread = (high - low) / 4.0  # +-2 sigma spans the rating scale

    popularity = rng.lognormal(0.0, config.popularity_sigma, size=config.num_items)
    popularity /= popularity.sum()

    triples: list[tuple[int, int, float]] = []
    for user in range(config.num_users):
        count = 1 + rng.poisson(max(config.ratings_per_user - 1, 0.0))
        count = min(count, config.num_items)
        # Exposure mixes popularity with the user's own taste, so the
        # bipartite graph has both hubs and preference locality.
        taste = scores[user] - scores[user].min() + 1e-6
        weights = popularity * taste
        weights /= weights.sum()
        items = rng.choice(config.num_items, size=count, replace=False, p=weights)
        standardized = (scores[user, items] - mean) / std
        values = mid + spread * standardized + rng.normal(0.0, config.noise_std, size=count)
        values = np.clip(np.rint(values), low, high)
        triples.extend((user, int(item), float(v)) for item, v in zip(items, values))
    return np.asarray(triples, dtype=np.float64)


def _sample_social(config, rng, user_clusters) -> np.ndarray:
    """Homophilous friendship graph: same-cluster pairs befriend more often."""
    n = config.num_users
    target_edges = int(config.social_avg_degree * n / 2)
    edges: set[tuple[int, int]] = set()
    attempts = 0
    while len(edges) < target_edges and attempts < 50 * target_edges:
        attempts += 1
        a = int(rng.integers(0, n))
        if rng.random() < config.social_homophily:
            same = np.flatnonzero(user_clusters == user_clusters[a])
            b = int(same[rng.integers(0, len(same))])
        else:
            b = int(rng.integers(0, n))
        if a == b:
            continue
        edges.add((min(a, b), max(a, b)))
    return np.asarray(sorted(edges), dtype=np.int64).reshape(-1, 2)


# ---------------------------------------------------------------------- #
# Named dataset profiles (Table II, scaled for CPU)
# ---------------------------------------------------------------------- #
def movielens_like(num_users: int = 300, num_items: int = 200, seed: int = 0,
                   ratings_per_user: float = 30.0) -> RatingDataset:
    """MovieLens-1M profile: rich attributes on both sides, ratings 1-5."""
    config = SyntheticConfig(
        name="movielens-like",
        num_users=num_users,
        num_items=num_items,
        user_attrs=[
            AttributeSpec("age", 7, 0.7),
            AttributeSpec("occupation", 21, 0.6),
            AttributeSpec("gender", 2, 0.6),
            AttributeSpec("zip_region", 10, 0.2),
        ],
        item_attrs=[
            AttributeSpec("rate", 5, 0.5),
            AttributeSpec("genre", 18, 0.8),
            AttributeSpec("director", 40, 0.6),
            AttributeSpec("actor", 60, 0.6),
        ],
        rating_range=(1.0, 5.0),
        ratings_per_user=ratings_per_user,
        seed=seed,
    )
    return generate(config)


def bookcrossing_like(num_users: int = 300, num_items: int = 260, seed: int = 0,
                      ratings_per_user: float = 12.0) -> RatingDataset:
    """Bookcrossing profile: one attribute per side, ratings 1-10, sparse."""
    config = SyntheticConfig(
        name="bookcrossing-like",
        num_users=num_users,
        num_items=num_items,
        user_attrs=[AttributeSpec("age", 10, 0.6)],
        item_attrs=[AttributeSpec("publication_year", 20, 0.6)],
        rating_range=(1.0, 10.0),
        ratings_per_user=ratings_per_user,
        popularity_sigma=1.3,
        seed=seed,
    )
    return generate(config)


def douban_like(num_users: int = 300, num_items: int = 320, seed: int = 0,
                ratings_per_user: float = 18.0) -> RatingDataset:
    """Douban profile: no attributes (ID embeddings), friendship graph."""
    config = SyntheticConfig(
        name="douban-like",
        num_users=num_users,
        num_items=num_items,
        user_attrs=[],
        item_attrs=[],
        rating_range=(1.0, 5.0),
        ratings_per_user=ratings_per_user,
        social_avg_degree=8.0,
        seed=seed,
    )
    return generate(config)


_PROFILES = {
    "movielens": movielens_like,
    "bookcrossing": bookcrossing_like,
    "douban": douban_like,
}


def dataset_by_name(name: str, **kwargs) -> RatingDataset:
    """Build a named dataset profile; ``name`` ∈ {movielens, bookcrossing, douban}."""
    key = name.lower()
    if key not in _PROFILES:
        raise KeyError(f"unknown dataset profile {name!r}; choose from {sorted(_PROFILES)}")
    return _PROFILES[key](**kwargs)
