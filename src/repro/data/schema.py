"""Dataset schema: the container every other subsystem consumes.

A :class:`RatingDataset` holds users, items, their categorical attributes and
the observed rating triples.  It deliberately mirrors the structure of the
paper's three datasets (Table II):

* **MovieLens-1M-like** — users with age / occupation / gender / zip-region,
  items with rate / genre / director / actor, ratings 1-5.
* **Douban-like** — no attributes (user/item IDs become the unique attribute,
  exactly as §VI-A prescribes), ratings 1-5, plus a user-user friendship
  graph consumed by the social-recommendation baseline.
* **Bookcrossing-like** — a single user attribute (age) and item attribute
  (publication year), ratings 1-10.
"""

from __future__ import annotations

from dataclasses import dataclass, field

import numpy as np

__all__ = ["RatingDataset", "USER_COLUMN", "ITEM_COLUMN", "RATING_COLUMN"]

USER_COLUMN = 0
ITEM_COLUMN = 1
RATING_COLUMN = 2


@dataclass
class RatingDataset:
    """Users, items, attributes and observed ratings of one recommender system.

    Attributes
    ----------
    name:
        Human-readable dataset identifier (e.g. ``"movielens-like"``).
    num_users, num_items:
        Entity counts; user ids are ``0..num_users-1``, item ids likewise.
    user_attributes:
        Integer array ``(num_users, h_u)``; column ``k`` holds the categorical
        code of attribute ``k`` for every user.  When a dataset has no
        user-side information this is a single column of user ids.
    item_attributes:
        Integer array ``(num_items, h_i)`` with the same convention.
    user_attribute_cards, item_attribute_cards:
        Cardinality (number of distinct codes) of each attribute column —
        the one-hot dimensions of Eq. 7-8.
    user_attribute_names, item_attribute_names:
        Labels used in reports and the Fig. 9 case study.
    ratings:
        Float array ``(num_ratings, 3)`` of ``(user, item, rating)`` triples.
    rating_range:
        Inclusive ``(low, high)`` bounds of valid rating values; the model's
        output scale ``α`` derives from ``high``.
    social_edges:
        Optional ``(num_edges, 2)`` user-user friendship pairs (Douban only).
    """

    name: str
    num_users: int
    num_items: int
    user_attributes: np.ndarray
    item_attributes: np.ndarray
    user_attribute_cards: tuple[int, ...]
    item_attribute_cards: tuple[int, ...]
    ratings: np.ndarray
    rating_range: tuple[float, float]
    user_attribute_names: tuple[str, ...] = ()
    item_attribute_names: tuple[str, ...] = ()
    social_edges: np.ndarray | None = None
    metadata: dict = field(default_factory=dict)

    def __post_init__(self):
        self.user_attributes = np.asarray(self.user_attributes, dtype=np.int64)
        self.item_attributes = np.asarray(self.item_attributes, dtype=np.int64)
        self.ratings = np.asarray(self.ratings, dtype=np.float64)
        if self.user_attributes.shape[0] != self.num_users:
            raise ValueError("user_attributes row count != num_users")
        if self.item_attributes.shape[0] != self.num_items:
            raise ValueError("item_attributes row count != num_items")
        if self.ratings.ndim != 2 or self.ratings.shape[1] != 3:
            raise ValueError("ratings must be a (n, 3) array of (user, item, rating)")
        if len(self.user_attribute_cards) != self.user_attributes.shape[1]:
            raise ValueError("user_attribute_cards length mismatch")
        if len(self.item_attribute_cards) != self.item_attributes.shape[1]:
            raise ValueError("item_attribute_cards length mismatch")
        for col, card in enumerate(self.user_attribute_cards):
            column = self.user_attributes[:, col]
            if column.size and (column.min() < 0 or column.max() >= card):
                raise ValueError(f"user attribute {col} exceeds its cardinality {card}")
        for col, card in enumerate(self.item_attribute_cards):
            column = self.item_attributes[:, col]
            if column.size and (column.min() < 0 or column.max() >= card):
                raise ValueError(f"item attribute {col} exceeds its cardinality {card}")
        users = self.ratings[:, USER_COLUMN]
        items = self.ratings[:, ITEM_COLUMN]
        values = self.ratings[:, RATING_COLUMN]
        if users.size:
            if users.min() < 0 or users.max() >= self.num_users:
                raise ValueError("rating refers to unknown user id")
            if items.min() < 0 or items.max() >= self.num_items:
                raise ValueError("rating refers to unknown item id")
            low, high = self.rating_range
            if values.min() < low or values.max() > high:
                raise ValueError("rating value outside rating_range")
        if not self.user_attribute_names:
            self.user_attribute_names = tuple(
                f"user_attr_{k}" for k in range(self.user_attributes.shape[1])
            )
        if not self.item_attribute_names:
            self.item_attribute_names = tuple(
                f"item_attr_{k}" for k in range(self.item_attributes.shape[1])
            )

    # ------------------------------------------------------------------ #
    # Convenience accessors
    # ------------------------------------------------------------------ #
    @property
    def num_ratings(self) -> int:
        return self.ratings.shape[0]

    @property
    def num_user_attributes(self) -> int:
        return self.user_attributes.shape[1]

    @property
    def num_item_attributes(self) -> int:
        return self.item_attributes.shape[1]

    @property
    def density(self) -> float:
        """Fraction of the user-item matrix that is observed."""
        return self.num_ratings / float(self.num_users * self.num_items)

    def rating_users(self) -> np.ndarray:
        return self.ratings[:, USER_COLUMN].astype(np.int64)

    def rating_items(self) -> np.ndarray:
        return self.ratings[:, ITEM_COLUMN].astype(np.int64)

    def rating_values(self) -> np.ndarray:
        return self.ratings[:, RATING_COLUMN]

    def subset_ratings(self, mask: np.ndarray) -> np.ndarray:
        """Return the rating triples selected by a boolean mask."""
        return self.ratings[np.asarray(mask, dtype=bool)]

    def profile(self) -> dict:
        """Summary comparable to Table II of the paper."""
        return {
            "name": self.name,
            "num_users": self.num_users,
            "num_items": self.num_items,
            "num_ratings": self.num_ratings,
            "user_attributes": list(self.user_attribute_names),
            "item_attributes": list(self.item_attribute_names),
            "rating_range": self.rating_range,
            "density": self.density,
            "has_social": self.social_edges is not None,
        }
