"""Heterogeneous information network construction (for the HIN baselines).

GraphHINGE [21] and MetaHIN [33] consume a HIN whose node types extend past
users and items.  Following §VI-A of the paper, we build the network from
dataset attributes: every categorical attribute value becomes a typed node
(e.g. ``genre=3``), linked to the users/items that carry it, alongside
user-item rating edges.

The network is a :class:`networkx.Graph` with ``ntype`` node labels, plus
metapath utilities (e.g. ``U-I-U``, ``I-U-I``, ``U-A-U``) used by the
baselines' neighbourhood samplers.
"""

from __future__ import annotations

import networkx as nx
import numpy as np

from .schema import RatingDataset

__all__ = ["build_hin", "metapath_neighbors", "node_id"]


def node_id(ntype: str, index: int) -> tuple[str, int]:
    """Canonical node key: ('user', 3), ('item', 7), ('user_attr_age', 2)…"""
    return (ntype, int(index))


def build_hin(dataset: RatingDataset, ratings: np.ndarray | None = None) -> nx.Graph:
    """Build the HIN from a dataset and a set of visible rating triples.

    Attribute columns whose cardinality equals the entity count (i.e. pure
    ID attributes) are skipped — they carry no shared semantics.
    """
    if ratings is None:
        ratings = dataset.ratings
    graph = nx.Graph()
    for user in range(dataset.num_users):
        graph.add_node(node_id("user", user), ntype="user")
    for item in range(dataset.num_items):
        graph.add_node(node_id("item", item), ntype="item")

    for user, item, value in ratings:
        graph.add_edge(node_id("user", int(user)), node_id("item", int(item)),
                       etype="rates", rating=float(value))

    for col, (name, card) in enumerate(
        zip(dataset.user_attribute_names, dataset.user_attribute_cards)
    ):
        if card >= dataset.num_users:  # ID attribute, no semantics
            continue
        ntype = f"user_attr_{name}"
        for user in range(dataset.num_users):
            code = int(dataset.user_attributes[user, col])
            attr_node = node_id(ntype, code)
            if attr_node not in graph:
                graph.add_node(attr_node, ntype=ntype)
            graph.add_edge(node_id("user", user), attr_node, etype="has_attr")

    for col, (name, card) in enumerate(
        zip(dataset.item_attribute_names, dataset.item_attribute_cards)
    ):
        if card >= dataset.num_items:
            continue
        ntype = f"item_attr_{name}"
        for item in range(dataset.num_items):
            code = int(dataset.item_attributes[item, col])
            attr_node = node_id(ntype, code)
            if attr_node not in graph:
                graph.add_node(attr_node, ntype=ntype)
            graph.add_edge(node_id("item", item), attr_node, etype="has_attr")

    return graph


def metapath_neighbors(graph: nx.Graph, start: tuple[str, int], metapath: list[str],
                       rng: np.random.Generator, max_neighbors: int = 16) -> list[tuple[str, int]]:
    """Sample end-nodes reachable from ``start`` along a node-type metapath.

    ``metapath`` lists the node types after the start node, e.g.
    ``["item", "user"]`` walks user → item → user (the classic U-I-U path).
    At each hop, neighbours not matching the next type are filtered; if more
    than ``max_neighbors`` survive a uniform subsample keeps the frontier
    bounded (mirroring GraphHINGE's neighbourhood sampling).
    """
    frontier = [start]
    for next_type in metapath:
        candidates: list[tuple[str, int]] = []
        for node in frontier:
            for nb in graph.neighbors(node):
                if _matches_type(graph, nb, next_type):
                    candidates.append(nb)
        if not candidates:
            return []
        unique = sorted(set(candidates))
        if len(unique) > max_neighbors:
            picks = rng.choice(len(unique), size=max_neighbors, replace=False)
            unique = [unique[p] for p in sorted(picks)]
        frontier = unique
    return frontier


def _matches_type(graph: nx.Graph, node, wanted: str) -> bool:
    ntype = graph.nodes[node]["ntype"]
    if wanted == "attr":
        return ntype.startswith("user_attr_") or ntype.startswith("item_attr_")
    return ntype == wanted
