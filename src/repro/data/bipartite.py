"""User-item bipartite rating graph with fast neighbourhood queries.

HIRE's context sampler (§IV-B) walks this graph hop by hop from the cold
seed entities, so adjacency lookups must be O(1) per entity.  The graph is
built once from a rating triple array and kept immutable.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RatingGraph"]


class RatingGraph:
    """Immutable bipartite graph over (user, item, rating) triples."""

    def __init__(self, ratings: np.ndarray, num_users: int, num_items: int):
        ratings = np.asarray(ratings, dtype=np.float64)
        if ratings.size and ratings.ndim != 2:
            raise ValueError("ratings must be (n, 3)")
        if ratings.size == 0:
            ratings = ratings.reshape(0, 3)
        self.num_users = num_users
        self.num_items = num_items
        users = ratings[:, 0].astype(np.int64)
        items = ratings[:, 1].astype(np.int64)
        values = ratings[:, 2]

        self._user_items: list[np.ndarray] = [None] * num_users
        self._item_users: list[np.ndarray] = [None] * num_items
        order_u = np.argsort(users, kind="stable")
        self._fill_adjacency(self._user_items, users[order_u], items[order_u], num_users)
        order_i = np.argsort(items, kind="stable")
        self._fill_adjacency(self._item_users, items[order_i], users[order_i], num_items)

        self._rating_lookup: dict[tuple[int, int], float] = {
            (int(u), int(i)): float(v) for u, i, v in zip(users, items, values)
        }
        self.num_edges = len(self._rating_lookup)

    @staticmethod
    def _fill_adjacency(slots, keys, neighbors, count):
        boundaries = np.searchsorted(keys, np.arange(count + 1))
        empty = np.empty(0, dtype=np.int64)
        for k in range(count):
            chunk = neighbors[boundaries[k]:boundaries[k + 1]]
            slots[k] = np.unique(chunk) if chunk.size else empty

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def items_of_user(self, user: int) -> np.ndarray:
        """Item ids the user has rated (sorted, deduplicated)."""
        return self._user_items[user]

    def users_of_item(self, item: int) -> np.ndarray:
        """User ids who rated the item (sorted, deduplicated)."""
        return self._item_users[item]

    def user_degree(self, user: int) -> int:
        return len(self._user_items[user])

    def item_degree(self, item: int) -> int:
        return len(self._item_users[item])

    def rating(self, user: int, item: int) -> float | None:
        """Observed rating of (user, item), or None if unobserved."""
        return self._rating_lookup.get((int(user), int(item)))

    def has_rating(self, user: int, item: int) -> bool:
        return (int(user), int(item)) in self._rating_lookup

    def triples(self) -> np.ndarray:
        """All observed (user, item, rating) triples as an (E, 3) array.

        The graph is immutable; growing the visible rating set means
        building a new graph from ``triples()`` plus the additions (this is
        what :meth:`repro.serve.PredictionService.update_ratings` does).
        """
        if not self._rating_lookup:
            return np.empty((0, 3))
        return np.array([[user, item, value]
                         for (user, item), value in self._rating_lookup.items()])

    def rating_matrix(self, users: np.ndarray, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dense sub-matrix of observed ratings for a user × item block.

        Returns ``(values, observed)`` where ``observed`` is a boolean mask
        and ``values`` holds ratings at observed cells (0 elsewhere).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        values = np.zeros((len(users), len(items)))
        observed = np.zeros((len(users), len(items)), dtype=bool)
        for row, user in enumerate(users):
            rated = self._user_items[user]
            if rated.size == 0:
                continue
            hits = np.isin(items, rated)
            for col in np.flatnonzero(hits):
                values[row, col] = self._rating_lookup[(int(user), int(items[col]))]
                observed[row, col] = True
        return values, observed
