"""User-item bipartite rating graph with fast neighbourhood queries.

HIRE's context sampler (§IV-B) walks this graph hop by hop from the cold
seed entities, so adjacency lookups must be O(1) per entity.  Every graph
instance is immutable; the visible rating set grows by deriving a *new*
graph — either a full rebuild from ``triples()`` plus additions, or the
O(deltas) copy-on-write path :meth:`RatingGraph.apply_deltas`, which
shares the adjacency arrays of untouched entities with its parent and is
asserted bitwise identical to the rebuild (:meth:`RatingGraph.identical_to`).

Besides the per-entity adjacency arrays, each side also exposes a flat
CSR view (:class:`CSRAdjacency`: one ``indptr`` / ``indices`` pair per
direction) so the vectorised sampler can gather a whole frontier's
neighbours in one fancy-index instead of a Python loop.  The CSR arrays
are built lazily, shared with derived graphs through ``apply_deltas``
(changed entities are marked *stale* and read from their fresh per-entity
arrays until the stale fraction justifies a rebuild), and never change the
graph's semantics — :meth:`RatingGraph.items_of_user` and
:meth:`CSRAdjacency.gather` always agree.
"""

from __future__ import annotations

import numpy as np

__all__ = ["RatingGraph", "CSRAdjacency"]

_EMPTY = np.empty(0, dtype=np.int64)

# A derived graph keeps sharing its parent's flat CSR arrays until more
# than 1/8 of a side's entities have gone stale; past that the fallback
# reads dominate and a fresh O(edges) build pays for itself.
_CSR_STALE_REBUILD_FRACTION = 8


class CSRAdjacency:
    """Flat CSR view of one adjacency direction (user→items or item→users).

    ``indptr``/``indices`` are the classic compressed-sparse-row pair over
    the graph's sorted-unique per-entity neighbour arrays.  ``stale`` marks
    entities whose adjacency changed *after* the flat arrays were built
    (via :meth:`RatingGraph.apply_deltas`); their rows are read from
    ``lists`` — the owning graph's per-entity arrays, always current — so
    a derived graph can keep sharing its parent's flat arrays in O(deltas)
    instead of rebuilding O(edges) on every update.
    """

    __slots__ = ("indptr", "indices", "stale", "stale_count", "lists")

    def __init__(self, indptr: np.ndarray, indices: np.ndarray,
                 stale: np.ndarray, stale_count: int, lists: list):
        self.indptr = indptr
        self.indices = indices
        self.stale = stale
        self.stale_count = stale_count
        self.lists = lists

    @classmethod
    def from_lists(cls, lists: list) -> "CSRAdjacency":
        """Build the flat arrays from per-entity sorted-unique arrays."""
        count = len(lists)
        lengths = np.fromiter((a.size for a in lists), dtype=np.int64,
                              count=count)
        indptr = np.zeros(count + 1, dtype=np.int64)
        np.cumsum(lengths, out=indptr[1:])
        indices = np.concatenate(lists) if count and indptr[-1] else _EMPTY
        return cls(indptr, indices, np.zeros(count, dtype=bool), 0, lists)

    def derive(self, changed: np.ndarray, lists: list) -> "CSRAdjacency":
        """The view for a derived graph: same flat arrays, ``changed``
        entities marked stale and redirected to the derived ``lists``."""
        stale = self.stale.copy()
        stale[changed] = True
        return CSRAdjacency(self.indptr, self.indices, stale,
                            int(stale.sum()), lists)

    def gather(self, entities: np.ndarray) -> np.ndarray:
        """All neighbours of ``entities`` concatenated (duplicates kept).

        Entity order is irrelevant to callers (the sampler uniques the
        result), so stale rows may append after the flat gather.
        """
        entities = np.asarray(entities, dtype=np.int64)
        if entities.size == 0:
            return _EMPTY
        if self.stale_count:
            stale_here = self.stale[entities]
            if stale_here.any():
                fresh = self._gather_flat(entities[~stale_here])
                overlaid = [self.lists[int(e)] for e in entities[stale_here]]
                return np.concatenate([fresh, *overlaid])
        return self._gather_flat(entities)

    def _gather_flat(self, entities: np.ndarray) -> np.ndarray:
        starts = self.indptr[entities]
        counts = self.indptr[entities + 1] - starts
        total = int(counts.sum())
        if total == 0:
            return _EMPTY
        # Positions start[k] + [0..count[k]) for every entity k, built as
        # one repeat + arange (no per-entity loop).
        offsets = np.repeat(starts - (np.cumsum(counts) - counts), counts)
        return self.indices[offsets + np.arange(total)]


class RatingGraph:
    """Immutable bipartite graph over (user, item, rating) triples."""

    def __init__(self, ratings: np.ndarray, num_users: int, num_items: int):
        ratings = np.asarray(ratings, dtype=np.float64)
        if ratings.size and ratings.ndim != 2:
            raise ValueError("ratings must be (n, 3)")
        if ratings.size == 0:
            ratings = ratings.reshape(0, 3)
        self.num_users = num_users
        self.num_items = num_items
        users = ratings[:, 0].astype(np.int64)
        items = ratings[:, 1].astype(np.int64)
        values = ratings[:, 2]

        self._user_items: list[np.ndarray] = [None] * num_users
        self._item_users: list[np.ndarray] = [None] * num_items
        order_u = np.argsort(users, kind="stable")
        self._fill_adjacency(self._user_items, users[order_u], items[order_u], num_users)
        order_i = np.argsort(items, kind="stable")
        self._fill_adjacency(self._item_users, items[order_i], users[order_i], num_items)

        self._rating_lookup: dict[tuple[int, int], float] = {
            (int(u), int(i)): float(v) for u, i, v in zip(users, items, values)
        }
        self.num_edges = len(self._rating_lookup)
        # Lazy flat CSR views (see CSRAdjacency).  Building one mutates
        # only this private slot; a racing double-build is benign (both
        # results are identical and assignment is atomic).
        self._csr_users: CSRAdjacency | None = None
        self._csr_items: CSRAdjacency | None = None

    @staticmethod
    def _fill_adjacency(slots, keys, neighbors, count):
        boundaries = np.searchsorted(keys, np.arange(count + 1))
        empty = np.empty(0, dtype=np.int64)
        for k in range(count):
            chunk = neighbors[boundaries[k]:boundaries[k + 1]]
            slots[k] = np.unique(chunk) if chunk.size else empty

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def items_of_user(self, user: int) -> np.ndarray:
        """Item ids the user has rated (sorted, deduplicated)."""
        return self._user_items[user]

    def users_of_item(self, item: int) -> np.ndarray:
        """User ids who rated the item (sorted, deduplicated)."""
        return self._item_users[item]

    def user_adjacency(self) -> CSRAdjacency:
        """The flat user→items CSR view (built lazily, cached; rebuilt
        once :meth:`apply_deltas` derivations leave too many rows stale)."""
        csr = self._csr_users
        if (csr is None or csr.stale_count * _CSR_STALE_REBUILD_FRACTION
                > max(self.num_users, 1)):
            csr = CSRAdjacency.from_lists(self._user_items)
            self._csr_users = csr
        return csr

    def item_adjacency(self) -> CSRAdjacency:
        """The flat item→users CSR view (see :meth:`user_adjacency`)."""
        csr = self._csr_items
        if (csr is None or csr.stale_count * _CSR_STALE_REBUILD_FRACTION
                > max(self.num_items, 1)):
            csr = CSRAdjacency.from_lists(self._item_users)
            self._csr_items = csr
        return csr

    def user_degree(self, user: int) -> int:
        return len(self._user_items[user])

    def item_degree(self, item: int) -> int:
        return len(self._item_users[item])

    def rating(self, user: int, item: int) -> float | None:
        """Observed rating of (user, item), or None if unobserved."""
        return self._rating_lookup.get((int(user), int(item)))

    def has_rating(self, user: int, item: int) -> bool:
        return (int(user), int(item)) in self._rating_lookup

    def triples(self) -> np.ndarray:
        """All observed (user, item, rating) triples as an (E, 3) array.

        The graph is immutable; growing the visible rating set means
        deriving a new graph — via :meth:`apply_deltas` (incremental) or by
        rebuilding from ``triples()`` plus the additions.
        """
        if not self._rating_lookup:
            return np.empty((0, 3))
        return np.array([[user, item, value]
                         for (user, item), value in self._rating_lookup.items()])

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def apply_deltas(self, deltas: np.ndarray) -> "RatingGraph":
        """A new graph with ``(user, item, rating)`` deltas applied.

        Copy-on-write in O(deltas) instead of O(edges): the adjacency
        *lists* and rating lookup are shallow-copied, and only the rows of
        touched entities get new sorted-unique arrays (``np.insert`` at the
        ``searchsorted`` position).  Untouched entities share their arrays
        with this graph — both graphs stay immutable and internally
        consistent, which is what lets the serving tier pin an old snapshot
        for in-flight requests while new submissions see the update.

        Semantics match a full rebuild from ``triples()`` + ``deltas``
        exactly (pinned by :meth:`identical_to` under the data plane's
        verify mode): a re-rated pair keeps the delta's value, a duplicated
        pair within ``deltas`` keeps its last occurrence.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return self
        if deltas.ndim != 2 or deltas.shape[1] != 3:
            raise ValueError("deltas must be (n, 3) (user, item, rating)")
        users = deltas[:, 0].astype(np.int64)
        items = deltas[:, 1].astype(np.int64)
        if (users < 0).any() or (users >= self.num_users).any():
            raise ValueError(f"delta user ids outside [0, {self.num_users})")
        if (items < 0).any() or (items >= self.num_items).any():
            raise ValueError(f"delta item ids outside [0, {self.num_items})")

        derived = self.__class__.__new__(self.__class__)
        derived.num_users = self.num_users
        derived.num_items = self.num_items
        derived._user_items = list(self._user_items)
        derived._item_users = list(self._item_users)
        derived._rating_lookup = dict(self._rating_lookup)
        adjacency_users: list[int] = []
        adjacency_items: list[int] = []
        for user, item, value in zip(users, items, deltas[:, 2]):
            pair = (int(user), int(item))
            if pair not in derived._rating_lookup:
                derived._user_items[pair[0]] = self._sorted_insert(
                    derived._user_items[pair[0]], pair[1])
                derived._item_users[pair[1]] = self._sorted_insert(
                    derived._item_users[pair[1]], pair[0])
                adjacency_users.append(pair[0])
                adjacency_items.append(pair[1])
            derived._rating_lookup[pair] = float(value)
        derived.num_edges = len(derived._rating_lookup)
        # Carry the flat CSR views forward in O(deltas): only new pairs
        # change adjacency (re-rates touch values, not neighbour sets), so
        # just their entities go stale.  Unbuilt views stay unbuilt.
        derived._csr_users = (
            None if self._csr_users is None else self._csr_users.derive(
                np.asarray(adjacency_users, dtype=np.int64),
                derived._user_items))
        derived._csr_items = (
            None if self._csr_items is None else self._csr_items.derive(
                np.asarray(adjacency_items, dtype=np.int64),
                derived._item_users))
        return derived

    @staticmethod
    def _sorted_insert(array: np.ndarray, value: int) -> np.ndarray:
        """A new sorted array with ``value`` inserted (caller ensures absence)."""
        position = np.searchsorted(array, value)
        return np.insert(array, position, np.int64(value))

    def identical_to(self, other: "RatingGraph") -> bool:
        """Bitwise structural equality: dimensions, every adjacency array,
        and every rating value (exact float compare — this is the assertion
        backing the incremental data plane's verify mode)."""
        if self.num_users != other.num_users or self.num_items != other.num_items:
            return False
        if self._rating_lookup != other._rating_lookup:
            return False
        return (
            all(np.array_equal(a, b) for a, b in
                zip(self._user_items, other._user_items))
            and all(np.array_equal(a, b) for a, b in
                    zip(self._item_users, other._item_users))
        )

    def rating_matrix(self, users: np.ndarray, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dense sub-matrix of observed ratings for a user × item block.

        Returns ``(values, observed)`` where ``observed`` is a boolean mask
        and ``values`` holds ratings at observed cells (0 elsewhere).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        values = np.zeros((len(users), len(items)))
        observed = np.zeros((len(users), len(items)), dtype=bool)
        for row, user in enumerate(users):
            rated = self._user_items[user]
            if rated.size == 0:
                continue
            hits = np.isin(items, rated)
            for col in np.flatnonzero(hits):
                values[row, col] = self._rating_lookup[(int(user), int(items[col]))]
                observed[row, col] = True
        return values, observed
