"""User-item bipartite rating graph with fast neighbourhood queries.

HIRE's context sampler (§IV-B) walks this graph hop by hop from the cold
seed entities, so adjacency lookups must be O(1) per entity.  Every graph
instance is immutable; the visible rating set grows by deriving a *new*
graph — either a full rebuild from ``triples()`` plus additions, or the
O(deltas) copy-on-write path :meth:`RatingGraph.apply_deltas`, which
shares the adjacency arrays of untouched entities with its parent and is
asserted bitwise identical to the rebuild (:meth:`RatingGraph.identical_to`).
"""

from __future__ import annotations

import numpy as np

__all__ = ["RatingGraph"]


class RatingGraph:
    """Immutable bipartite graph over (user, item, rating) triples."""

    def __init__(self, ratings: np.ndarray, num_users: int, num_items: int):
        ratings = np.asarray(ratings, dtype=np.float64)
        if ratings.size and ratings.ndim != 2:
            raise ValueError("ratings must be (n, 3)")
        if ratings.size == 0:
            ratings = ratings.reshape(0, 3)
        self.num_users = num_users
        self.num_items = num_items
        users = ratings[:, 0].astype(np.int64)
        items = ratings[:, 1].astype(np.int64)
        values = ratings[:, 2]

        self._user_items: list[np.ndarray] = [None] * num_users
        self._item_users: list[np.ndarray] = [None] * num_items
        order_u = np.argsort(users, kind="stable")
        self._fill_adjacency(self._user_items, users[order_u], items[order_u], num_users)
        order_i = np.argsort(items, kind="stable")
        self._fill_adjacency(self._item_users, items[order_i], users[order_i], num_items)

        self._rating_lookup: dict[tuple[int, int], float] = {
            (int(u), int(i)): float(v) for u, i, v in zip(users, items, values)
        }
        self.num_edges = len(self._rating_lookup)

    @staticmethod
    def _fill_adjacency(slots, keys, neighbors, count):
        boundaries = np.searchsorted(keys, np.arange(count + 1))
        empty = np.empty(0, dtype=np.int64)
        for k in range(count):
            chunk = neighbors[boundaries[k]:boundaries[k + 1]]
            slots[k] = np.unique(chunk) if chunk.size else empty

    # ------------------------------------------------------------------ #
    # Queries
    # ------------------------------------------------------------------ #
    def items_of_user(self, user: int) -> np.ndarray:
        """Item ids the user has rated (sorted, deduplicated)."""
        return self._user_items[user]

    def users_of_item(self, item: int) -> np.ndarray:
        """User ids who rated the item (sorted, deduplicated)."""
        return self._item_users[item]

    def user_degree(self, user: int) -> int:
        return len(self._user_items[user])

    def item_degree(self, item: int) -> int:
        return len(self._item_users[item])

    def rating(self, user: int, item: int) -> float | None:
        """Observed rating of (user, item), or None if unobserved."""
        return self._rating_lookup.get((int(user), int(item)))

    def has_rating(self, user: int, item: int) -> bool:
        return (int(user), int(item)) in self._rating_lookup

    def triples(self) -> np.ndarray:
        """All observed (user, item, rating) triples as an (E, 3) array.

        The graph is immutable; growing the visible rating set means
        deriving a new graph — via :meth:`apply_deltas` (incremental) or by
        rebuilding from ``triples()`` plus the additions.
        """
        if not self._rating_lookup:
            return np.empty((0, 3))
        return np.array([[user, item, value]
                         for (user, item), value in self._rating_lookup.items()])

    # ------------------------------------------------------------------ #
    # Derivation
    # ------------------------------------------------------------------ #
    def apply_deltas(self, deltas: np.ndarray) -> "RatingGraph":
        """A new graph with ``(user, item, rating)`` deltas applied.

        Copy-on-write in O(deltas) instead of O(edges): the adjacency
        *lists* and rating lookup are shallow-copied, and only the rows of
        touched entities get new sorted-unique arrays (``np.insert`` at the
        ``searchsorted`` position).  Untouched entities share their arrays
        with this graph — both graphs stay immutable and internally
        consistent, which is what lets the serving tier pin an old snapshot
        for in-flight requests while new submissions see the update.

        Semantics match a full rebuild from ``triples()`` + ``deltas``
        exactly (pinned by :meth:`identical_to` under the data plane's
        verify mode): a re-rated pair keeps the delta's value, a duplicated
        pair within ``deltas`` keeps its last occurrence.
        """
        deltas = np.asarray(deltas, dtype=np.float64)
        if deltas.size == 0:
            return self
        if deltas.ndim != 2 or deltas.shape[1] != 3:
            raise ValueError("deltas must be (n, 3) (user, item, rating)")
        users = deltas[:, 0].astype(np.int64)
        items = deltas[:, 1].astype(np.int64)
        if (users < 0).any() or (users >= self.num_users).any():
            raise ValueError(f"delta user ids outside [0, {self.num_users})")
        if (items < 0).any() or (items >= self.num_items).any():
            raise ValueError(f"delta item ids outside [0, {self.num_items})")

        derived = self.__class__.__new__(self.__class__)
        derived.num_users = self.num_users
        derived.num_items = self.num_items
        derived._user_items = list(self._user_items)
        derived._item_users = list(self._item_users)
        derived._rating_lookup = dict(self._rating_lookup)
        for user, item, value in zip(users, items, deltas[:, 2]):
            pair = (int(user), int(item))
            if pair not in derived._rating_lookup:
                derived._user_items[pair[0]] = self._sorted_insert(
                    derived._user_items[pair[0]], pair[1])
                derived._item_users[pair[1]] = self._sorted_insert(
                    derived._item_users[pair[1]], pair[0])
            derived._rating_lookup[pair] = float(value)
        derived.num_edges = len(derived._rating_lookup)
        return derived

    @staticmethod
    def _sorted_insert(array: np.ndarray, value: int) -> np.ndarray:
        """A new sorted array with ``value`` inserted (caller ensures absence)."""
        position = np.searchsorted(array, value)
        return np.insert(array, position, np.int64(value))

    def identical_to(self, other: "RatingGraph") -> bool:
        """Bitwise structural equality: dimensions, every adjacency array,
        and every rating value (exact float compare — this is the assertion
        backing the incremental data plane's verify mode)."""
        if self.num_users != other.num_users or self.num_items != other.num_items:
            return False
        if self._rating_lookup != other._rating_lookup:
            return False
        return (
            all(np.array_equal(a, b) for a, b in
                zip(self._user_items, other._user_items))
            and all(np.array_equal(a, b) for a, b in
                    zip(self._item_users, other._item_users))
        )

    def rating_matrix(self, users: np.ndarray, items: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Dense sub-matrix of observed ratings for a user × item block.

        Returns ``(values, observed)`` where ``observed`` is a boolean mask
        and ``values`` holds ratings at observed cells (0 elsewhere).
        """
        users = np.asarray(users, dtype=np.int64)
        items = np.asarray(items, dtype=np.int64)
        values = np.zeros((len(users), len(items)))
        observed = np.zeros((len(users), len(items)), dtype=bool)
        for row, user in enumerate(users):
            rated = self._user_items[user]
            if rated.size == 0:
                continue
            hits = np.isin(items, rated)
            for col in np.flatnonzero(hits):
                values[row, col] = self._rating_lookup[(int(user), int(items[col]))]
                observed[row, col] = True
        return values, observed
