"""``repro.data`` — datasets, cold-start splits and graph substrates.

* :mod:`repro.data.schema` — the :class:`RatingDataset` container.
* :mod:`repro.data.synthetic` — seeded latent-factor generators matching the
  Table II profiles of MovieLens-1M / Douban / Bookcrossing.
* :mod:`repro.data.movielens` — loader for a real ``ml-1m`` dump, if present.
* :mod:`repro.data.splits` — cold-start train/test partitions (UC / IC / U&IC).
* :mod:`repro.data.bipartite` — the user-item rating graph the context
  sampler walks.
* :mod:`repro.data.hin` — heterogeneous information network for the HIN
  baselines.
"""

from .bipartite import RatingGraph
from .hin import build_hin, metapath_neighbors, node_id
from .io import load_dataset, save_dataset
from .loaders import load_bookcrossing, load_douban
from .movielens import load_movielens_1m
from .schema import ITEM_COLUMN, RATING_COLUMN, USER_COLUMN, RatingDataset
from .splits import SCENARIOS, ColdStartSplit, Scenario, make_cold_start_split
from .synthetic import (
    AttributeSpec,
    SyntheticConfig,
    bookcrossing_like,
    dataset_by_name,
    douban_like,
    generate,
    movielens_like,
)

__all__ = [
    "RatingDataset",
    "USER_COLUMN",
    "ITEM_COLUMN",
    "RATING_COLUMN",
    "RatingGraph",
    "build_hin",
    "metapath_neighbors",
    "node_id",
    "load_movielens_1m",
    "load_douban",
    "load_bookcrossing",
    "save_dataset",
    "load_dataset",
    "Scenario",
    "SCENARIOS",
    "ColdStartSplit",
    "make_cold_start_split",
    "AttributeSpec",
    "SyntheticConfig",
    "generate",
    "movielens_like",
    "bookcrossing_like",
    "douban_like",
    "dataset_by_name",
]
