"""Loader for a real MovieLens-1M dump, when one is available on disk.

The benchmark suite runs on the synthetic profiles by default (no network
access in this environment), but if the official ``ml-1m`` directory —
``users.dat``, ``movies.dat``, ``ratings.dat`` in the classic ``::``
format — is present, this loader converts it into the same
:class:`~repro.data.schema.RatingDataset` container so every experiment can
run on the genuine data unchanged.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from .schema import RatingDataset

__all__ = ["load_movielens_1m", "AGE_CODES"]

# MovieLens-1M age buckets, in dataset order.
AGE_CODES = (1, 18, 25, 35, 45, 50, 56)

_GENRES = (
    "Action", "Adventure", "Animation", "Children's", "Comedy", "Crime",
    "Documentary", "Drama", "Fantasy", "Film-Noir", "Horror", "Musical",
    "Mystery", "Romance", "Sci-Fi", "Thriller", "War", "Western",
)


def load_movielens_1m(root: str | Path, max_users: int | None = None,
                      max_items: int | None = None) -> RatingDataset:
    """Parse an ``ml-1m`` directory into a :class:`RatingDataset`.

    Users carry (age, occupation, gender, zip-region) and movies carry
    (release-era, primary genre) categorical attributes.  ``max_users`` /
    ``max_items`` subsample for quick experimentation.
    """
    root = Path(root)
    for required in ("users.dat", "movies.dat", "ratings.dat"):
        if not (root / required).exists():
            raise FileNotFoundError(f"missing {required} under {root}")

    users_raw = _read_dat(root / "users.dat")
    movies_raw = _read_dat(root / "movies.dat")
    ratings_raw = _read_dat(root / "ratings.dat")

    if max_users is not None:
        users_raw = users_raw[:max_users]
    if max_items is not None:
        movies_raw = movies_raw[:max_items]

    user_index = {int(row[0]): pos for pos, row in enumerate(users_raw)}
    item_index = {int(row[0]): pos for pos, row in enumerate(movies_raw)}

    age_to_code = {age: k for k, age in enumerate(AGE_CODES)}
    user_attributes = np.zeros((len(users_raw), 4), dtype=np.int64)
    for pos, row in enumerate(users_raw):
        _, gender, age, occupation, zipcode = row
        user_attributes[pos, 0] = age_to_code.get(int(age), 0)
        user_attributes[pos, 1] = int(occupation)
        user_attributes[pos, 2] = 0 if gender == "M" else 1
        user_attributes[pos, 3] = int(zipcode[:1]) if zipcode[:1].isdigit() else 0

    genre_to_code = {g: k for k, g in enumerate(_GENRES)}
    item_attributes = np.zeros((len(movies_raw), 2), dtype=np.int64)
    for pos, row in enumerate(movies_raw):
        _, title, genres = row
        year = _parse_year(title)
        item_attributes[pos, 0] = min(max((year - 1910) // 10, 0), 9)
        first_genre = genres.split("|")[0]
        item_attributes[pos, 1] = genre_to_code.get(first_genre, 0)

    triples = []
    for row in ratings_raw:
        user_id, item_id, value = int(row[0]), int(row[1]), float(row[2])
        if user_id in user_index and item_id in item_index:
            triples.append((user_index[user_id], item_index[item_id], value))

    return RatingDataset(
        name="movielens-1m",
        num_users=len(users_raw),
        num_items=len(movies_raw),
        user_attributes=user_attributes,
        item_attributes=item_attributes,
        user_attribute_cards=(len(AGE_CODES), 21, 2, 10),
        item_attribute_cards=(10, len(_GENRES)),
        user_attribute_names=("age", "occupation", "gender", "zip_region"),
        item_attribute_names=("release_era", "genre"),
        ratings=np.asarray(triples, dtype=np.float64),
        rating_range=(1.0, 5.0),
        metadata={"source": str(root)},
    )


def _read_dat(path: Path) -> list[list[str]]:
    rows = []
    with open(path, encoding="latin-1") as handle:
        for line in handle:
            line = line.rstrip("\n")
            if line:
                rows.append(line.split("::"))
    return rows


def _parse_year(title: str) -> int:
    if title.endswith(")") and "(" in title:
        candidate = title[title.rfind("(") + 1:-1]
        if candidate.isdigit():
            return int(candidate)
    return 1990
