"""Cold-start train/test splits (paper §III-A and §VI-A).

A :class:`ColdStartSplit` partitions users and items into *warm* (train) and
*cold* (test) sets.  The model trains only on ratings between warm users and
warm items; evaluation ratings come from the scenario-specific quadrant:

* ``user`` cold-start (UC)   — cold user × warm item ratings,
* ``item`` cold-start (IC)   — warm user × cold item ratings,
* ``both`` cold-start (U&IC) — cold user × cold item ratings.

The paper splits MovieLens users 80/20 and Douban/Bookcrossing users 70/30;
items analogously.  Fractions are parameters here.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from .schema import ITEM_COLUMN, RATING_COLUMN, USER_COLUMN, RatingDataset

__all__ = ["Scenario", "ColdStartSplit", "make_cold_start_split", "SCENARIOS"]

SCENARIOS = ("user", "item", "both")


class Scenario:
    """String constants for the three cold-start scenarios."""

    USER = "user"
    ITEM = "item"
    BOTH = "both"


@dataclass
class ColdStartSplit:
    """Partition of one dataset into warm/cold users and items."""

    dataset: RatingDataset
    train_users: np.ndarray
    test_users: np.ndarray
    train_items: np.ndarray
    test_items: np.ndarray

    def __post_init__(self):
        self.train_users = np.asarray(self.train_users, dtype=np.int64)
        self.test_users = np.asarray(self.test_users, dtype=np.int64)
        self.train_items = np.asarray(self.train_items, dtype=np.int64)
        self.test_items = np.asarray(self.test_items, dtype=np.int64)
        if np.intersect1d(self.train_users, self.test_users).size:
            raise ValueError("train and test users overlap")
        if np.intersect1d(self.train_items, self.test_items).size:
            raise ValueError("train and test items overlap")
        self._user_is_train = np.zeros(self.dataset.num_users, dtype=bool)
        self._user_is_train[self.train_users] = True
        self._user_is_test = np.zeros(self.dataset.num_users, dtype=bool)
        self._user_is_test[self.test_users] = True
        self._item_is_train = np.zeros(self.dataset.num_items, dtype=bool)
        self._item_is_train[self.train_items] = True
        self._item_is_test = np.zeros(self.dataset.num_items, dtype=bool)
        self._item_is_test[self.test_items] = True

    # ------------------------------------------------------------------ #
    # Rating selections
    # ------------------------------------------------------------------ #
    def _quadrant_mask(self, users_train: bool, items_train: bool) -> np.ndarray:
        users = self.dataset.rating_users()
        items = self.dataset.rating_items()
        user_mask = self._user_is_train[users] if users_train else self._user_is_test[users]
        item_mask = self._item_is_train[items] if items_train else self._item_is_test[items]
        return user_mask & item_mask

    def train_ratings(self) -> np.ndarray:
        """Ratings visible at training time: warm user × warm item."""
        return self.dataset.ratings[self._quadrant_mask(True, True)]

    def eval_ratings(self, scenario: str) -> np.ndarray:
        """Ratings of the cold quadrant for one scenario."""
        if scenario == Scenario.USER:
            mask = self._quadrant_mask(False, True)
        elif scenario == Scenario.ITEM:
            mask = self._quadrant_mask(True, False)
        elif scenario == Scenario.BOTH:
            mask = self._quadrant_mask(False, False)
        else:
            raise ValueError(f"unknown scenario {scenario!r}; choose from {SCENARIOS}")
        return self.dataset.ratings[mask]

    def cold_entities(self, scenario: str) -> tuple[np.ndarray, np.ndarray]:
        """(cold users, cold items) relevant to a scenario."""
        if scenario == Scenario.USER:
            return self.test_users, np.empty(0, dtype=np.int64)
        if scenario == Scenario.ITEM:
            return np.empty(0, dtype=np.int64), self.test_items
        if scenario == Scenario.BOTH:
            return self.test_users, self.test_items
        raise ValueError(f"unknown scenario {scenario!r}")

    def is_cold_user(self, user: int) -> bool:
        return bool(self._user_is_test[user])

    def is_cold_item(self, item: int) -> bool:
        return bool(self._item_is_test[item])

    def summary(self) -> dict:
        counts = {s: len(self.eval_ratings(s)) for s in SCENARIOS}
        return {
            "train_users": len(self.train_users),
            "test_users": len(self.test_users),
            "train_items": len(self.train_items),
            "test_items": len(self.test_items),
            "train_ratings": len(self.train_ratings()),
            "eval_ratings": counts,
        }


def make_cold_start_split(dataset: RatingDataset, user_test_fraction: float = 0.2,
                          item_test_fraction: float = 0.2,
                          seed: int = 0) -> ColdStartSplit:
    """Randomly partition users and items into warm/cold sets.

    The paper holds out 20 % of MovieLens users (and post-1997 movies) and
    30 % of Douban/Bookcrossing users and items; random item holdout stands
    in for the release-year cut since synthetic items carry no timestamps.
    """
    if not 0.0 < user_test_fraction < 1.0 or not 0.0 < item_test_fraction < 1.0:
        raise ValueError("test fractions must be in (0, 1)")
    rng = np.random.default_rng(seed)
    users = rng.permutation(dataset.num_users)
    items = rng.permutation(dataset.num_items)
    n_test_users = max(int(round(user_test_fraction * dataset.num_users)), 1)
    n_test_items = max(int(round(item_test_fraction * dataset.num_items)), 1)
    return ColdStartSplit(
        dataset=dataset,
        test_users=np.sort(users[:n_test_users]),
        train_users=np.sort(users[n_test_users:]),
        test_items=np.sort(items[:n_test_items]),
        train_items=np.sort(items[n_test_items:]),
    )
