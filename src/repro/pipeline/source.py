"""The sampling side of the pipeline: step batches as pure functions.

:class:`ContextBatchSource` packages everything
:func:`repro.core.sample_training_context` needs (graph, sampler,
candidate pools, context budgets) so that ``sample_step(step)`` is a pure
function of the step index — each slot of the batch draws from its own
:func:`~repro.pipeline.rng.derive_step_rng` generator.  Purity is what
makes the source safe to call from any thread (all inputs are read-only)
and picklable for the opt-in process backend (plain numpy arrays and
stateless samplers throughout).
"""

from __future__ import annotations

import numpy as np

from ..core.context import PredictionContext
from ..core.sampling import (
    MAX_CONTEXT_RETRIES,
    ContextSampler,
    sample_training_context,
)
from ..data.bipartite import RatingGraph
from .rng import derive_step_rng

__all__ = ["ContextBatchSource"]


class ContextBatchSource:
    """Samples the training contexts of one step, deterministically."""

    def __init__(self, graph: RatingGraph, sampler: ContextSampler,
                 train_ratings: np.ndarray, *,
                 seed: int, batch_size: int,
                 context_users: int, context_items: int,
                 reveal_fraction: float,
                 reveal_fraction_high: float | None = None,
                 candidate_users: np.ndarray, candidate_items: np.ndarray,
                 max_retries: int = MAX_CONTEXT_RETRIES):
        if batch_size < 1:
            raise ValueError("batch_size must be >= 1")
        self.graph = graph
        self.sampler = sampler
        self.train_ratings = train_ratings
        self.seed = seed
        self.batch_size = batch_size
        self.context_users = context_users
        self.context_items = context_items
        self.reveal_fraction = reveal_fraction
        self.reveal_fraction_high = reveal_fraction_high
        self.candidate_users = candidate_users
        self.candidate_items = candidate_items
        self.max_retries = max_retries

    @classmethod
    def from_trainer(cls, trainer) -> "ContextBatchSource":
        """Build a source mirroring a :class:`~repro.core.HIRETrainer`'s
        sampling configuration exactly."""
        cfg = trainer.config
        return cls(
            trainer.graph, trainer.sampler, trainer.train_ratings,
            seed=cfg.seed, batch_size=cfg.batch_size,
            context_users=cfg.context_users, context_items=cfg.context_items,
            reveal_fraction=cfg.reveal_fraction,
            reveal_fraction_high=cfg.reveal_fraction_high,
            candidate_users=trainer.split.train_users,
            candidate_items=trainer.split.train_items,
        )

    def sample_slot(self, step: int, slot: int) -> PredictionContext:
        """Context ``slot`` of step ``step`` — pure in ``(seed, step, slot)``."""
        rng = derive_step_rng(self.seed, step, slot)
        return sample_training_context(
            self.graph, self.sampler, self.train_ratings, rng,
            context_users=self.context_users,
            context_items=self.context_items,
            reveal_fraction=self.reveal_fraction,
            reveal_fraction_high=self.reveal_fraction_high,
            candidate_users=self.candidate_users,
            candidate_items=self.candidate_items,
            max_retries=self.max_retries,
        )

    def sample_step(self, step: int) -> list[PredictionContext]:
        """The full mini-batch of contexts for one training step."""
        return [self.sample_slot(step, slot)
                for slot in range(self.batch_size)]
