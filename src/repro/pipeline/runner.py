""":class:`ContextPipeline` — prefetching orchestration of source + buffer.

Worker threads (or, opt-in, worker processes) claim step indices from the
:class:`~repro.pipeline.buffer.PrefetchBuffer`, sample that step's context
batch through the :class:`~repro.pipeline.source.ContextBatchSource`, and
publish it; the trainer takes steps in order.  Because every batch is a
pure function of ``(seed, step, slot)``, the result is bit-identical to a
sequential loop no matter the worker count, backend, or completion order.

Telemetry goes through a :class:`repro.obs.MetricsRegistry` (own instance
by default, like :class:`repro.serve.PredictionService`):

========================== ========= ==========================================
``pipeline.buffer_hits``    counter  takes served without waiting
``pipeline.starvations``    counter  takes that had to wait on the buffer
``pipeline.wait_seconds``   histogram consumer wait per take
``pipeline.sample_seconds`` histogram worker-side sampling time per batch
``pipeline.batches``        counter  batches produced
``pipeline.buffer_depth``   gauge    produced-but-untaken steps after a take
========================== ========= ==========================================
"""

from __future__ import annotations

import time

from .. import obs
from ..concurrency import WorkerPool
from .buffer import PipelineError, PrefetchBuffer
from .source import ContextBatchSource

__all__ = ["ContextPipeline", "BACKENDS"]

BACKENDS = ("thread", "process")

# Set by the process-backend initializer inside each worker process.
_PROCESS_SOURCE: ContextBatchSource | None = None


def _process_init(source: ContextBatchSource) -> None:
    global _PROCESS_SOURCE
    _PROCESS_SOURCE = source


def _process_sample_step(step: int):
    return _PROCESS_SOURCE.sample_step(step)


class ContextPipeline:
    """Produces training-context batches ahead of the optimiser.

    ``backend="thread"`` (default) samples on daemon threads inside the
    training process: zero serialisation cost, overlap limited to the time
    the main thread spends outside the GIL (BLAS kernels).
    ``backend="process"`` adds true parallelism: worker processes hold a
    copy of the source and stream sampled batches back (one feeder thread
    per worker keeps the claim/publish protocol unchanged).  Both are
    bit-identical to sequential sampling — the RNG derivation, not the
    execution schedule, decides every draw.
    """

    def __init__(self, source: ContextBatchSource, num_workers: int = 1,
                 buffer_depth: int = 4, backend: str = "thread",
                 metrics: obs.MetricsRegistry | None = None):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        if backend not in BACKENDS:
            raise ValueError(f"backend must be one of {BACKENDS}, got {backend!r}")
        self.source = source
        self.num_workers = num_workers
        self.buffer_depth = buffer_depth
        self.backend = backend
        self.metrics = metrics if metrics is not None else obs.MetricsRegistry()
        self._hits = self.metrics.counter("pipeline.buffer_hits")
        self._starvations = self.metrics.counter("pipeline.starvations")
        self._wait = self.metrics.histogram("pipeline.wait_seconds")
        self._sample = self.metrics.histogram("pipeline.sample_seconds")
        self._batches = self.metrics.counter("pipeline.batches")
        self._depth = self.metrics.gauge("pipeline.buffer_depth")
        self._buffer: PrefetchBuffer | None = None
        self._pool: WorkerPool | None = None
        self._executor = None

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def start(self, total_steps: int | None = None) -> "ContextPipeline":
        """Create the buffer and launch the workers; returns ``self``."""
        if self._buffer is not None:
            raise RuntimeError("pipeline already started (one fit per pipeline)")
        self._buffer = PrefetchBuffer(self.buffer_depth, limit=total_steps)
        if self.backend == "process":
            import multiprocessing
            from concurrent.futures import ProcessPoolExecutor

            methods = multiprocessing.get_all_start_methods()
            ctx = multiprocessing.get_context(
                "fork" if "fork" in methods else "spawn")
            self._executor = ProcessPoolExecutor(
                max_workers=self.num_workers, mp_context=ctx,
                initializer=_process_init, initargs=(self.source,))
        self._pool = WorkerPool(self._worker_loop, self.num_workers,
                                name=f"pipeline-{self.backend}")
        self._pool.start()
        return self

    def close(self, timeout: float = 10.0) -> None:
        """Stop production, join workers, shut the executor down."""
        if self._buffer is not None:
            self._buffer.close()
        if self._pool is not None:
            self._pool.close(timeout)
        if self._executor is not None:
            self._executor.shutdown(wait=False, cancel_futures=True)
            self._executor = None

    @property
    def started(self) -> bool:
        return self._buffer is not None

    @property
    def closed(self) -> bool:
        return self._buffer is not None and self._buffer.closed

    def __enter__(self) -> "ContextPipeline":
        if not self.started:
            self.start()
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Worker side
    # ------------------------------------------------------------------ #
    def _worker_loop(self, stop_event) -> bool | None:
        step = self._buffer.claim(timeout=0.1)
        if step is None:
            # Claim window full / limit reached / closed: loop (the pool's
            # stop event ends us) unless production is definitely over.
            if self._buffer.closed or self._buffer.failure is not None:
                return False
            if (self._buffer.limit is not None
                    and not self._claims_remaining()):
                return False
            return None
        start = time.perf_counter()
        try:
            batch = self._sample_step(step)
        except BaseException as exc:  # noqa: BLE001 — propagate to consumer
            if not self._buffer.closed:
                self._buffer.fail(exc)
            return False
        self._sample.observe(time.perf_counter() - start)
        self._batches.inc()
        self._buffer.publish(step, batch)
        return None

    def _claims_remaining(self) -> bool:
        buffer = self._buffer
        return buffer.limit is None or buffer._next_claim < buffer.limit

    def _sample_step(self, step: int):
        if self._executor is not None:
            return self._executor.submit(_process_sample_step, step).result()
        return self.source.sample_step(step)

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def take(self, step: int, timeout: float | None = None):
        """The context batch of ``step``; blocks until a worker delivers it.

        Records hit/starvation, wait time, and buffer depth.  Raises
        :class:`~repro.pipeline.buffer.PipelineError` if a worker failed.
        """
        if self._buffer is None:
            raise RuntimeError("pipeline not started; call start() first")
        hit = self._buffer.ready(step)
        start = time.perf_counter()
        batch = self._buffer.take(step, timeout=timeout)
        self._wait.observe(time.perf_counter() - start)
        (self._hits if hit else self._starvations).inc()
        self._depth.set(self._buffer.depth)
        return batch

    # ------------------------------------------------------------------ #
    # Reporting
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-able metrics snapshot (see the module table)."""
        return self.metrics.snapshot()

    def report(self) -> str:
        """Text rendering of the pipeline metrics."""
        return obs.render_metrics_table(self.metrics)
