"""Ordered, bounded hand-off between sampling workers and the optimiser.

The trainer consumes step batches strictly in order (step 0, 1, 2, …)
while workers may finish them in any order.  :class:`PrefetchBuffer`
reconciles the two with a claim/publish/take protocol:

* a worker :meth:`claim`\\ s the next unproduced step index — blocking
  while the buffer already holds ``capacity`` steps the consumer hasn't
  taken (producer backpressure, the blocking flavour of
  :class:`repro.concurrency.BoundedQueue`'s policies);
* it :meth:`publish`\\ es the sampled batch under that step index;
* the consumer :meth:`take`\\ s steps in order, blocking until the batch
  it needs arrives.

Shutdown is drain-aware and failure-propagating: :meth:`close` makes every
``claim`` return ``None`` (workers exit their loop) and wakes a blocked
consumer with :class:`~repro.concurrency.QueueClosedError`;
:meth:`fail` records a worker exception and re-raises it from ``take`` as
:class:`PipelineError`, so a crashing sampler can never hang ``fit``.
"""

from __future__ import annotations

import threading

from ..concurrency import QueueClosedError

__all__ = ["PrefetchBuffer", "PipelineError"]


class PipelineError(RuntimeError):
    """A pipeline worker failed; the original exception is the ``__cause__``."""


class PrefetchBuffer:
    """Bounded reorder buffer over step indices ``0 .. limit-1``."""

    def __init__(self, capacity: int, limit: int | None = None):
        if capacity < 1:
            raise ValueError("capacity must be >= 1")
        if limit is not None and limit < 0:
            raise ValueError("limit must be >= 0")
        self.capacity = capacity
        self.limit = limit
        self._lock = threading.Lock()
        self._state = threading.Condition(self._lock)
        self._ready: dict[int, object] = {}
        self._next_claim = 0
        self._next_take = 0
        self._closed = False
        self._failure: BaseException | None = None

    # ------------------------------------------------------------------ #
    # Producer side
    # ------------------------------------------------------------------ #
    def claim(self, timeout: float | None = None) -> int | None:
        """Reserve the next step index to produce, or ``None`` to stop.

        Blocks while the claim window is full (``capacity`` steps ahead of
        the consumer).  Returns ``None`` when the buffer is closed, a
        failure was recorded, every step up to ``limit`` is claimed, or
        ``timeout`` elapses — all of which mean "stop producing".
        """
        with self._state:
            while True:
                if self._closed or self._failure is not None:
                    return None
                if self.limit is not None and self._next_claim >= self.limit:
                    return None
                if self._next_claim < self._next_take + self.capacity:
                    step = self._next_claim
                    self._next_claim += 1
                    return step
                if not self._state.wait(timeout if timeout is not None else 0.1):
                    if timeout is not None:
                        return None

    def publish(self, step: int, batch) -> None:
        """Hand a produced batch to the consumer (no-op after close)."""
        with self._state:
            if self._closed:
                return
            self._ready[step] = batch
            self._state.notify_all()

    def fail(self, exc: BaseException) -> None:
        """Record a worker failure; wakes everyone, first failure wins."""
        with self._state:
            if self._failure is None:
                self._failure = exc
            self._state.notify_all()

    # ------------------------------------------------------------------ #
    # Consumer side
    # ------------------------------------------------------------------ #
    def take(self, step: int, timeout: float | None = None):
        """Block until ``step``'s batch is available and remove it.

        Steps must be taken in order (``step`` equals the number of takes
        so far).  Raises :class:`PipelineError` if a worker failed,
        :class:`~repro.concurrency.QueueClosedError` if the buffer closed
        (or ``timeout`` elapsed) before the batch arrived.
        """
        with self._state:
            if step != self._next_take:
                raise ValueError(
                    f"steps must be taken in order: expected {self._next_take}, "
                    f"got {step}")
            while step not in self._ready:
                if self._failure is not None:
                    raise PipelineError(
                        f"pipeline worker failed while sampling "
                        f"(consumer was waiting on step {step})"
                    ) from self._failure
                if self._closed:
                    raise QueueClosedError("prefetch buffer is closed")
                if not self._state.wait(timeout if timeout is not None else 0.1):
                    if timeout is not None:
                        raise QueueClosedError(
                            f"timed out waiting {timeout}s for step {step}")
            batch = self._ready.pop(step)
            self._next_take = step + 1
            self._state.notify_all()  # reopens the claim window
            return batch

    def ready(self, step: int) -> bool:
        """True if ``step`` can be taken without waiting (a buffer *hit*)."""
        with self._lock:
            return step in self._ready

    # ------------------------------------------------------------------ #
    # Lifecycle / introspection
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Stop production and wake all waiters; buffered batches are
        discarded (training contexts are cheap to re-derive — they are pure
        functions of ``(seed, step, slot)``)."""
        with self._state:
            self._closed = True
            self._ready.clear()
            self._state.notify_all()

    @property
    def closed(self) -> bool:
        return self._closed

    @property
    def failure(self) -> BaseException | None:
        return self._failure

    @property
    def depth(self) -> int:
        """Number of produced-but-untaken steps currently buffered."""
        with self._lock:
            return len(self._ready)

    def __len__(self) -> int:
        return self.depth
