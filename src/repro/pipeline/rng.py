"""Deterministic per-step RNG derivation for pipelined context sampling.

The trainer's legacy sampling advances one shared ``np.random.Generator``
across steps, so context ``k`` of step ``s`` depends on every draw before
it — impossible to reproduce from a worker thread that doesn't replay the
whole history.  :func:`derive_step_rng` removes that dependency: each
``(seed, step, slot)`` triple keys its own generator, making the context a
pure function of those three integers (the same philosophy as
:func:`repro.core.task_chunk_rng` on the serving side).  Any number of
workers sampling any interleaving of steps then produces **bit-identical**
contexts to a sequential loop over ``step`` and ``slot``.
"""

from __future__ import annotations

import numpy as np

__all__ = ["derive_step_rng", "STEP_RNG_DOMAIN"]

# Domain separator keying training-step streams apart from every other
# derived-generator family in the repo (e.g. task_chunk_rng's
# (seed, user, sample, chunk) keys on the serving side).
STEP_RNG_DOMAIN = 0x48495245  # "HIRE"


def derive_step_rng(seed: int, step: int, slot: int) -> np.random.Generator:
    """Generator for context ``slot`` of training step ``step``.

    Deriving from ``(seed, step, slot)`` — instead of advancing one shared
    stream — makes training-context sampling order-independent: prefetch
    workers can sample steps ahead, out of order, or in parallel and the
    optimiser still consumes exactly the contexts a sequential loop would
    have drawn.
    """
    return np.random.default_rng(
        [STEP_RNG_DOMAIN, int(seed), int(step), int(slot)])
