"""``repro.pipeline`` — parallel training-context prefetching.

Profiling (``docs/observability.md``) shows ``train_step`` spending a
large share of its wall-clock inside the ``sample`` span: the trainer
draws its mini-batch of BFS contexts sequentially before any forward work
starts.  This package overlaps that sampling with optimisation without
giving up determinism:

* :mod:`~repro.pipeline.rng` — :func:`derive_step_rng`: each
  ``(seed, step, slot)`` keys its own generator, so a context is a pure
  function of the step index (the training-side twin of
  :func:`repro.core.task_chunk_rng`);
* :mod:`~repro.pipeline.source` — :class:`ContextBatchSource`: one step's
  mini-batch of contexts from those derived generators;
* :mod:`~repro.pipeline.buffer` — :class:`PrefetchBuffer`: a bounded
  claim/publish/take reorder buffer with producer backpressure,
  drain-aware shutdown, and worker-failure propagation (built on the
  shared :mod:`repro.concurrency` primitives);
* :mod:`~repro.pipeline.runner` — :class:`ContextPipeline`: worker
  threads (or opt-in worker processes) keeping the buffer full ahead of
  ``HIRETrainer.fit``, with hit/starvation/wait/depth metrics through
  :mod:`repro.obs`.

The determinism contract: with ``TrainerConfig.per_step_rng`` (implied by
``prefetch_workers > 0``), ``fit``'s ``loss_history`` is **bit-identical**
for any worker count, buffer depth, or backend — see
``docs/training_pipeline.md`` and ``benchmarks/bench_pipeline_throughput.py``.
"""

from .buffer import PipelineError, PrefetchBuffer
from .rng import STEP_RNG_DOMAIN, derive_step_rng
from .runner import BACKENDS, ContextPipeline
from .source import ContextBatchSource

__all__ = [
    "derive_step_rng",
    "STEP_RNG_DOMAIN",
    "PrefetchBuffer",
    "PipelineError",
    "ContextBatchSource",
    "ContextPipeline",
    "BACKENDS",
]
