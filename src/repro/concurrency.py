"""Shared bounded-queue and worker-pool primitives.

Originally written for the serving layer (``repro.serve.workers``), now
extracted so the online service and the training-context pipeline
(:mod:`repro.pipeline`) run on one implementation instead of two copies.

Two queue policies coexist behind the same class:

* **Backpressure by load shedding** — :meth:`BoundedQueue.put` never
  blocks.  A full queue raises the configured *full* error immediately,
  pushing the wait out to the client (which can retry) instead of letting
  unbounded work pile up inside the process.  This is the serving-layer
  policy.
* **Backpressure by blocking** — :meth:`BoundedQueue.put_wait` waits for
  space instead of shedding.  Producers that must not drop work (the
  prefetching samplers of ``repro.pipeline``) park until a consumer makes
  room or the queue closes.

Shutdown is drain-aware in both cases: :meth:`BoundedQueue.close` stops
intake; getters keep draining until the queue is empty, at which point the
configured *closed* error signals workers to exit.  Nothing is ever
silently dropped.

The error types are injectable so that subsystem façades can surface their
own exception hierarchies (``repro.serve`` raises its typed
``QueueFullError`` / ``ServiceClosedError``) while sharing this code.
"""

from __future__ import annotations

import threading
import time
from collections import deque

__all__ = ["QueueFullError", "QueueClosedError", "BoundedQueue", "WorkerPool"]


class QueueFullError(RuntimeError):
    """Default *full* error: a non-blocking put found the queue at capacity."""


class QueueClosedError(RuntimeError):
    """Default *closed* error: the queue no longer accepts or holds work."""


class BoundedQueue:
    """A bounded MPMC queue with non-blocking put, blocking put, timed get."""

    def __init__(self, maxsize: int, *,
                 full_error: type[Exception] = QueueFullError,
                 closed_error: type[Exception] = QueueClosedError):
        if maxsize < 1:
            raise ValueError("maxsize must be >= 1")
        self.maxsize = maxsize
        self._full_error = full_error
        self._closed_error = closed_error
        self._items: deque = deque()
        self._lock = threading.Lock()
        self._not_empty = threading.Condition(self._lock)
        self._not_full = threading.Condition(self._lock)
        self._closed = False

    def put(self, item) -> None:
        """Enqueue without blocking; shed load when full.

        Raises the configured *full* error when the queue is at capacity
        and the *closed* error after :meth:`close`.
        """
        with self._lock:
            if self._closed:
                raise self._closed_error("queue is closed")
            if len(self._items) >= self.maxsize:
                raise self._full_error(
                    f"queue full ({self.maxsize} pending); retry later")
            self._items.append(item)
            self._not_empty.notify()

    def put_wait(self, item, timeout: float | None = None) -> bool:
        """Enqueue, blocking until space frees up (producer backpressure).

        Returns ``True`` once enqueued, ``False`` if ``timeout`` seconds
        elapsed with the queue still full.  Raises the configured *closed*
        error if the queue closes before (or while) waiting.
        """
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._not_full:
            while True:
                if self._closed:
                    raise self._closed_error("queue is closed")
                if len(self._items) < self.maxsize:
                    self._items.append(item)
                    self._not_empty.notify()
                    return True
                remaining = None if deadline is None else deadline - time.monotonic()
                if remaining is not None and remaining <= 0:
                    return False
                self._not_full.wait(remaining)

    def get(self, timeout: float):
        """Dequeue one item, waiting up to ``timeout`` seconds.

        Returns the item, or ``None`` on timeout.  Raises the configured
        *closed* error once the queue is closed *and* empty — the signal
        for a draining worker to exit.
        """
        with self._not_empty:
            if not self._items:
                if self._closed:
                    raise self._closed_error("queue is closed and drained")
                self._not_empty.wait(timeout)
            if self._items:
                item = self._items.popleft()
                self._not_full.notify()
                return item
            if self._closed:
                raise self._closed_error("queue is closed and drained")
            return None

    def close(self) -> list:
        """Stop intake and wake all waiters; returns the items still queued.

        The pending items stay in the queue for draining workers; the
        returned list is a snapshot the caller may use to fail fast instead
        (after :meth:`drain`).
        """
        with self._lock:
            self._closed = True
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return list(self._items)

    def drain(self) -> list:
        """Atomically remove and return every queued item."""
        with self._lock:
            items = list(self._items)
            self._items.clear()
            self._not_empty.notify_all()
            self._not_full.notify_all()
            return items

    @property
    def closed(self) -> bool:
        return self._closed

    def __len__(self) -> int:
        with self._lock:
            return len(self._items)


class WorkerPool:
    """Named daemon threads running one loop function until told to stop.

    ``loop`` is called repeatedly as ``loop(stop_event)``; it returns
    ``False`` (or the stop event is set and the loop observes it) to exit.
    :meth:`close` sets the event and joins every thread — with a timeout,
    so shutdown can never hang forever on a stuck worker.
    """

    def __init__(self, loop, num_workers: int = 1, name: str = "worker"):
        if num_workers < 1:
            raise ValueError("num_workers must be >= 1")
        self._loop = loop
        self._stop = threading.Event()
        self._threads = [
            threading.Thread(target=self._run, name=f"{name}-{index}", daemon=True)
            for index in range(num_workers)
        ]
        self._started = False

    def _run(self) -> None:
        while not self._stop.is_set():
            if self._loop(self._stop) is False:
                break

    def start(self) -> None:
        if self._started:
            return
        self._started = True
        for thread in self._threads:
            thread.start()

    def join(self, timeout: float | None = None) -> None:
        """Wait for workers to exit on their own (e.g. a drained queue)
        WITHOUT signalling them to stop — the draining-shutdown path."""
        if not self._started:
            return
        for thread in self._threads:
            thread.join(timeout)

    def close(self, timeout: float | None = 10.0) -> None:
        """Signal every worker to stop and join them (bounded wait)."""
        self._stop.set()
        if not self._started:
            return
        for thread in self._threads:
            thread.join(timeout)

    @property
    def stopping(self) -> bool:
        return self._stop.is_set()

    def alive_count(self) -> int:
        return sum(thread.is_alive() for thread in self._threads)

    def __len__(self) -> int:
        return len(self._threads)
