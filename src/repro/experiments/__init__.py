"""``repro.experiments`` — the per-table/figure reproduction harness."""

from .compare import compare_overall, render_comparison, shape_checks
from .configs import DATASET_SCALES, EXPERIMENTS, ExperimentSpec
from .paper_numbers import (
    PAPER_FINDINGS,
    PAPER_TABLE3,
    PAPER_TABLE4,
    PAPER_TABLE5,
    PAPER_TABLE6,
    paper_cell,
)
from .models import HIREModel, MODEL_NAMES, create_model, models_for_dataset
from .online_bench import run_online_benchmark, write_online_bench_json
from .serve_bench import run_serve_benchmark, write_serve_bench_json
from .substrate_bench import run_substrate_microbench, write_bench_json
from .runner import (
    prepare_workload,
    run_ablation,
    run_case_study,
    run_experiment,
    run_overall_performance,
    run_sampling_ablation,
    run_sensitivity,
    run_test_time,
)
from .tables import (
    render_ablation_table,
    render_attention_matrix,
    render_overall_table,
    render_sweep_table,
    render_timing_table,
)

__all__ = [
    "EXPERIMENTS",
    "ExperimentSpec",
    "DATASET_SCALES",
    "compare_overall",
    "render_comparison",
    "shape_checks",
    "paper_cell",
    "PAPER_FINDINGS",
    "PAPER_TABLE3",
    "PAPER_TABLE4",
    "PAPER_TABLE5",
    "PAPER_TABLE6",
    "HIREModel",
    "MODEL_NAMES",
    "create_model",
    "models_for_dataset",
    "prepare_workload",
    "run_substrate_microbench",
    "write_bench_json",
    "run_serve_benchmark",
    "write_serve_bench_json",
    "run_online_benchmark",
    "write_online_bench_json",
    "run_experiment",
    "run_overall_performance",
    "run_test_time",
    "run_sensitivity",
    "run_ablation",
    "run_sampling_ablation",
    "run_case_study",
    "render_overall_table",
    "render_ablation_table",
    "render_timing_table",
    "render_sweep_table",
    "render_attention_matrix",
]
