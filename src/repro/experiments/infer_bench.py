"""Microbenchmark of the graph-free inference engine (:mod:`repro.nn.inference`).

Times one HIRE forward at the paper config (n = m = 32 contexts, K = 3 HIM
blocks, 8 heads × 16 dims) three ways on the same model and context:

* **tensor** — the ``no_grad`` fused Tensor forward: every op still builds
  a ``Tensor`` node and allocates its outputs;
* **engine** — the compiled :class:`~repro.nn.inference.InferencePlan`
  running ``out=`` kernels into a reused workspace (zero allocations after
  warmup);
* **engine batched** — the same plan family over a stacked batch of
  contexts, matching how :class:`repro.serve.PredictionService` scores
  same-shape micro-batches.

A fourth section times **padded packing** on mixed-shape traffic: contexts
of several nearby (n, m) shapes forwarded one-at-a-time through their own
plans (the exact-shape-only behavior) versus one padded stacked
:func:`~repro.nn.inference.forward_inference_packed` execution, with and
without the warm-entity :class:`~repro.nn.inference.EmbeddingStore`;
``pack_gain`` and the pad-waste ratio land in the payload.

Every timed engine output is asserted **bitwise identical** to the Tensor
path (packed real rows to the unpadded path), and the per-call allocation
count is measured with ``tracemalloc`` — the speedup is never bought with
a numerics change or hidden allocation.

``benchmarks/bench_infer_engine.py`` writes the result as
``BENCH_infer.json`` at the repo root; ``--smoke`` shrinks the config and
skips the JSON write.
"""

from __future__ import annotations

import json
import time
import tracemalloc
from pathlib import Path

import numpy as np

from .. import nn
from ..core import HIRE, HIREConfig, build_context
from ..data import RatingGraph, movielens_like
from ..nn import inference

__all__ = [
    "run_infer_microbench",
    "write_infer_bench_json",
    "INFER_BENCH_FILENAME",
]

INFER_BENCH_FILENAME = "BENCH_infer.json"


def _setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        n = m = 8
        batch = 2
        repeats = 5
        mixed_shapes = [(8, 8), (6, 7), (7, 5), (5, 8)]
    else:
        dataset = movielens_like(num_users=150, num_items=100, seed=0,
                                 ratings_per_user=30.0)
        model_cfg = dict(num_blocks=3, num_heads=8, attr_dim=16, seed=0)
        n = m = 32
        batch = 8
        repeats = 30
        # The serving mixed-traffic regime: small nearby shapes sharing one
        # (12, 12) bucket.  At these sizes fragmented solo forwards pay
        # numpy dispatch per context, so one padded stacked execution wins;
        # at the paper's 32x32 the stacked intermediates blow the cache on
        # a single-core box and padding loses (see docs/nn_substrate.md).
        mixed_shapes = [(12, 12), (11, 12), (10, 11), (12, 10),
                        (9, 12), (11, 9)]
    graph = RatingGraph(dataset.ratings, dataset.num_users, dataset.num_items)
    rng = np.random.default_rng(0)
    contexts = [
        build_context(graph, rng.choice(dataset.num_users, n, replace=False),
                      rng.choice(dataset.num_items, m, replace=False), rng,
                      reveal_fraction=0.1)
        for _ in range(batch)
    ]
    # Mixed-shape traffic: every shape fits the (n, m) bucket, none matches
    # another exactly — the worst case for exact-shape-only stacking.
    mixed = [
        build_context(graph,
                      rng.choice(dataset.num_users, ni, replace=False),
                      rng.choice(dataset.num_items, mi, replace=False), rng,
                      reveal_fraction=0.1)
        for ni, mi in mixed_shapes
    ]
    model = HIRE(dataset, HIREConfig(**model_cfg))
    model.eval()
    return model, contexts, mixed, repeats


def _best_of(fn, repeats: int) -> float:
    best = float("inf")
    for _ in range(repeats):
        tick = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - tick)
    return best


def _allocations_per_call(fn, calls: int = 10) -> int:
    """Net traced bytes across ``calls`` steady-state invocations."""
    fn()  # warm-up inside the traced regime's setup
    tracemalloc.start()
    base = tracemalloc.take_snapshot()
    for _ in range(calls):
        fn()
    snap = tracemalloc.take_snapshot()
    tracemalloc.stop()
    return sum(stat.size_diff for stat in snap.compare_to(base, "filename")
               if "repro" in (stat.traceback[0].filename or ""))


def run_infer_microbench(smoke: bool = False) -> dict:
    """Engine vs. ``no_grad`` Tensor forward on one model; returns stats."""
    model, contexts, mixed, repeats = _setup(smoke)
    context = contexts[0]
    pack_n = max(c.n for c in mixed)
    pack_m = max(c.m for c in mixed)

    def tensor_forward():
        with nn.no_grad():
            return model.forward(context).data

    def tensor_forward_many():
        with nn.no_grad():
            return model.forward_many(contexts).data

    def engine_forward():
        return inference.forward_inference(model, context)

    def engine_forward_many():
        return inference.forward_inference_many(model, contexts)

    def engine_forward_each_mixed():
        # Exact-shape-only serving of mixed traffic: every context forwards
        # alone through its own plan (the pre-packing behavior).
        for ctx in mixed:
            inference.forward_inference(model, ctx)

    def engine_forward_packed():
        return inference.forward_inference_packed(model, mixed, pack_n, pack_m)

    store = inference.EmbeddingStore(model)

    def engine_forward_packed_store():
        return inference.forward_inference_packed(model, mixed, pack_n, pack_m,
                                                  embed_store=store)

    # Warm up both paths (plan build, BLAS init) and pin bit-identity.
    ref, out = tensor_forward(), engine_forward()
    assert ref.tobytes() == out.tobytes(), "engine diverged from Tensor path"
    ref_many, out_many = tensor_forward_many(), engine_forward_many()
    assert ref_many.tobytes() == out_many.tobytes(), (
        "batched engine diverged from Tensor path")
    mixed_refs = [inference.forward_inference(model, c).copy() for c in mixed]
    for packed_forward in (engine_forward_packed, engine_forward_packed_store):
        outputs, slots = packed_forward()
        for index, (ctx, solo) in enumerate(zip(mixed, mixed_refs)):
            padded = outputs[slots[index]][:ctx.n, :ctx.m]
            assert padded.tobytes() == solo.tobytes(), (
                "packed engine diverged from the unpadded path")

    tensor_seconds = _best_of(tensor_forward, repeats)
    engine_seconds = _best_of(engine_forward, repeats)
    tensor_many_seconds = _best_of(tensor_forward_many, repeats)
    engine_many_seconds = _best_of(engine_forward_many, repeats)
    mixed_each_seconds = _best_of(engine_forward_each_mixed, repeats)
    mixed_packed_seconds = _best_of(engine_forward_packed, repeats)
    mixed_packed_store_seconds = _best_of(engine_forward_packed_store, repeats)
    engine_growth = _allocations_per_call(engine_forward)

    real_cells = sum(c.n * c.m for c in mixed)
    padded_cells = pack_n * pack_m * len(mixed)
    stats = inference.cache_stats()
    return {
        "benchmark": "infer_engine",
        "smoke": smoke,
        "config": {
            "n": context.n,
            "m": context.m,
            "batch": len(contexts),
            "num_blocks": model.config.num_blocks,
            "num_heads": model.config.num_heads,
            "attr_dim": model.config.attr_dim,
        },
        "tensor_forward_seconds": tensor_seconds,
        "engine_forward_seconds": engine_seconds,
        "tensor_forward_many_seconds": tensor_many_seconds,
        "engine_forward_many_seconds": engine_many_seconds,
        "speedup_single": tensor_seconds / engine_seconds,
        "speedup_batched": tensor_many_seconds / engine_many_seconds,
        "engine_steady_state_bytes": engine_growth,
        "bit_identical": True,
        "plan_cache": stats,
        "packing": {
            "mixed_shapes": [[c.n, c.m] for c in mixed],
            "bucket": [pack_n, pack_m],
            "each_seconds": mixed_each_seconds,
            "packed_seconds": mixed_packed_seconds,
            "packed_store_seconds": mixed_packed_store_seconds,
            "pack_gain": mixed_each_seconds / mixed_packed_seconds,
            "pack_gain_store": (mixed_each_seconds
                                / mixed_packed_store_seconds),
            "pad_waste": padded_cells / real_cells - 1.0,
            "embed_store": store.stats(),
        },
    }


def write_infer_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_infer.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / INFER_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
