"""Throughput benchmark of the ``repro.serve`` online inference subsystem.

Replays one skewed workload (hot users dominate, as real traffic does)
through :class:`repro.serve.PredictionService` across a grid of micro-batch
sizes × context cache on/off × inference engine on/off
(:mod:`repro.nn.inference`), against a **sequential baseline** that scores
one request at a time through the same predictor code path — no queue, no
batching, no cache, Tensor-path forwards.

Every serviced run is checked **bit-identical** to the baseline (the
per-request RNG derivation makes batched/cached scores exactly equal to
sequential ones), so the speedup is never bought with a numerics change.

A **packing** section replays a mixed-shape workload (per-request context
budget overrides drawn from several nearby (n, m) pairs) through the
padded-packing path (``pack_contexts=True``) and through the historical
exact-shape-only grouping, recording ``pack_gain``, pad-waste and bucket
occupancy stats, and the plan-cache hit rate of each mode — mixed traffic
under exact-only grouping fragments micro-batches into per-shape forwards
and thrashes the plan LRU, which is exactly what shape buckets fix.

A **tracing** section measures the telemetry plane itself: the same
workload replayed with per-request stage tracing + rolling windows + the
JSONL trace sink + the background exporter all on, against everything off
— recording the overhead (must stay within a few percent), a
trace-derived per-stage latency breakdown (queue wait / batch form /
assemble / pack / forward / respond), and a bit-identity check proving
the plane is passive.

An **assembly** section measures context assembly itself: the vectorized
CSR-based neighbourhood sampler against the reference loop sampler
(bit-identical contexts, min-of-interleaved-repeats speedup), the
frontier cache's cold→hot hit-rate trajectory on a power-law workload
(with served scores still bit-identical to the sequential baseline), and
the adaptive budget ladder under synthetic overload — a one-worker
service flooded faster than it can drain, once with fixed budgets and
once with the ladder on, recording the p99 each regime reaches, the SLO
health verdict, and a bit-identity check of every degraded score against
a sequential replay at the same effective ``(n, m)``.

A **sharding** section drives a :class:`repro.serve.ShardRouter` (verify
mode on) with a power-law workload interleaved with tail-biased flash
update bursts, against a segmented sequential baseline that fully rebuilds
the graph between segments — recording per-shard routed counts and p99s,
the ``balance`` and ``invalidation_precision`` headline ratios, the
incremental-vs-rebuild update timing, and the end-to-end bit-identity of
the sharded, incrementally-updated deployment.

``benchmarks/bench_serve_throughput.py`` writes the result as
``BENCH_serve.json`` at the repo root; ``--smoke`` runs a shrunken grid in
seconds and skips the JSON write.
"""

from __future__ import annotations

import json
import tempfile
import time
from pathlib import Path

import numpy as np

from .. import nn
from ..core import HIRE, HIREConfig
from ..nn import inference
from ..core.predictor import assemble_user_chunks, build_serving_graph, task_chunk_rng
from ..core.sampling import NeighborhoodSampler
from ..data import RatingGraph, make_cold_start_split, movielens_like
from ..eval.tasks import build_eval_tasks
from ..obs import TRACE_STAGES, default_serve_rules, read_run
from ..serve import (
    PredictionService,
    QueueFullError,
    RouterConfig,
    ServiceConfig,
    ShardRouter,
    WorkloadRequest,
    dedupe_deltas,
    replay_workload,
    synthesize_power_law_workload,
    synthesize_update_bursts,
    synthesize_workload,
)

__all__ = [
    "run_serve_benchmark",
    "write_serve_bench_json",
    "SERVE_BENCH_FILENAME",
]

SERVE_BENCH_FILENAME = "BENCH_serve.json"


def _setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        max_tasks, num_requests = 6, 18
        batch_sizes = (1, 4)
        mixed_budgets = [(12, 12), (10, 11), (9, 12)]
    else:
        dataset = movielens_like(num_users=150, num_items=100, seed=0,
                                 ratings_per_user=30.0)
        model_cfg = dict(num_blocks=3, num_heads=8, attr_dim=16, seed=0)
        max_tasks, num_requests = 12, 96
        batch_sizes = (1, 4, 8, 16)
        mixed_budgets = [(12, 12), (10, 11), (9, 12), (12, 10)]
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    tasks = build_eval_tasks(split, "user", min_query=2, seed=0,
                             max_tasks=max_tasks)
    model = HIRE(dataset, HIREConfig(**model_cfg))
    workload = synthesize_workload(tasks, num_requests, seed=0)
    mixed = synthesize_workload(tasks, num_requests, seed=1,
                                context_budgets=mixed_budgets)
    return dataset, split, tasks, model, workload, mixed, batch_sizes


def _score_sequential(model, split, tasks, workload, config: ServiceConfig):
    """One-request-at-a-time reference: the exact predictor code path,
    assembled and forwarded per request with no batching or caching.
    Per-request context-budget overrides are honored, mirroring
    ``PredictionService.submit``."""
    graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
    return _score_sequential_graph(model, graph, candidate_users,
                                   candidate_items, workload, config)


def _score_sequential_graph(model, graph, candidate_users, candidate_items,
                            workload, config: ServiceConfig):
    """Sequential reference against an explicit graph state (the sharding
    section scores each inter-burst segment against its own graph)."""
    sampler = NeighborhoodSampler()
    scores = []
    for request in workload:
        query_items = np.asarray(request.item_ids, dtype=np.int64)
        support_items = np.asarray(request.support_items, dtype=np.int64)
        context_users = (config.context_users if request.context_users is None
                         else request.context_users)
        context_items = (config.context_items if request.context_items is None
                         else request.context_items)
        total = None
        for sample_index in range(config.num_context_samples):
            def rng_factory(start, _sample=sample_index):
                return task_chunk_rng(config.seed, request.user, _sample, start)
            chunks = assemble_user_chunks(
                graph, sampler, request.user, query_items, support_items,
                context_users=context_users,
                context_items=context_items,
                reveal_fraction=config.reveal_fraction,
                candidate_users=candidate_users,
                candidate_items=candidate_items,
                rng_factory=rng_factory)
            part = np.empty(len(query_items), dtype=np.float64)
            with nn.no_grad():
                for chunk in chunks:
                    out = model.forward(chunk.context).data
                    part[chunk.start:chunk.start + len(chunk)] = (
                        out[chunk.user_row, chunk.cols])
            total = part if total is None else total + part
        scores.append(total / config.num_context_samples)
    return scores


def _run_service(model, split, tasks, workload, config: ServiceConfig):
    service = PredictionService.from_split(model, split, tasks, config=config)
    try:
        start = time.perf_counter()
        scores = replay_workload(service, workload)
        seconds = time.perf_counter() - start
        snapshot = service.metrics.snapshot()
        latency = snapshot["serve.latency_seconds"]
        result = {
            "batch_size": config.max_batch_size,
            "cache": config.cache_enabled,
            "engine": config.use_inference_engine,
            "num_workers": config.num_workers,
            "seconds": seconds,
            "requests_per_second": len(workload) / seconds,
            "latency_p50_ms": latency["p50"] * 1e3,
            "latency_p99_ms": latency["p99"] * 1e3,
            "mean_batch_size": snapshot["serve.batch_size"]["mean"],
        }
        if service.cache is not None:
            result["cache_hit_rate"] = service.cache.stats.hit_rate
        return result, scores
    finally:
        service.close()


def _plan_cache_counters() -> tuple[int, int]:
    stats = inference.cache_stats()
    return stats["hits"], stats["misses"]


def _warm_packing_service(model, split, tasks, workload, pack_contexts: bool):
    """Build a service in one packing mode and warm it on the workload.

    The warm replay fills the context cache and builds plans on the fresh
    worker thread (plan caches are thread-local, so each mode starts
    cold) — the packing win is a forward-execution property, so it is
    measured with assembly amortized, as a hot serving process runs.
    """
    config = ServiceConfig(max_batch_size=8,
                           queue_size=max(len(workload), 8),
                           pack_contexts=pack_contexts)
    service = PredictionService.from_split(model, split, tasks, config=config)
    replay_workload(service, workload)
    return service


def _timed_replay_with_plan_cache(service, workload):
    """One timed replay plus the plan-cache counter delta across it.

    Steady-state misses mean the mode's key diversity exceeds the LRU and
    it is rebuilding plans per batch.  Replays never overlap, so the
    process-global counters attribute cleanly to the replaying service.
    """
    hits_before, misses_before = _plan_cache_counters()
    start = time.perf_counter()
    scores = replay_workload(service, workload)
    seconds = time.perf_counter() - start
    hits, misses = _plan_cache_counters()
    hits -= hits_before
    misses -= misses_before
    total = hits + misses
    cache = {"hits": hits, "misses": misses,
             "hit_rate": hits / total if total else 0.0}
    return seconds, scores, cache


def _run_packing_benchmark(model, split, tasks, mixed, config,
                           repeats: int = 1) -> dict:
    """Packed vs exact-shape-only serving of the mixed-budget workload.

    Both modes stay warm at once and their timed replays interleave, so
    slow drift in machine speed lands on both sides of ``pack_gain``
    instead of biasing whichever mode was measured last; min-of-repeats
    per mode then absorbs scheduler noise.
    """
    expected = _score_sequential(model, split, tasks, mixed, config)
    exact_service = _warm_packing_service(model, split, tasks, mixed,
                                          pack_contexts=False)
    packed_service = _warm_packing_service(model, split, tasks, mixed,
                                           pack_contexts=True)
    try:
        best = {}
        for _ in range(repeats):
            for mode, service in (("exact", exact_service),
                                  ("packed", packed_service)):
                seconds, scores, cache = _timed_replay_with_plan_cache(
                    service, mixed)
                if mode not in best or seconds < best[mode][0]:
                    best[mode] = (seconds, scores, cache)
        exact_seconds, exact_scores, exact_cache = best["exact"]
        packed_seconds, packed_scores, packed_cache = best["packed"]
        snapshot = packed_service.metrics.snapshot()
        stats = packed_service.stats()
    finally:
        exact_service.close()
        packed_service.close()

    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(expected, exact_scores)
    ) and all(
        np.array_equal(a, b) for a, b in zip(expected, packed_scores))
    budgets = sorted({(r.context_users, r.context_items) for r in mixed})
    section = {
        "mixed_budgets": [list(b) for b in budgets],
        "num_requests": len(mixed),
        "exact_only_seconds": exact_seconds,
        "packed_seconds": packed_seconds,
        "pack_gain": exact_seconds / packed_seconds,
        "bit_identical_to_sequential": bit_identical,
        "plan_cache": {"exact_only": exact_cache, "packed": packed_cache},
        "packed_contexts_total": snapshot.get(
            "serve.packed_contexts_total", {}).get("value", 0),
        "pad_waste_last": snapshot.get(
            "serve.pack_pad_waste", {}).get("value", 0.0),
    }
    occupancy = snapshot.get("serve.pack_bucket_occupancy")
    if occupancy:
        section["bucket_occupancy"] = {key: occupancy[key]
                                       for key in ("count", "mean", "p50")}
    if "embed_store" in stats:
        section["embed_store"] = stats["embed_store"]
    return section


def _warm_tracing_service(model, split, tasks, workload, trace_enabled: bool,
                          trace_sink=None, export_path=None):
    """Build a service with the telemetry plane on or off and warm it
    (caches, plans, thread-local state).

    The export interval is kept short enough to guarantee many periodic
    snapshots during the timed replays, but not so hot that the exporter
    thread (each tick renders ``health()``, merging the windowed
    histograms) becomes a workload of its own on a single-core runner.
    """
    config = ServiceConfig(max_batch_size=8,
                           queue_size=max(len(workload), 8),
                           trace_enabled=trace_enabled,
                           trace_sink=trace_sink,
                           export_path=export_path,
                           export_interval_seconds=0.25)
    service = PredictionService.from_split(model, split, tasks, config=config)
    replay_workload(service, workload)
    return service


def _run_tracing_benchmark(model, split, tasks, workload, expected,
                           smoke: bool) -> dict:
    """Tracing-overhead section: full plane on (tracer + stage windows +
    JSONL trace sink + background exporter) vs everything off, plus the
    trace-derived per-stage latency breakdown.

    The headline numbers: ``overhead`` (traced vs untraced steady-state
    wall time; the plane must stay within a few percent) and
    ``bit_identical`` (traced scores exactly equal untraced scores and the
    sequential baseline — tracing is passive by construction, this proves
    it end-to-end).  The overhead is a handful of clock reads per request,
    far below scheduler noise on a single run, so both modes stay warm at
    once, their timed replays interleave (drift lands on both sides of
    the ratio), and each mode keeps its fastest replay.
    """
    repeats = 1 if smoke else 3
    with tempfile.TemporaryDirectory() as tmp:
        trace_sink = str(Path(tmp) / "traces.jsonl")
        export_path = str(Path(tmp) / "telemetry.jsonl")
        untraced_service = _warm_tracing_service(
            model, split, tasks, workload, trace_enabled=False)
        traced_service = _warm_tracing_service(
            model, split, tasks, workload, trace_enabled=True,
            trace_sink=trace_sink, export_path=export_path)
        try:
            untraced_seconds = traced_seconds = float("inf")
            untraced_scores = traced_scores = None
            for _ in range(repeats):
                start = time.perf_counter()
                untraced_scores = replay_workload(untraced_service, workload)
                untraced_seconds = min(untraced_seconds,
                                       time.perf_counter() - start)
                start = time.perf_counter()
                traced_scores = replay_workload(traced_service, workload)
                traced_seconds = min(traced_seconds,
                                     time.perf_counter() - start)
            snapshot = traced_service.metrics.snapshot()
            stages = {}
            for stage in TRACE_STAGES:
                snap = snapshot.get(f"serve.stage.{stage}_seconds")
                if snap and snap["count"]:
                    stages[stage] = {"count": snap["count"],
                                     "mean_ms": snap["mean"] * 1e3,
                                     "p99_ms": snap["p99"] * 1e3}
            exports = traced_service.exporter.num_exports
            traces = traced_service.tracer.completed
        finally:
            untraced_service.close()
            traced_service.close()
        export_records = [r for r in read_run(export_path)
                          if r.get("type") == "export"]
        trace_records = [r for r in read_run(trace_sink)
                         if r.get("type") == "trace"]
    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(untraced_scores, traced_scores)
    ) and all(
        np.array_equal(a, b) for a, b in zip(expected, traced_scores))
    return {
        "num_requests": len(workload),
        "repeats": repeats,
        "untraced_seconds": untraced_seconds,
        "traced_seconds": traced_seconds,
        "overhead": traced_seconds / untraced_seconds - 1.0,
        "bit_identical": bit_identical,
        "stage_breakdown": stages,
        "traces_completed": traces,
        "trace_sink_records": len(trace_records),
        "export_snapshots": exports,
        "export_file_records": len(export_records),
    }


def _run_shard_benchmark(model, split, tasks, config: ServiceConfig,
                         smoke: bool) -> dict:
    """Sharded serving of a power-law workload with flash update bursts.

    A :class:`~repro.serve.ShardRouter` (verify mode on: every incremental
    graph is asserted bitwise identical to a from-scratch rebuild) replays
    a Zipf-skewed workload split into segments, applying a tail-biased
    update burst between segments.  The reference is a *segmented
    sequential baseline*: each segment scored one-request-at-a-time
    against a graph fully rebuilt after the preceding bursts — so the
    bit-identity check covers routing, shared-store snapshots, incremental
    delta application, and fine-grained invalidation at once.

    The two headline numbers are deterministic (seeded workload + stable
    user hash), which is what makes them gateable by
    ``tools/check_bench_regression.py`` where wall-clock latencies are
    not: ``balance`` (mean/max requests routed per shard, 1.0 = perfectly
    even) and ``invalidation_precision`` (fraction of cache entries spared
    across the bursts' eviction sweeps — identically 0 under the old
    invalidate-everything scheme).  Per-shard p99s are *recorded* for the
    report but deliberately not gated.
    """
    num_shards = 2 if smoke else 3
    num_requests = 18 if smoke else 96
    num_bursts = 2 if smoke else 3
    burst_size = 2 if smoke else 4
    workload = synthesize_power_law_workload(tasks, num_requests, seed=2)
    bursts = synthesize_update_bursts(split, tasks, num_bursts=num_bursts,
                                      burst_size=burst_size, seed=3)
    segments = np.array_split(np.arange(num_requests), num_bursts + 1)

    # Reference: segmented sequential scoring with full rebuilds between
    # segments (the pre-incremental update path).
    graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
    expected = []
    rebuild_seconds = 0.0
    ref_graph = graph
    for index, segment in enumerate(segments):
        expected.extend(_score_sequential_graph(
            model, ref_graph, candidate_users, candidate_items,
            [workload[i] for i in segment], config))
        if index < len(bursts):
            applied = dedupe_deltas(ref_graph, bursts[index])
            start = time.perf_counter()
            ref_graph = RatingGraph(
                np.concatenate([ref_graph.triples(), applied]),
                ref_graph.num_users, ref_graph.num_items)
            rebuild_seconds += time.perf_counter() - start

    # The same bursts through the O(deltas) copy-on-write path, timed
    # head-to-head against the rebuilds above.
    incremental_seconds = 0.0
    inc_graph = graph
    for burst in bursts:
        applied = dedupe_deltas(inc_graph, burst)
        start = time.perf_counter()
        inc_graph = inc_graph.apply_deltas(applied)
        incremental_seconds += time.perf_counter() - start
    assert inc_graph.identical_to(ref_graph)

    run_config = ServiceConfig(max_batch_size=8,
                               queue_size=max(num_requests, 8),
                               incremental_verify=True,
                               seed=config.seed)
    router = ShardRouter(model, graph, candidate_users, candidate_items,
                         config=run_config,
                         router_config=RouterConfig(num_shards=num_shards))
    try:
        routed_scores = []
        start = time.perf_counter()
        for index, segment in enumerate(segments):
            routed_scores.extend(replay_workload(
                router, [workload[i] for i in segment]))
            if index < len(bursts):
                router.update_ratings(bursts[index])
        router_seconds = time.perf_counter() - start
        stats = router.stats()
        per_shard_p99_ms = []
        for shard_stats in stats["shards"]:
            latency = shard_stats["metrics"].get("serve.latency_seconds")
            per_shard_p99_ms.append(latency["p99"] * 1e3
                                    if latency and latency["count"] else None)
    finally:
        router.close()

    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(expected, routed_scores))
    routed = stats["routed_per_shard"]
    return {
        "num_shards": num_shards,
        "num_requests": num_requests,
        "num_bursts": num_bursts,
        "burst_size": burst_size,
        "router_seconds": router_seconds,
        "requests_per_second": num_requests / router_seconds,
        "routed_per_shard": routed,
        "balance": (sum(routed) / len(routed)) / max(routed),
        "load_imbalance": stats["load_imbalance"],
        "per_shard_p99_ms": per_shard_p99_ms,
        "invalidation_precision": stats["invalidation_precision"],
        "updates": stats["updates"],
        "bit_identical_to_sequential": bit_identical,
        "update_rebuild_seconds": rebuild_seconds,
        "update_incremental_seconds": incremental_seconds,
        "update_speedup": (rebuild_seconds / incremental_seconds
                           if incremental_seconds else None),
    }


def _assemble_workload(graph, sampler, workload, config: ServiceConfig,
                       candidate_users, candidate_items):
    """Assemble (no forward) every request's chunks with per-chunk RNG."""
    assembled = []
    for request in workload:
        query_items = np.asarray(request.item_ids, dtype=np.int64)
        support_items = np.asarray(request.support_items, dtype=np.int64)

        def rng_factory(start, _user=request.user):
            return task_chunk_rng(config.seed, _user, 0, start)

        assembled.append(assemble_user_chunks(
            graph, sampler, request.user, query_items, support_items,
            context_users=config.context_users,
            context_items=config.context_items,
            reveal_fraction=config.reveal_fraction,
            candidate_users=candidate_users,
            candidate_items=candidate_items,
            rng_factory=rng_factory))
    return assembled


def _sample_workload(graph, sampler, workload, config: ServiceConfig,
                     candidate_users, candidate_items):
    """Run only the sampling step of every chunk the workload assembles.

    Mirrors the chunking arithmetic of
    :func:`repro.core.predictor.assemble_user_chunks` (support reserve,
    chunk size) but skips ``build_context``, so the timed ratio isolates
    the BFS the vectorized fast path replaces.
    """
    for request in workload:
        query_items = np.asarray(request.item_ids, dtype=np.int64)
        support_items = np.asarray(request.support_items, dtype=np.int64)
        reserve = min(len(support_items), max(config.context_items // 4, 1))
        chunk_size = max(config.context_items - reserve, 1)
        for start in range(0, len(query_items), chunk_size):
            chunk = query_items[start:start + chunk_size]
            target_items = np.concatenate([chunk, support_items[:reserve]])
            sampler.sample(
                graph,
                target_users=np.array([request.user]),
                target_items=target_items,
                n=config.context_users, m=config.context_items,
                rng=task_chunk_rng(config.seed, request.user, 0, start),
                candidate_users=candidate_users,
                candidate_items=candidate_items)


def _rotate_repeats(workload) -> list[WorkloadRequest]:
    """Make a repeat-heavy workload coalescing-proof.

    The k-th repeat of a ``(user, items)`` request gets its query tuple
    rotated by k, so identical traffic stops sharing a coalescing key and
    every submission costs a real assembly + forward.  The overload
    benchmark needs this: with coalescing in play, fixed budgets collapse
    duplicate hot requests into one forward each and the budget ladder's
    effect would be measured against the coalescer instead of the queue.
    """
    seen: dict = {}
    rotated = []
    for request in workload:
        key = (request.user, request.item_ids)
        turn = seen.get(key, 0)
        seen[key] = turn + 1
        shift = turn % len(request.item_ids)
        items = request.item_ids[shift:] + request.item_ids[:shift]
        rotated.append(WorkloadRequest(user=request.user, item_ids=items,
                                       support_items=request.support_items))
    return rotated


def _contexts_identical(a_runs, b_runs) -> bool:
    """Bitwise equality of two assembled-workload chunk lists."""
    if len(a_runs) != len(b_runs):
        return False
    for a_chunks, b_chunks in zip(a_runs, b_runs):
        if len(a_chunks) != len(b_chunks):
            return False
        for a, b in zip(a_chunks, b_chunks):
            ca, cb = a.context, b.context
            if not (np.array_equal(ca.users, cb.users)
                    and np.array_equal(ca.items, cb.items)
                    and np.array_equal(ca.ratings, cb.ratings)
                    and np.array_equal(ca.observed, cb.observed)
                    and np.array_equal(ca.revealed, cb.revealed)
                    and a.user_row == b.user_row
                    and np.array_equal(a.cols, b.cols)):
                return False
    return True


def _replay_capturing_budgets(service, workload, timeout: float = 300.0):
    """Replay through ``submit_request`` and keep each request's effective
    ``(context_users, context_items)`` — the budgets the adaptive ladder
    actually assigned, which the sequential bit-identity check replays."""
    requests = []
    for request in workload:
        supports = (np.asarray(request.support_items, dtype=np.int64)
                    if request.support_items is not None else None)
        while True:
            try:
                requests.append(service.submit_request(
                    request.user, request.item_ids, supports,
                    context_users=request.context_users,
                    context_items=request.context_items))
                break
            except QueueFullError:
                time.sleep(0.001)
    scores = [r.future.result(timeout) for r in requests]
    budgets = [(r.context_users, r.context_items) for r in requests]
    return scores, budgets


def _run_assembly_benchmark(model, split, tasks, config: ServiceConfig,
                            smoke: bool) -> dict:
    """Vectorized sampling, frontier caching, and adaptive budgets.

    Three sub-measurements, all on power-law workloads:

    * ``vectorized_speedup`` — wall time of the sampling step of every
      chunk (``build_context`` excluded — it is identical in both modes
      and would dilute the ratio) with the reference loop sampler vs the
      CSR-vectorized fast path, interleaved min-of-repeats.  Full
      assemblies through both samplers must be bit-identical — the fast
      path is an *implementation* of the sampler, not a variant.
    * ``frontier`` — a service with the context cache **off** and the
      frontier cache **on** replays the workload twice; the second pass
      should hit on every previously sampled chunk (steady-state hit
      rate), and every score stays bit-identical to sequential.
    * ``adaptive`` — a one-worker service is flooded with the whole
      workload at once (queue depth ≈ workload size; repeats rotated via
      :func:`_rotate_repeats` so coalescing cannot soak up the load).
      Fixed budgets first, then the ladder; the ladder sheds *work*
      instead of requests, so its p99 must land under the fixed regime's
      while each degraded score stays bit-identical to a sequential
      replay at its effective budgets.  Both caches are off so the ratio
      measures the ladder, not cache luck.
    """
    repeats = 1 if smoke else 3
    num_requests = 12 if smoke else 48
    workload = synthesize_power_law_workload(tasks, num_requests, seed=4)
    graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
    loop_sampler = NeighborhoodSampler(vectorized=False)
    vec_sampler = NeighborhoodSampler(vectorized=True)

    # Warm both paths (CSR build, first-touch allocations) and pin
    # context identity on full warmed assemblies.
    loop_runs = _assemble_workload(graph, loop_sampler, workload, config,
                                   candidate_users, candidate_items)
    vec_runs = _assemble_workload(graph, vec_sampler, workload, config,
                                  candidate_users, candidate_items)
    contexts_identical = _contexts_identical(loop_runs, vec_runs)

    loop_seconds = vec_seconds = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        _sample_workload(graph, loop_sampler, workload, config,
                         candidate_users, candidate_items)
        loop_seconds = min(loop_seconds, time.perf_counter() - start)
        start = time.perf_counter()
        _sample_workload(graph, vec_sampler, workload, config,
                         candidate_users, candidate_items)
        vec_seconds = min(vec_seconds, time.perf_counter() - start)

    # Frontier cache: cold replay (compulsory misses) then hot replay.
    expected = _score_sequential(model, split, tasks, workload, config)
    frontier_config = ServiceConfig(max_batch_size=4,
                                    queue_size=max(num_requests, 8),
                                    cache_enabled=False,
                                    frontier_cache_enabled=True,
                                    seed=config.seed)
    service = PredictionService.from_split(model, split, tasks,
                                           config=frontier_config)
    try:
        cold_scores = replay_workload(service, workload)
        cold = service.frontier_cache.stats.snapshot()
        hot_scores = replay_workload(service, workload)
        total = service.frontier_cache.stats.snapshot()
    finally:
        service.close()
    hot_hits = total["hits"] - cold["hits"]
    hot_lookups = (total["hits"] + total["misses"]
                   - cold["hits"] - cold["misses"])
    frontier = {
        "num_requests": num_requests,
        "cold_hit_rate": cold["hit_rate"],
        "hot_hit_rate": hot_hits / hot_lookups if hot_lookups else 0.0,
        "hits": total["hits"],
        "misses": total["misses"],
        "bit_identical_to_sequential": (
            all(np.array_equal(a, b) for a, b in zip(expected, cold_scores))
            and all(np.array_equal(a, b)
                    for a, b in zip(expected, hot_scores))),
    }

    # Adaptive budgets under overload: one worker, whole workload queued.
    overload = _rotate_repeats(workload)
    overload_expected = _score_sequential(model, split, tasks, overload,
                                          config)
    ladder = ((0, config.context_users, config.context_items),
              (2, 24, 24),
              (8, 16, 16))
    base_kwargs = dict(max_batch_size=4, num_workers=1,
                       queue_size=max(num_requests * 2, 16),
                       cache_enabled=False, frontier_cache_enabled=False,
                       window_seconds=600.0, short_window_seconds=60.0,
                       seed=config.seed)
    fixed_service = PredictionService.from_split(
        model, split, tasks, config=ServiceConfig(**base_kwargs))
    try:
        replay_workload(fixed_service, overload[:2])  # warm worker thread
        fixed_scores, _ = _replay_capturing_budgets(fixed_service, overload)
        fixed_p99 = fixed_service.metrics.snapshot()[
            "serve.latency_seconds"]["p99"]
    finally:
        fixed_service.close()

    slo_p99 = fixed_p99 * 0.8
    adaptive_service = PredictionService.from_split(
        model, split, tasks,
        config=ServiceConfig(adaptive_budgets=True, budget_ladder=ladder,
                             slo_rules=default_serve_rules(
                                 max_p99_seconds=slo_p99),
                             **base_kwargs))
    try:
        replay_workload(adaptive_service, overload[:2])
        adaptive_scores, budgets = _replay_capturing_budgets(
            adaptive_service, overload)
        snapshot = adaptive_service.metrics.snapshot()
        adaptive_p99 = snapshot["serve.latency_seconds"]["p99"]
        degraded = snapshot.get("serve.assemble.degraded_total",
                                {}).get("value", 0)
        health_state = adaptive_service.health()["state"]
    finally:
        adaptive_service.close()

    fixed_identical = all(
        np.array_equal(a, b) for a, b in zip(overload_expected, fixed_scores))
    degraded_workload = [
        WorkloadRequest(user=w.user, item_ids=w.item_ids,
                        support_items=w.support_items,
                        context_users=n, context_items=m)
        for w, (n, m) in zip(overload, budgets)]
    degraded_expected = _score_sequential(model, split, tasks,
                                          degraded_workload, config)
    adaptive_identical = all(
        np.array_equal(a, b)
        for a, b in zip(degraded_expected, adaptive_scores))

    # Per-rung bit-identity: explicit overrides at each ladder budget must
    # reproduce a sequential replay at that same (n, m).
    rung_checks = []
    probe = workload[:2 if smoke else 3]
    rung_service = PredictionService.from_split(
        model, split, tasks, config=ServiceConfig(cache_enabled=False,
                                                  seed=config.seed))
    try:
        for depth, n, m in ladder:
            rung_workload = [
                WorkloadRequest(user=w.user, item_ids=w.item_ids,
                                support_items=w.support_items,
                                context_users=n, context_items=m)
                for w in probe]
            rung_expected = _score_sequential(model, split, tasks,
                                              rung_workload, config)
            rung_scores = replay_workload(rung_service, rung_workload)
            rung_checks.append({
                "rung": [depth, n, m],
                "bit_identical": all(
                    np.array_equal(a, b)
                    for a, b in zip(rung_expected, rung_scores)),
            })
    finally:
        rung_service.close()

    return {
        "num_requests": num_requests,
        "repeats": repeats,
        "loop_seconds": loop_seconds,
        "vectorized_seconds": vec_seconds,
        "vectorized_speedup": loop_seconds / vec_seconds,
        "contexts_identical": contexts_identical,
        "frontier": frontier,
        "adaptive": {
            "ladder": [list(rung) for rung in ladder],
            "fixed_p99_ms": fixed_p99 * 1e3,
            "adaptive_p99_ms": adaptive_p99 * 1e3,
            "p99_gain": fixed_p99 / adaptive_p99 if adaptive_p99 else None,
            "slo_p99_ms": slo_p99 * 1e3,
            "health_state": health_state,
            "degraded_requests": degraded,
            "fixed_bit_identical": fixed_identical,
            "degraded_bit_identical": adaptive_identical,
            "rung_checks": rung_checks,
        },
    }


def run_serve_benchmark(smoke: bool = False) -> dict:
    """Sequential baseline vs. service across batch sizes × cache on/off."""
    dataset, split, tasks, model, workload, mixed, batch_sizes = _setup(smoke)
    config = ServiceConfig()  # shared assembly knobs for every mode
    # Single-shot timings on shared runners swing by tens of percent;
    # every timed measurement in the full run is min-of-repeats.
    repeats = 1 if smoke else 2

    # Warm-up: one forward (first-touch allocations, BLAS init).
    _score_sequential(model, split, tasks, workload[:1], config)

    baseline_seconds = None
    for _ in range(repeats):
        start = time.perf_counter()
        expected = _score_sequential(model, split, tasks, workload, config)
        elapsed = time.perf_counter() - start
        if baseline_seconds is None or elapsed < baseline_seconds:
            baseline_seconds = elapsed

    runs = []
    bit_identical = True
    # Engine on/off is the innermost, time-adjacent dimension, and the
    # repeats interleave across it: machine speed drifts over the
    # multi-minute grid, so measuring every engine-off config first and
    # every engine-on config last would fold the drift straight into
    # ``engine_gain``.  Adjacent measurement cancels it from the ratio.
    for cache_enabled in (False, True):
        for batch_size in batch_sizes:
            best = {}
            for _ in range(repeats):
                for use_engine in (False, True):
                    run_config = ServiceConfig(
                        max_batch_size=batch_size,
                        cache_enabled=cache_enabled,
                        use_inference_engine=use_engine,
                        queue_size=max(len(workload), 8),
                        seed=config.seed,
                    )
                    result, scores = _run_service(model, split, tasks,
                                                  workload, run_config)
                    held = best.get(use_engine)
                    if held is None or result["seconds"] < held[0]["seconds"]:
                        best[use_engine] = (result, scores)
            for use_engine in (False, True):
                result, scores = best[use_engine]
                result["bit_identical_to_sequential"] = all(
                    np.array_equal(a, b) for a, b in zip(expected, scores))
                bit_identical = (bit_identical
                                 and result["bit_identical_to_sequential"])
                result["speedup_vs_sequential"] = (
                    baseline_seconds / result["seconds"])
                runs.append(result)

    packing = _run_packing_benchmark(model, split, tasks, mixed, config,
                                     repeats=repeats)
    tracing = _run_tracing_benchmark(model, split, tasks, workload, expected,
                                     smoke)
    assembly = _run_assembly_benchmark(model, split, tasks, config, smoke)
    sharding = _run_shard_benchmark(model, split, tasks, config, smoke)

    best = max(runs, key=lambda r: r["speedup_vs_sequential"])
    best_on = max((r for r in runs if r["engine"]),
                  key=lambda r: r["speedup_vs_sequential"])
    best_off = max((r for r in runs if not r["engine"]),
                   key=lambda r: r["speedup_vs_sequential"])
    return {
        "benchmark": "serve_throughput",
        "smoke": smoke,
        # Methodology marker: tools/check_bench_regression.py refuses to
        # compare payloads whose measurement protocol differs, because a
        # protocol change resets the trajectory.
        "measurement": {
            "protocol": "interleaved-min-of-repeats",
            "repeats": repeats,
        },
        "config": {
            "num_requests": len(workload),
            "num_tasks": len(tasks),
            "context_users": config.context_users,
            "context_items": config.context_items,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
        },
        "baseline_sequential": {
            "seconds": baseline_seconds,
            "requests_per_second": len(workload) / baseline_seconds,
        },
        "runs": runs,
        "packing": packing,
        "tracing": tracing,
        "assembly": assembly,
        "sharding": sharding,
        "bit_identical_all_runs": bit_identical,
        "best_speedup": best["speedup_vs_sequential"],
        "best_config": {"batch_size": best["batch_size"],
                        "cache": best["cache"],
                        "engine": best["engine"]},
        "best_speedup_engine_on": best_on["speedup_vs_sequential"],
        "best_speedup_engine_off": best_off["speedup_vs_sequential"],
        "engine_gain": (best_on["speedup_vs_sequential"]
                        / best_off["speedup_vs_sequential"]),
    }


def write_serve_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_serve.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / SERVE_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
