"""Throughput benchmark of the ``repro.serve`` online inference subsystem.

Replays one skewed workload (hot users dominate, as real traffic does)
through :class:`repro.serve.PredictionService` across a grid of micro-batch
sizes × context cache on/off × inference engine on/off
(:mod:`repro.nn.inference`), against a **sequential baseline** that scores
one request at a time through the same predictor code path — no queue, no
batching, no cache, Tensor-path forwards.

Every serviced run is checked **bit-identical** to the baseline (the
per-request RNG derivation makes batched/cached scores exactly equal to
sequential ones), so the speedup is never bought with a numerics change.

A **packing** section replays a mixed-shape workload (per-request context
budget overrides drawn from several nearby (n, m) pairs) through the
padded-packing path (``pack_contexts=True``) and through the historical
exact-shape-only grouping, recording ``pack_gain``, pad-waste and bucket
occupancy stats, and the plan-cache hit rate of each mode — mixed traffic
under exact-only grouping fragments micro-batches into per-shape forwards
and thrashes the plan LRU, which is exactly what shape buckets fix.

``benchmarks/bench_serve_throughput.py`` writes the result as
``BENCH_serve.json`` at the repo root; ``--smoke`` runs a shrunken grid in
seconds and skips the JSON write.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import numpy as np

from .. import nn
from ..core import HIRE, HIREConfig
from ..nn import inference
from ..core.predictor import assemble_user_chunks, build_serving_graph, task_chunk_rng
from ..core.sampling import NeighborhoodSampler
from ..data import make_cold_start_split, movielens_like
from ..eval.tasks import build_eval_tasks
from ..serve import PredictionService, ServiceConfig, replay_workload, synthesize_workload

__all__ = [
    "run_serve_benchmark",
    "write_serve_bench_json",
    "SERVE_BENCH_FILENAME",
]

SERVE_BENCH_FILENAME = "BENCH_serve.json"


def _setup(smoke: bool):
    if smoke:
        dataset = movielens_like(num_users=60, num_items=50, seed=0,
                                 ratings_per_user=15.0)
        model_cfg = dict(num_blocks=1, num_heads=2, attr_dim=4, seed=0)
        max_tasks, num_requests = 6, 18
        batch_sizes = (1, 4)
        mixed_budgets = [(12, 12), (10, 11), (9, 12)]
    else:
        dataset = movielens_like(num_users=150, num_items=100, seed=0,
                                 ratings_per_user=30.0)
        model_cfg = dict(num_blocks=3, num_heads=8, attr_dim=16, seed=0)
        max_tasks, num_requests = 12, 96
        batch_sizes = (1, 4, 8, 16)
        mixed_budgets = [(12, 12), (10, 11), (9, 12), (12, 10)]
    split = make_cold_start_split(dataset, 0.2, 0.2, seed=0)
    tasks = build_eval_tasks(split, "user", min_query=2, seed=0,
                             max_tasks=max_tasks)
    model = HIRE(dataset, HIREConfig(**model_cfg))
    workload = synthesize_workload(tasks, num_requests, seed=0)
    mixed = synthesize_workload(tasks, num_requests, seed=1,
                                context_budgets=mixed_budgets)
    return dataset, split, tasks, model, workload, mixed, batch_sizes


def _score_sequential(model, split, tasks, workload, config: ServiceConfig):
    """One-request-at-a-time reference: the exact predictor code path,
    assembled and forwarded per request with no batching or caching.
    Per-request context-budget overrides are honored, mirroring
    ``PredictionService.submit``."""
    graph, candidate_users, candidate_items = build_serving_graph(split, tasks)
    sampler = NeighborhoodSampler()
    scores = []
    for request in workload:
        query_items = np.asarray(request.item_ids, dtype=np.int64)
        support_items = np.asarray(request.support_items, dtype=np.int64)
        context_users = (config.context_users if request.context_users is None
                         else request.context_users)
        context_items = (config.context_items if request.context_items is None
                         else request.context_items)
        total = None
        for sample_index in range(config.num_context_samples):
            def rng_factory(start, _sample=sample_index):
                return task_chunk_rng(config.seed, request.user, _sample, start)
            chunks = assemble_user_chunks(
                graph, sampler, request.user, query_items, support_items,
                context_users=context_users,
                context_items=context_items,
                reveal_fraction=config.reveal_fraction,
                candidate_users=candidate_users,
                candidate_items=candidate_items,
                rng_factory=rng_factory)
            part = np.empty(len(query_items), dtype=np.float64)
            with nn.no_grad():
                for chunk in chunks:
                    out = model.forward(chunk.context).data
                    part[chunk.start:chunk.start + len(chunk)] = (
                        out[chunk.user_row, chunk.cols])
            total = part if total is None else total + part
        scores.append(total / config.num_context_samples)
    return scores


def _run_service(model, split, tasks, workload, config: ServiceConfig):
    service = PredictionService.from_split(model, split, tasks, config=config)
    try:
        start = time.perf_counter()
        scores = replay_workload(service, workload)
        seconds = time.perf_counter() - start
        snapshot = service.metrics.snapshot()
        latency = snapshot["serve.latency_seconds"]
        result = {
            "batch_size": config.max_batch_size,
            "cache": config.cache_enabled,
            "engine": config.use_inference_engine,
            "num_workers": config.num_workers,
            "seconds": seconds,
            "requests_per_second": len(workload) / seconds,
            "latency_p50_ms": latency["p50"] * 1e3,
            "latency_p99_ms": latency["p99"] * 1e3,
            "mean_batch_size": snapshot["serve.batch_size"]["mean"],
        }
        if service.cache is not None:
            result["cache_hit_rate"] = service.cache.stats.hit_rate
        return result, scores
    finally:
        service.close()


def _plan_cache_counters() -> tuple[int, int]:
    stats = inference.cache_stats()
    return stats["hits"], stats["misses"]


def _run_packing_mode(model, split, tasks, workload, pack_contexts: bool):
    """Steady-state replay of the mixed-shape workload in one packing mode.

    The first replay warms the context cache and builds plans on the fresh
    worker thread (plan caches are thread-local, so each mode starts
    cold); the second is timed — the packing win is a forward-execution
    property, so it is measured with assembly amortized, as a hot serving
    process runs.  The plan-cache hit rate is the delta of the process
    counters across the timed replay: steady-state misses mean the mode's
    key diversity exceeds the LRU and it is rebuilding plans per batch.
    """
    config = ServiceConfig(max_batch_size=8,
                           queue_size=max(len(workload), 8),
                           pack_contexts=pack_contexts)
    service = PredictionService.from_split(model, split, tasks, config=config)
    try:
        replay_workload(service, workload)
        hits_before, misses_before = _plan_cache_counters()
        start = time.perf_counter()
        scores = replay_workload(service, workload)
        seconds = time.perf_counter() - start
        hits, misses = _plan_cache_counters()
        hits -= hits_before
        misses -= misses_before
        total = hits + misses
        cache = {"hits": hits, "misses": misses,
                 "hit_rate": hits / total if total else 0.0}
        return seconds, scores, cache, service.metrics.snapshot(), \
            service.stats()
    finally:
        service.close()


def _run_packing_benchmark(model, split, tasks, mixed, config) -> dict:
    """Packed vs exact-shape-only serving of the mixed-budget workload."""
    expected = _score_sequential(model, split, tasks, mixed, config)
    exact_seconds, exact_scores, exact_cache, _, _ = _run_packing_mode(
        model, split, tasks, mixed, pack_contexts=False)
    packed_seconds, packed_scores, packed_cache, snapshot, stats = (
        _run_packing_mode(model, split, tasks, mixed, pack_contexts=True))

    bit_identical = all(
        np.array_equal(a, b) for a, b in zip(expected, exact_scores)
    ) and all(
        np.array_equal(a, b) for a, b in zip(expected, packed_scores))
    budgets = sorted({(r.context_users, r.context_items) for r in mixed})
    section = {
        "mixed_budgets": [list(b) for b in budgets],
        "num_requests": len(mixed),
        "exact_only_seconds": exact_seconds,
        "packed_seconds": packed_seconds,
        "pack_gain": exact_seconds / packed_seconds,
        "bit_identical_to_sequential": bit_identical,
        "plan_cache": {"exact_only": exact_cache, "packed": packed_cache},
        "packed_contexts_total": snapshot.get(
            "serve.packed_contexts_total", {}).get("value", 0),
        "pad_waste_last": snapshot.get(
            "serve.pack_pad_waste", {}).get("value", 0.0),
    }
    occupancy = snapshot.get("serve.pack_bucket_occupancy")
    if occupancy:
        section["bucket_occupancy"] = {key: occupancy[key]
                                       for key in ("count", "mean", "p50")}
    if "embed_store" in stats:
        section["embed_store"] = stats["embed_store"]
    return section


def run_serve_benchmark(smoke: bool = False) -> dict:
    """Sequential baseline vs. service across batch sizes × cache on/off."""
    dataset, split, tasks, model, workload, mixed, batch_sizes = _setup(smoke)
    config = ServiceConfig()  # shared assembly knobs for every mode

    # Warm-up: one forward (first-touch allocations, BLAS init).
    _score_sequential(model, split, tasks, workload[:1], config)

    start = time.perf_counter()
    expected = _score_sequential(model, split, tasks, workload, config)
    baseline_seconds = time.perf_counter() - start

    runs = []
    bit_identical = True
    for use_engine in (False, True):
        for cache_enabled in (False, True):
            for batch_size in batch_sizes:
                run_config = ServiceConfig(
                    max_batch_size=batch_size,
                    cache_enabled=cache_enabled,
                    use_inference_engine=use_engine,
                    queue_size=max(len(workload), 8),
                    seed=config.seed,
                )
                result, scores = _run_service(model, split, tasks, workload,
                                              run_config)
                result["bit_identical_to_sequential"] = all(
                    np.array_equal(a, b) for a, b in zip(expected, scores))
                bit_identical = (bit_identical
                                 and result["bit_identical_to_sequential"])
                result["speedup_vs_sequential"] = (
                    baseline_seconds / result["seconds"])
                runs.append(result)

    packing = _run_packing_benchmark(model, split, tasks, mixed, config)

    best = max(runs, key=lambda r: r["speedup_vs_sequential"])
    best_on = max((r for r in runs if r["engine"]),
                  key=lambda r: r["speedup_vs_sequential"])
    best_off = max((r for r in runs if not r["engine"]),
                   key=lambda r: r["speedup_vs_sequential"])
    return {
        "benchmark": "serve_throughput",
        "smoke": smoke,
        "config": {
            "num_requests": len(workload),
            "num_tasks": len(tasks),
            "context_users": config.context_users,
            "context_items": config.context_items,
            "num_users": dataset.num_users,
            "num_items": dataset.num_items,
        },
        "baseline_sequential": {
            "seconds": baseline_seconds,
            "requests_per_second": len(workload) / baseline_seconds,
        },
        "runs": runs,
        "packing": packing,
        "bit_identical_all_runs": bit_identical,
        "best_speedup": best["speedup_vs_sequential"],
        "best_config": {"batch_size": best["batch_size"],
                        "cache": best["cache"],
                        "engine": best["engine"]},
        "best_speedup_engine_on": best_on["speedup_vs_sequential"],
        "best_speedup_engine_off": best_off["speedup_vs_sequential"],
        "engine_gain": (best_on["speedup_vs_sequential"]
                        / best_off["speedup_vs_sequential"]),
    }


def write_serve_bench_json(payload: dict, repo_root: Path | None = None) -> Path:
    """Write the trajectory file ``BENCH_serve.json`` at the repo root."""
    if repo_root is None:
        repo_root = Path(__file__).resolve().parents[3]
    path = repo_root / SERVE_BENCH_FILENAME
    path.write_text(json.dumps(payload, indent=2, sort_keys=True) + "\n")
    return path
